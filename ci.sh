#!/usr/bin/env bash
# CI gate: build, tests, lints, race/chaos smoke, and the perf-regression
# gate, with per-stage wall-clock timings.
#
#   ./ci.sh          full gate — everything below (chaos + perf)
#   ./ci.sh quick    quick gate: debug tests, clippy, golden EXPLAIN
#                    snapshots, the kernel-differential suite, one
#                    parallel-suite run, the kill-point quick slice,
#                    the quick shard-differential slice, unwrap gate —
#                    skips the release build, the full chaos suites,
#                    the perf gate, and the smokes
#   ./ci.sh chaos    common stages + the fault/concurrency suites:
#                    default-thread parallel run, chaos property suite,
#                    shared-store suite, 120-seed recovery sweep, WAL
#                    fuzz, full shard differential + dead-shard chaos
#   ./ci.sh perf     common stages + release build, the perf-regression
#                    gate (BENCH_10.json), and the E24/E26/E28/E29/E30
#                    smokes
#
# `chaos` and `perf` partition the full gate's slow tail so CI can run
# them as parallel jobs; `full` remains their union for local use.
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-full}"
case "$mode" in
quick | chaos | perf | full) ;;
*)
    echo "usage: $0 [quick|chaos|perf|full]" >&2
    exit 2
    ;;
esac
run_chaos=false
run_perf=false
if [ "$mode" = chaos ] || [ "$mode" = full ]; then run_chaos=true; fi
if [ "$mode" = perf ] || [ "$mode" = full ]; then run_perf=true; fi
total_start=$SECONDS

# stage <name> <command...> — runs the command, echoing the stage name
# before and its wall-clock seconds after.
stage() {
    local name="$1"
    shift
    echo "==> $name"
    local start=$SECONDS
    "$@"
    echo "    (${name}: $((SECONDS - start))s)"
}

if $run_perf; then
    stage "cargo build --release" cargo build --release --workspace
fi

stage "cargo fmt --check" cargo fmt --all --check

stage "cargo test -q (tier-1: root package)" cargo test -q

stage "cargo test -q --workspace" cargo test -q --workspace

stage "cargo clippy -- -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings

# Golden EXPLAIN snapshots: the planner's rendered plans (logical plan,
# rewrite passes, physical grouping sets) for ~10 pinned queries must not
# drift. Runs in quick mode too — it is fast and catches unintended
# planner changes early.
stage "golden EXPLAIN snapshots" cargo test -q --test explain_golden

# Kernel-differential gate: the batched executor must be bit-identical to
# the frozen tuple-at-a-time interpreter across all five workload
# generators, every privacy policy, and every summary function — and the
# storage chunk kernels must match their scalar oracles. Runs in every
# mode: it is the correctness proof of the vectorized execution path.
stage "kernel-differential suite (batched vs interpreter)" \
    cargo test -q --test kernel_differential

# Kernel-law property suite: merge monoid (associative, commutative,
# identity), selection-vector masking, and derive/merge commutation over
# generated blocks — bit-exact, 128 cases each.
stage "kernel property suite" cargo test -q --test prop_kernels

# Race smoke test: the parallel property suite under a serialized test
# harness (workers still spawn inside each test) and — chaos mode — under
# the default parallel harness too. Catches scheduling-dependent
# flakiness without loom.
stage "parallel suite, RUST_TEST_THREADS=1" \
    env RUST_TEST_THREADS=1 cargo test -q --test prop_parallel
if $run_chaos; then
    stage "parallel suite, default test threads" \
        cargo test -q --test prop_parallel
fi

# Differential maintenance gate: incremental apply_delta must equal a full
# rebuild bit-for-bit across all five workload generators, growth deltas,
# and rejected batches. Runs in quick mode too — it is the correctness
# proof of the incremental maintenance path.
stage "differential maintenance suite" cargo test -q --test delta_maintenance

# Scatter-gather differential gate: the sharded store must answer bit-for
# bit like the unsharded store it partitions — all generators, policies,
# routers, shard counts, filtered/pruned slices, routed deltas. Quick and
# perf modes run the quick_ slice; chaos/full run the whole suite
# including the 120-seed dead-shard chaos sweep.
if $run_chaos; then
    stage "shard differential suite (full + dead-shard chaos)" \
        cargo test -q --test shard_differential
else
    stage "shard differential quick slice" \
        cargo test -q --test shard_differential quick_
fi

# Chaos gate: the fault-injection property suite — cached and uncached
# serving paths bit-identical to the oracle or typed errors across 120
# seeded fault plans, including delta publication atomicity under armed
# injectors — plus the shared-store concurrency suite (snapshot
# isolation, targeted invalidation, N-reader/1-writer generation checks).
if $run_chaos; then
    stage "chaos suite" cargo test -q --test chaos_property
    stage "shared-store concurrency suite" cargo test -q --test shared_store
fi

# Recovery-chaos gate: kill the durable writer at every protocol step and
# prove recovery lands bit-for-bit pre- or post-delta, never hybrid, with
# every commit-stamped batch present. Chaos mode runs the 120-seed sweep
# across all five generators plus the WAL fuzz properties; other modes
# run one seed through all five kill points and the torn-append mode.
if $run_chaos; then
    stage "recovery-chaos suite (120-seed kill-point sweep)" \
        cargo test -q --test recovery_chaos
    stage "WAL decoder fuzz suite" cargo test -q --test prop_wal_fuzz
else
    stage "recovery-chaos quick (all kill points, one seed)" \
        cargo test -q --test recovery_chaos kill_points_quick
fi

# No-new-unwrap gate: user-reachable library code in the sql, cube,
# storage, and privacy crates — and the core planner/executor and
# operator-algebra modules under it — must not grow new panic sites.
# Counts `.unwrap()`/`.expect(` in non-test lib code (everything before
# the `#[cfg(test)]` module) against a recorded baseline. All
# grandfathered sites were purged (typed errors, infallible fallbacks,
# or panic-propagating joins); keep it at 0.
unwrap_gate() {
    local unwrap_baseline=0
    local unwrap_count
    unwrap_count=$(
        for f in crates/sql/src/*.rs crates/cube/src/*.rs \
            crates/storage/src/*.rs crates/privacy/src/*.rs \
            crates/core/src/plan/*.rs crates/core/src/ops/*.rs; do
            awk '/#\[cfg\(test\)\]/{exit} {print}' "$f"
        done | grep -c '\.unwrap()\|\.expect(' || true
    )
    echo "    $unwrap_count panic sites (baseline $unwrap_baseline)"
    if [ "$unwrap_count" -gt "$unwrap_baseline" ]; then
        echo "ERROR: new .unwrap()/.expect() in gated lib code" >&2
        echo "       ($unwrap_count found, baseline $unwrap_baseline)." >&2
        echo "       Return a typed Error instead, or justify and bump the baseline." >&2
        exit 1
    fi
}
stage "no-new-unwrap gate" unwrap_gate

# Perf-regression gate (perf mode): measures the pinned E25/E22/E27/E28
# subset plus the batched-planner throughput and the sharded slice
# serving point (N=4 throughput and N=4/N=1 pruning scaling) in release,
# writes BENCH_10.json, and fails (exit 1) if throughput regresses more than 25%
# against the committed bench_baseline.json (or the deterministic cache
# hit rate drops >0.05); environment problems exit 2. Re-baseline after
# an intentional perf trade or a hardware change:
#   cargo run -p statcube-bench --release --bin perf_gate -- --write-baseline
# then commit bench_baseline.json.
if $run_perf; then
    stage "perf-regression gate (BENCH_10.json vs bench_baseline.json)" \
        cargo run -q -p statcube-bench --release --bin perf_gate
fi

# Observability smoke (perf mode): profile one CUBE query end to end and
# print the span tree + metrics snapshot (E24). Fails if tracing breaks.
if $run_perf; then
    stage "observability smoke (E24 metrics snapshot)" \
        cargo run -q -p statcube-bench --bin experiments -- exp24
fi

# Planner-ablation smoke (perf mode): E26 re-measures what each rewrite
# pass buys on retail and asserts in-line that every ablation returns
# identical rows. Fails if a rewrite changes answers or stops paying off.
if $run_perf; then
    stage "planner rewrite ablation smoke (E26)" \
        cargo run -q -p statcube-bench --bin experiments -- exp26
fi

# Durability smoke (perf mode): E28 measures the journal-append overhead
# on the fold path and recovery replay time vs journal tail length,
# asserting in-line that journaling stays cheap and checkpoints bound
# replay.
if $run_perf; then
    stage "durability cost + recovery replay smoke (E28)" \
        cargo run -q -p statcube-bench --bin experiments -- exp28
fi

# Vectorized-execution smoke (perf mode): E29 re-measures the batched
# kernels against the tuple interpreter (answers asserted identical
# in-line), the chunk-size sweep, and the run-aware RLE kernel. Fails if
# the kernels stop winning or diverge.
if $run_perf; then
    stage "vectorized execution smoke (E29 kernels vs interpreter)" \
        cargo run -q -p statcube-bench --bin experiments -- exp29
fi

# Sharded-execution smoke (perf mode): E30 sweeps shard counts on the
# pinned sharded serving workload and asserts in-line (release builds)
# that shard-key slice pruning delivers >=2.5x throughput at N=4, that a
# healthy scatter is complete, and that a dead shard degrades to typed
# partial answers. Release: the binary is already built by this mode's
# first stage, and the scaling assertion only arms under optimization.
if $run_perf; then
    stage "sharded execution smoke (E30 pruning + degradation)" \
        cargo run -q --release -p statcube-bench --bin experiments -- exp30
fi

echo "CI gate ($mode) passed in $((SECONDS - total_start))s."
