#!/usr/bin/env bash
# CI gate: build, tests, lints, and the parallel-engine race smoke test.
#
#   ./ci.sh          full gate
#   ./ci.sh quick    skip the release build (debug tests + clippy only)
set -euo pipefail
cd "$(dirname "$0")"

quick="${1:-}"

echo "==> cargo build --release"
if [ "$quick" != "quick" ]; then
    cargo build --release --workspace
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Race smoke test: the parallel property suite under a serialized test
# harness (workers still spawn inside each test) and under the default
# parallel harness. Catches scheduling-dependent flakiness without loom.
echo "==> parallel suite, RUST_TEST_THREADS=1"
RUST_TEST_THREADS=1 cargo test -q --test prop_parallel

echo "==> parallel suite, default test threads"
cargo test -q --test prop_parallel

# Chaos gate: the fault-injection property suite (bit-identical-or-typed-
# error across 120 seeded fault plans) must pass on its own.
echo "==> chaos suite"
cargo test -q --test chaos_property

# No-new-unwrap gate: user-reachable library code in the SQL and cube
# crates must not grow new panic sites. Counts `.unwrap()`/`.expect(` in
# non-test lib code (everything before the `#[cfg(test)]` module) against
# a recorded baseline. The 17 grandfathered sites were purged (typed
# errors, infallible fallbacks, or panic-propagating joins); keep it at 0.
unwrap_baseline=0
unwrap_count=$(
    for f in crates/sql/src/*.rs crates/cube/src/*.rs; do
        awk '/#\[cfg\(test\)\]/{exit} {print}' "$f"
    done | grep -c '\.unwrap()\|\.expect(' || true
)
echo "==> no-new-unwrap gate: $unwrap_count panic sites (baseline $unwrap_baseline)"
if [ "$unwrap_count" -gt "$unwrap_baseline" ]; then
    echo "ERROR: new .unwrap()/.expect() in crates/sql or crates/cube lib code" >&2
    echo "       ($unwrap_count found, baseline $unwrap_baseline)." >&2
    echo "       Return a typed Error instead, or justify and bump the baseline." >&2
    exit 1
fi

# Observability smoke: profile one CUBE query end to end and print the
# span tree + metrics snapshot (E24). Fails if the trace layer breaks.
echo "==> observability smoke (E24 metrics snapshot)"
cargo run -q -p statcube-bench --bin experiments -- exp24

echo "CI gate passed."
