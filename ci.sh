#!/usr/bin/env bash
# CI gate: build, tests, lints, and the parallel-engine race smoke test.
#
#   ./ci.sh          full gate
#   ./ci.sh quick    skip the release build (debug tests + clippy only)
set -euo pipefail
cd "$(dirname "$0")"

quick="${1:-}"

echo "==> cargo build --release"
if [ "$quick" != "quick" ]; then
    cargo build --release --workspace
fi

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Race smoke test: the parallel property suite under a serialized test
# harness (workers still spawn inside each test) and under the default
# parallel harness. Catches scheduling-dependent flakiness without loom.
echo "==> parallel suite, RUST_TEST_THREADS=1"
RUST_TEST_THREADS=1 cargo test -q --test prop_parallel

echo "==> parallel suite, default test threads"
cargo test -q --test prop_parallel

echo "CI gate passed."
