#!/usr/bin/env bash
# CI gate: build, tests, lints, race/chaos smoke, and the perf-regression
# gate, with per-stage wall-clock timings.
#
#   ./ci.sh          full gate (release build, chaos + recovery-chaos
#                    suites, WAL fuzz, perf gate, E24 + E26 + E28 smokes)
#   ./ci.sh quick    quick gate: debug tests, clippy, golden EXPLAIN
#                    snapshots, one parallel-suite run, the kill-point
#                    quick slice, unwrap gate — skips the release build,
#                    the full chaos suites, the perf gate, and the smokes
set -euo pipefail
cd "$(dirname "$0")"

quick="${1:-}"
total_start=$SECONDS

# stage <name> <command...> — runs the command, echoing the stage name
# before and its wall-clock seconds after.
stage() {
    local name="$1"
    shift
    echo "==> $name"
    local start=$SECONDS
    "$@"
    echo "    (${name}: $((SECONDS - start))s)"
}

if [ "$quick" != "quick" ]; then
    stage "cargo build --release" cargo build --release --workspace
fi

stage "cargo fmt --check" cargo fmt --all --check

stage "cargo test -q (tier-1: root package)" cargo test -q

stage "cargo test -q --workspace" cargo test -q --workspace

stage "cargo clippy -- -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings

# Golden EXPLAIN snapshots: the planner's rendered plans (logical plan,
# rewrite passes, physical grouping sets) for ~10 pinned queries must not
# drift. Runs in quick mode too — it is fast and catches unintended
# planner changes early.
stage "golden EXPLAIN snapshots" cargo test -q --test explain_golden

# Race smoke test: the parallel property suite under a serialized test
# harness (workers still spawn inside each test) and — full mode only —
# under the default parallel harness too. Catches scheduling-dependent
# flakiness without loom.
stage "parallel suite, RUST_TEST_THREADS=1" \
    env RUST_TEST_THREADS=1 cargo test -q --test prop_parallel
if [ "$quick" != "quick" ]; then
    stage "parallel suite, default test threads" \
        cargo test -q --test prop_parallel
fi

# Differential maintenance gate: incremental apply_delta must equal a full
# rebuild bit-for-bit across all five workload generators, growth deltas,
# and rejected batches. Runs in quick mode too — it is the correctness
# proof of the incremental maintenance path.
stage "differential maintenance suite" cargo test -q --test delta_maintenance

# Chaos gate (full mode): the fault-injection property suite — cached and
# uncached serving paths bit-identical to the oracle or typed errors across
# 120 seeded fault plans, including delta publication atomicity under
# armed injectors — plus the shared-store concurrency suite (snapshot
# isolation, targeted invalidation, N-reader/1-writer generation checks).
if [ "$quick" != "quick" ]; then
    stage "chaos suite" cargo test -q --test chaos_property
    stage "shared-store concurrency suite" cargo test -q --test shared_store
fi

# Recovery-chaos gate: kill the durable writer at every protocol step and
# prove recovery lands bit-for-bit pre- or post-delta, never hybrid, with
# every commit-stamped batch present. Full mode runs the 120-seed sweep
# across all five generators plus the WAL fuzz properties; quick mode runs
# one seed through all five kill points and the torn-append mode.
if [ "$quick" != "quick" ]; then
    stage "recovery-chaos suite (120-seed kill-point sweep)" \
        cargo test -q --test recovery_chaos
    stage "WAL decoder fuzz suite" cargo test -q --test prop_wal_fuzz
else
    stage "recovery-chaos quick (all kill points, one seed)" \
        cargo test -q --test recovery_chaos kill_points_quick
fi

# No-new-unwrap gate: user-reachable library code in the sql, cube,
# storage, and privacy crates must not grow new panic sites. Counts
# `.unwrap()`/`.expect(` in non-test lib code (everything before the
# `#[cfg(test)]` module) against a recorded baseline. All grandfathered
# sites were purged (typed errors, infallible fallbacks, or
# panic-propagating joins); keep it at 0.
unwrap_gate() {
    local unwrap_baseline=0
    local unwrap_count
    unwrap_count=$(
        for f in crates/sql/src/*.rs crates/cube/src/*.rs \
            crates/storage/src/*.rs crates/privacy/src/*.rs; do
            awk '/#\[cfg\(test\)\]/{exit} {print}' "$f"
        done | grep -c '\.unwrap()\|\.expect(' || true
    )
    echo "    $unwrap_count panic sites (baseline $unwrap_baseline)"
    if [ "$unwrap_count" -gt "$unwrap_baseline" ]; then
        echo "ERROR: new .unwrap()/.expect() in sql/cube/storage/privacy lib code" >&2
        echo "       ($unwrap_count found, baseline $unwrap_baseline)." >&2
        echo "       Return a typed Error instead, or justify and bump the baseline." >&2
        exit 1
    fi
}
stage "no-new-unwrap gate" unwrap_gate

# Perf-regression gate (full mode): measures the pinned E25/E22 subset in
# release, writes BENCH_04.json, and fails if throughput regresses more
# than 25% against the committed bench_baseline.json (or the deterministic
# cache hit rate drops >0.05). Re-baseline after an intentional perf trade
# or a hardware change:
#   cargo run -p statcube-bench --release --bin perf_gate -- --write-baseline
# then commit bench_baseline.json.
if [ "$quick" != "quick" ]; then
    stage "perf-regression gate (BENCH_04.json vs bench_baseline.json)" \
        cargo run -q -p statcube-bench --release --bin perf_gate
fi

# Observability smoke (full mode): profile one CUBE query end to end and
# print the span tree + metrics snapshot (E24). Fails if tracing breaks.
if [ "$quick" != "quick" ]; then
    stage "observability smoke (E24 metrics snapshot)" \
        cargo run -q -p statcube-bench --bin experiments -- exp24
fi

# Planner-ablation smoke (full mode): E26 re-measures what each rewrite
# pass buys on retail and asserts in-line that every ablation returns
# identical rows. Fails if a rewrite changes answers or stops paying off.
if [ "$quick" != "quick" ]; then
    stage "planner rewrite ablation smoke (E26)" \
        cargo run -q -p statcube-bench --bin experiments -- exp26
fi

# Durability smoke (full mode): E28 measures the journal-append overhead on
# the fold path and recovery replay time vs journal tail length, asserting
# in-line that journaling stays cheap and checkpoints bound replay.
if [ "$quick" != "quick" ]; then
    stage "durability cost + recovery replay smoke (E28)" \
        cargo run -q -p statcube-bench --bin experiments -- exp28
fi

echo "CI gate passed in $((SECONDS - total_start))s."
