//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides the small, deterministic subset of `rand` the workspace uses:
//!
//! * [`rngs::StdRng`] — a xoshiro256\*\* generator seeded through
//!   [`SeedableRng::seed_from_u64`] via SplitMix64 (stream values differ
//!   from upstream `rand`, but every consumer in this workspace only relies
//!   on determinism and statistical quality, not on exact streams);
//! * [`Rng::random`] for `f64`/`u64`/`u32`/`bool`;
//! * [`Rng::random_range`] over half-open and inclusive integer and float
//!   ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).

#![warn(missing_docs)]

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (`rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = bounded_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        // Scale a [0,1] draw (inclusive via 53-bit grid rounding).
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

/// Rejection-sampled uniform value in `[0, span)`.
fn bounded_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Lemire-style rejection: top bits of the widening product.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    } else {
        // Spans wider than u64 only arise for i128-width ranges, which the
        // workspace never uses; fall back to two words.
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256\*\* seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension methods (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded_u128(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let u = r.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
