//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], `Bencher::iter` /
//! `iter_with_setup`, [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple median-of-samples
//! wall-clock timer instead of criterion's statistical machinery. Output is
//! one `name … median time` line per benchmark.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self, name: name.to_owned(), sample_size: 10 }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{}/{}", name.into(), parameter) }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where an id is expected.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { text: self.to_owned() }
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` on a fresh `setup()` value each sample; setup time
    /// is excluded.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), iters_per_sample: 1 };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
    println!("  {name:<48} median {median:>12.3?} ({} samples)", b.samples.len());
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        let input = 7u64;
        g.bench_with_input(BenchmarkId::new("square", input), &input, |b, &i| b.iter(|| i * i));
        g.bench_function("with_setup", |b| b.iter_with_setup(|| vec![1u8; 64], |v| v.len()));
        g.finish();
    }

    #[test]
    fn harness_runs_everything() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_expands() {
        benches();
    }
}
