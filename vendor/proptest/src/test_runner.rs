//! The deterministic generator behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// The per-test random source. Seeded from the test's fully qualified name
/// so every run of a property generates the identical case sequence —
/// failures reproduce without recording a seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator for the named test (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { inner: StdRng::seed_from_u64(h) }
    }

    /// Uniform draw from any supported range type.
    pub fn range<T, R: SampleRange<T>>(&mut self, r: R) -> T {
        self.inner.random_range(r)
    }

    /// Uniform index in `[0, n)`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0)");
        self.inner.random_range(0..n)
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.inner.random_bool(p)
    }
}
