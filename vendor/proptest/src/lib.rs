//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree crate
//! re-implements the subset of proptest the workspace's property suites
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, numeric-range and
//! char-class string strategies, tuple/vec/set/option/sample combinators,
//! and the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assume!`]/[`prop_oneof!`] macros.
//!
//! Differences from upstream, chosen for smallness:
//!
//! * **no shrinking** — a failing case reports its deterministic seed and
//!   case number instead of a minimized input;
//! * **deterministic runs** — the generator is seeded from the test's
//!   module path and name, so failures always reproduce;
//! * string strategies accept only the char-class regex subset
//!   (`[...]`, `(...)`, `{m,n}`, `?`) the suites actually use.

#![warn(missing_docs)]

pub mod test_runner;

use test_runner::TestRng;

/// Outcome of one generated test case (public so the macros can match it).
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property does not hold.
    Fail(String),
    /// A `prop_assume!` rejected the input: skip, don't fail.
    Reject(String),
}

/// Run configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.gen_value(rng))
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_below(self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// String strategies from a char-class regex subset.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PatNode {
    Literal(char),
    Class(Vec<char>),
    Group(Vec<(PatNode, usize, usize)>),
}

/// Parses the supported regex subset into (node, min-reps, max-reps) terms.
fn parse_pattern(pat: &str) -> Vec<(PatNode, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let (nodes, consumed) = parse_seq(&chars, 0, None);
    assert_eq!(consumed, chars.len(), "unsupported regex pattern: {pat}");
    nodes
}

fn parse_seq(
    chars: &[char],
    mut i: usize,
    until: Option<char>,
) -> (Vec<(PatNode, usize, usize)>, usize) {
    let mut out = Vec::new();
    while i < chars.len() {
        if Some(chars[i]) == until {
            return (out, i);
        }
        let node = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad char range {lo}-{hi}");
                        set.extend((lo..=hi).collect::<Vec<char>>());
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                PatNode::Class(set)
            }
            '(' => {
                let (inner, end) = parse_seq(chars, i + 1, Some(')'));
                assert!(end < chars.len() && chars[end] == ')', "unclosed group");
                i = end + 1;
                PatNode::Group(inner)
            }
            c => {
                i += 1;
                PatNode::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unclosed {") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {lo,hi}"),
                    hi.trim().parse().expect("bad {lo,hi}"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad {n}");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else {
            (1, 1)
        };
        out.push((node, min, max));
    }
    (out, i)
}

fn gen_nodes(nodes: &[(PatNode, usize, usize)], rng: &mut TestRng, out: &mut String) {
    for (node, min, max) in nodes {
        let reps = if min == max { *min } else { rng.range(*min..=*max) };
        for _ in 0..reps {
            match node {
                PatNode::Literal(c) => out.push(*c),
                PatNode::Class(set) => out.push(set[rng.usize_below(set.len())]),
                PatNode::Group(inner) => gen_nodes(inner, rng, out),
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let nodes = parse_pattern(self);
        let mut out = String::new();
        gen_nodes(&nodes, rng, &mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// Size ranges and collection strategies.
// ---------------------------------------------------------------------------

/// A collection-size range accepted by [`collection::vec`] and friends.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { min: *r.start(), max_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max_inclusive: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.range(self.min..=self.max_inclusive)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Generates `Vec<S::Value>` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Generates `BTreeSet<S::Value>` with size in `size` (best effort: if
    /// the element domain is too small to reach the target size, the set
    /// is as large as repeated draws could make it).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// The strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling strategies over fixed item sets.
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};

    /// Generates an order-preserving subsequence of `items` whose length
    /// falls in `size` (clamped to `items.len()`).
    pub fn subsequence<T: Clone>(items: &[T], size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence { items: items.to_vec(), size: size.into() }
    }

    /// The strategy returned by [`subsequence`].
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<T> {
            let k = self.size.pick(rng).min(self.items.len());
            // Draw k distinct indices, then emit in item order.
            let mut picked = vec![false; self.items.len()];
            let mut chosen = 0;
            while chosen < k {
                let i = rng.usize_below(self.items.len());
                if !picked[i] {
                    picked[i] = true;
                    chosen += 1;
                }
            }
            self.items.iter().zip(&picked).filter(|(_, &p)| p).map(|(v, _)| v.clone()).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` with probability ½, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, some_probability: 0.5 }
    }

    /// `Some` with the given probability.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, some_probability }
    }

    /// The strategy returned by [`of`] / [`weighted`].
    pub struct OptionStrategy<S> {
        inner: S,
        some_probability: f64,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.bool_with(self.some_probability) {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }
}

/// Bool strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates either bool uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform bool strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn gen_value(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.bool_with(0.5)
        }
    }
}

/// Re-exports for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => panic!(
                        "property `{}` failed at case {} (deterministic; rerun reproduces): {}",
                        stringify!($name),
                        __case,
                        __msg
                    ),
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Skips the current case when its input doesn't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -5i64..=5, f in 0.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn mapped_tuples(p in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 8);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn string_patterns(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "bad len: {s}");
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn grouped_pattern(s in "[ab]( [cd]{1,2})?") {
            let mut parts = s.split(' ');
            let head = parts.next().unwrap();
            prop_assert!(head == "a" || head == "b");
        }

        #[test]
        fn subsequence_preserves_order(ss in crate::sample::subsequence(&[1, 2, 3, 4, 5][..], 0..5)) {
            prop_assert!(ss.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn btree_set_sizes(s in crate::collection::btree_set(0u32..100, 1..=4)) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("seed-test");
        let mut b = crate::test_runner::TestRng::for_test("seed-test");
        let s = (0u32..1000, 0u32..1000);
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
        }
    }
}
