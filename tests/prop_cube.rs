//! Property tests on the cube layer: all engines compute the same cube,
//! materialized views answer exactly like direct computation, and the
//! greedy selection never makes queries slower.

use proptest::prelude::*;

use statcube::cube::cube_op::{compute_naive, compute_shared};
use statcube::cube::groupby;
use statcube::cube::input::FactInput;
use statcube::cube::lattice::Lattice;
use statcube::cube::materialize::{greedy_select, total_cost};
use statcube::cube::query::ViewStore;
use statcube::cube::{molap, rolap};

fn facts_strategy() -> impl Strategy<Value = FactInput> {
    proptest::collection::vec((0u32..4, 0u32..3, 0u32..5, -100i64..100), 0..200).prop_map(|rows| {
        let mut f = FactInput::new(&[4, 3, 5]).unwrap();
        for (a, b, c, v) in rows {
            f.push(&[a, b, c], v as f64).unwrap();
        }
        f
    })
}

fn cubes_equal(
    a: &statcube::cube::cube_op::CubeResult,
    b: &statcube::cube::cube_op::CubeResult,
) -> bool {
    a.masks() == b.masks()
        && a.masks().iter().all(|&m| {
            let ca = a.cuboid(m).unwrap();
            let cb = b.cuboid(m).unwrap();
            ca.len() == cb.len()
                && ca.iter().all(|(k, s)| {
                    cb.get(k)
                        .map(|x| (x.sum - s.sum).abs() < 1e-6 && x.count == s.count)
                        .unwrap_or(false)
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_four_engines_agree(f in facts_strategy()) {
        let naive = compute_naive(&f);
        let shared = compute_shared(&f);
        let m = molap::compute_molap(&f).unwrap().to_cube_result();
        let r = rolap::compute_rolap(&f).to_cube_result();
        prop_assert!(cubes_equal(&naive, &shared));
        prop_assert!(cubes_equal(&naive, &m));
        prop_assert!(cubes_equal(&naive, &r));
    }

    #[test]
    fn view_store_answers_match_direct(f in facts_strategy(), views in proptest::collection::vec(0u32..8, 0..3)) {
        let store = ViewStore::build(&f, &views).unwrap();
        for mask in 0..8u32 {
            let ans = store.answer(mask).unwrap();
            let direct = groupby::from_facts(&f, mask);
            prop_assert_eq!(ans.cuboid.len(), direct.len());
            for (k, s) in &direct {
                let got = &ans.cuboid[k];
                prop_assert!((got.sum - s.sum).abs() < 1e-6);
                prop_assert_eq!(got.count, s.count);
            }
        }
    }

    #[test]
    fn greedy_monotonically_improves(cards in proptest::collection::vec(2usize..30, 1..5), base_rows in 1u64..100_000) {
        let lattice = Lattice::new(&cards, base_rows).unwrap();
        let top = lattice.top();
        let max_k = lattice.cuboid_count() - 1;
        let mut prev = total_cost(&lattice, &[top]);
        for k in 1..=max_k.min(6) {
            let g = greedy_select(&lattice, k).unwrap();
            let mut views = vec![top];
            views.extend(g.selected);
            let cost = total_cost(&lattice, &views);
            prop_assert!(cost <= prev, "k={k}: {cost} > {prev}");
            prev = cost;
        }
    }

    #[test]
    fn cuboid_totals_are_consistent(f in facts_strategy()) {
        // Every cuboid's cells sum to the grand total (sum is preserved by
        // any grouping).
        let cube = compute_shared(&f);
        let apex = cube.get_all(&[None, None, None]).map(|s| (s.sum, s.count));
        for mask in cube.masks() {
            let cuboid = cube.cuboid(mask).unwrap();
            let sum: f64 = cuboid.values().map(|s| s.sum).sum();
            let count: u64 = cuboid.values().map(|s| s.count).sum();
            match apex {
                Some((asum, acount)) => {
                    prop_assert!((sum - asum).abs() < 1e-6);
                    prop_assert_eq!(count, acount);
                }
                None => prop_assert!(cuboid.is_empty()),
            }
        }
    }
}
