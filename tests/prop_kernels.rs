//! Property tests on the batched executor's kernel laws: the block-merge
//! monoid, selection-vector masking, and empty-batch identities.
//!
//! Generated blocks carry integer-valued doubles, so float addition is
//! exact and the monoid laws hold bit-for-bit (not merely approximately) —
//! the same discipline the kernel-differential gate uses.

use proptest::prelude::*;

use statcube::core::measure::AggState;
use statcube::core::plan::{derive_block, merge_blocks, CellBlock};

/// Key domain: two coordinates in 0..5 — small enough to force collisions
/// (the merge paths), wide enough to exercise both derivation paths.
const KEY_SPACE: u32 = 5;

/// A generated cell: two coordinates and an integer measure value.
type Cell = (u32, u32, i64);

fn cells_strategy(max: usize) -> impl Strategy<Value = Vec<Cell>> {
    proptest::collection::vec((0..KEY_SPACE, 0..KEY_SPACE, -1000i64..1000), 0..max)
}

/// Builds a sorted single-measure block, merging duplicate keys the same
/// way repeated inserts would.
fn block_of(cells: &[Cell]) -> CellBlock {
    let mut map: std::collections::BTreeMap<[u32; 2], AggState> = Default::default();
    for &(a, b, v) in cells {
        map.entry([a, b]).or_insert(AggState::EMPTY).merge(&AggState::from_value(v as f64));
    }
    let mut block = CellBlock::new(2, 1);
    for (key, state) in &map {
        block.push_row(key, &[*state], false);
    }
    block
}

/// Bit-exact block equality with a labelled failure.
fn assert_blocks_eq(a: &CellBlock, b: &CellBlock) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.key_width(), b.key_width());
    prop_assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        prop_assert_eq!(a.key(i), b.key(i), "row {} key", i);
        prop_assert_eq!(a.is_suppressed(i), b.is_suppressed(i), "row {} flag", i);
        for m in 0..a.measure_count() {
            let (x, y) = (a.state(m, i), b.state(m, i));
            prop_assert_eq!(x.count, y.count, "row {} count", i);
            prop_assert_eq!(x.sum.to_bits(), y.sum.to_bits(), "row {} sum", i);
            prop_assert_eq!(x.min.to_bits(), y.min.to_bits(), "row {} min", i);
            prop_assert_eq!(x.max.to_bits(), y.max.to_bits(), "row {} max", i);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `merge_blocks` is associative and commutative — the block-level
    /// image of the `AggState` partial-aggregation monoid.
    #[test]
    fn merge_is_associative_and_commutative(
        a in cells_strategy(40), b in cells_strategy(40), c in cells_strategy(40)
    ) {
        let (a, b, c) = (block_of(&a), block_of(&b), block_of(&c));
        let left = merge_blocks(&merge_blocks(&a, &b), &c);
        let right = merge_blocks(&a, &merge_blocks(&b, &c));
        assert_blocks_eq(&left, &right)?;
        assert_blocks_eq(&merge_blocks(&a, &b), &merge_blocks(&b, &a))?;
    }

    /// The empty block is the merge identity, and deriving from an empty
    /// batch yields an empty result for every target.
    #[test]
    fn empty_batch_is_the_identity(a in cells_strategy(40)) {
        let a = block_of(&a);
        let empty = CellBlock::new(2, 1);
        assert_blocks_eq(&merge_blocks(&a, &empty), &a)?;
        assert_blocks_eq(&merge_blocks(&empty, &a), &a)?;
        for target in [0b11u32, 0b01, 0b10, 0] {
            prop_assert!(derive_block(&empty, 0b11, target, &[]).is_empty());
        }
    }

    /// Selection-vector masking law: deriving with pushed-down filters
    /// equals deriving the pre-filtered source with no filters — the
    /// selection vector must be exactly a filter, never a re-aggregation.
    #[test]
    fn selection_vector_equals_prefiltered_input(
        cells in cells_strategy(80),
        allowed0 in proptest::collection::btree_set(0..KEY_SPACE, 0..5),
        allowed1 in proptest::collection::btree_set(0..KEY_SPACE, 0..5),
        target in 0u32..4,
    ) {
        let allowed0: Vec<u32> = allowed0.into_iter().collect();
        let allowed1: Vec<u32> = allowed1.into_iter().collect();
        let src = block_of(&cells);
        let filters = vec![(0usize, allowed0.clone()), (1usize, allowed1.clone())];
        let masked = derive_block(&src, 0b11, target, &filters);
        let kept: Vec<Cell> = cells
            .iter()
            .filter(|(a, b, _)| {
                allowed0.binary_search(a).is_ok() && allowed1.binary_search(b).is_ok()
            })
            .copied()
            .collect();
        let prefiltered = derive_block(&block_of(&kept), 0b11, target, &[]);
        assert_blocks_eq(&masked, &prefiltered)?;
    }

    /// Derivation then merge commutes with merge then derivation: deriving
    /// each part and merging equals deriving the merged source (partial
    /// aggregation correctness, the property partition-parallel CUBE and
    /// delta folds rely on).
    #[test]
    fn derive_commutes_with_merge(
        a in cells_strategy(60), b in cells_strategy(60), target in 0u32..4
    ) {
        let whole = block_of(&[a.clone(), b.clone()].concat());
        let merged_then_derived = derive_block(&whole, 0b11, target, &[]);
        let derived_then_merged = merge_blocks(
            &derive_block(&block_of(&a), 0b11, target, &[]),
            &derive_block(&block_of(&b), 0b11, target, &[]),
        );
        assert_blocks_eq(&merged_then_derived, &derived_then_merged)?;
    }
}
