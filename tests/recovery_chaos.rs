//! Recovery chaos suite: kill the durable writer at every protocol step
//! and prove recovery lands on a **bit-for-bit** pre-delta or post-delta
//! store — never a hybrid — across 120 seeds and all five workload
//! generators.
//!
//! Each seed builds a durable store over a generator workload (generator
//! chosen by `seed % 5`), then runs six crash cycles: one per armed
//! [`CrashPoint`] (the injected panic is the simulated `kill -9`; only the
//! journal + manifest survive the `drop`), plus one torn-append cycle where
//! the journal device itself tears mid-record under the seeded fault plan.
//! After every crash the store is rebuilt with [`SharedViewStore::recover`]
//! and compared — every materialized view, at the bit level — against
//! from-scratch oracles of the pre-delta and post-delta fact sets.
//!
//! The pinned contract:
//!
//! * the recovered store equals exactly one of the two oracles (pre XOR
//!   post — integer measures make bit equality meaningful, as in the
//!   differential maintenance suite);
//! * a crash **before** the delta record is durable (`PreAppend`, torn
//!   append) recovers pre-delta; once the record is durable
//!   (`PostAppend` onward) recovery replays to post-delta;
//! * **commit-stamped ⇒ applied**: every commit-stamped sequence number is
//!   in the recovered image (`committed_seq ≤ applied_seq`) — an
//!   acknowledged batch can never be lost;
//! * the crash injector disarms on firing, torn appends surface as typed
//!   [`Error::JournalTornAppend`] with the store untouched, and the
//!   journal's fault counters record every tear and truncation.

use std::panic::{catch_unwind, AssertUnwindSafe};

use statcube::core::error::Error;
use statcube::core::measure::{MeasureKind, SummaryFunction};
use statcube::core::object::StatisticalObject;
use statcube::cube::cache::CacheConfig;
use statcube::cube::groupby::Cuboid;
use statcube::cube::input::FactInput;
use statcube::cube::query::ViewStore;
use statcube::cube::shared::{DurableParts, SharedViewStore};
use statcube::storage::page_store::FaultPlan;
use statcube::storage::wal::{CrashPoint, CRASH_PANIC_PREFIX};
use statcube::workload::prelude::*;
use statcube::workload::{census, hmo, resources, retail, stocks};

const SEEDS: u64 = 120;

/// Facts from any statistical object, first measure only, integerized to
/// cents so `f64` summation is exact (same rationale as the differential
/// maintenance suite: bit-for-bit comparison is meaningful).
fn integer_facts(obj: &StatisticalObject) -> FactInput {
    let mut f = FactInput::new(&obj.schema().cardinalities()).unwrap();
    for (coords, states) in obj.cells() {
        f.push(coords, (states[0].sum * 100.0).round()).unwrap();
    }
    f
}

/// The base workload for one seed: generator chosen by `seed % 5`, sized
/// small enough that 120 seeds stay fast.
fn generator_facts(seed: u64) -> FactInput {
    match seed % 5 {
        0 => {
            let w = retail::generate(&RetailConfig {
                products: 6,
                categories: 2,
                cities: 2,
                stores_per_city: 2,
                days: 10,
                rows: 300,
                seed,
            });
            integer_facts(&w.object)
        }
        1 => {
            let c = census::generate(&CensusConfig {
                states: 3,
                counties_per_state: 2,
                rows: 300,
                seed,
            });
            let obj = c
                .micro
                .summarize(
                    &["state", "sex", "race"],
                    Some("income"),
                    SummaryFunction::Sum,
                    MeasureKind::Flow,
                )
                .unwrap();
            integer_facts(&obj)
        }
        2 => {
            let w = stocks::generate(&StocksConfig { stocks: 5, industries: 2, weeks: 3, seed });
            integer_facts(&w.object)
        }
        3 => {
            let w = hmo::generate(&HmoConfig { hospitals: 3, months: 3, rows: 250, seed });
            integer_facts(&w.object)
        }
        _ => {
            let w = resources::generate(&ResourcesConfig {
                basins: 2,
                rivers_per_basin: 2,
                stations_per_river: 2,
                months: 5,
                seed,
            });
            integer_facts(&w.object)
        }
    }
}

/// A seeded delta batch within the store's existing cardinalities, with
/// strictly positive integer measures — so the post-delta image always
/// differs from the pre-delta image (the base cuboid's total strictly
/// grows) and "pre XOR post" is decidable.
fn synth_delta(cards: &[usize], seed: u64, rows: usize) -> FactInput {
    let mut f = FactInput::new(cards).unwrap();
    let mut x = seed.wrapping_mul(0x9E37_79B9).max(1);
    let mut coords = vec![0u32; cards.len()];
    for _ in 0..rows {
        for (d, c) in coords.iter_mut().enumerate() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *c = (x % cards[d] as u64) as u32;
        }
        f.push(&coords, (1 + x % 97) as f64).unwrap();
    }
    f
}

fn append_facts(into: &mut FactInput, from: &FactInput) {
    for row in 0..from.len() {
        into.push(&from.coords(row), from.measure()[row]).unwrap();
    }
}

fn bit_identical(a: &Cuboid, b: &Cuboid) -> bool {
    a.len() == b.len()
        && a.iter().all(|(k, sa)| {
            b.get(k).is_some_and(|sb| {
                sa.sum.to_bits() == sb.sum.to_bits()
                    && sa.count == sb.count
                    && sa.min.to_bits() == sb.min.to_bits()
                    && sa.max.to_bits() == sb.max.to_bits()
            })
        })
}

/// Bit-for-bit logical equality of two stores: same lattice shape, same
/// materialized set, every materialized view identical at the bit level.
fn equivalent(a: &ViewStore, oracle: &ViewStore) -> bool {
    a.materialized() == oracle.materialized()
        && a.lattice().cards() == oracle.lattice().cards()
        && a.materialized()
            .into_iter()
            .all(|m| bit_identical(a.view(m).unwrap(), oracle.view(m).unwrap()))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .unwrap_or("<non-string panic payload>")
}

/// One kill cycle: arm `point`, catch the injected death mid-`apply_delta`,
/// drop the store (the process is gone; the [`DurableParts`] are the disk),
/// recover, and pin the outcome contract. Returns the recovered store;
/// `loaded` is advanced iff the delta survived.
fn crash_and_recover_cycle(
    store: SharedViewStore,
    parts: &DurableParts,
    loaded: &mut FactInput,
    delta: &FactInput,
    point: CrashPoint,
    selected: &[u32],
    label: &str,
) -> SharedViewStore {
    parts.crash().arm(point);
    let outcome = catch_unwind(AssertUnwindSafe(|| store.apply_delta(delta)));
    let payload = match outcome {
        Err(p) => p,
        Ok(r) => panic!("{label}: armed {point:?} did not fire (apply returned {r:?})"),
    };
    let msg = panic_message(payload.as_ref());
    assert!(
        msg.starts_with(CRASH_PANIC_PREFIX),
        "{label}: expected an injected crash, got a genuine panic: {msg}"
    );
    assert!(parts.crash().armed().is_none(), "{label}: injector must disarm on firing");
    drop(store);

    let (recovered, report) = SharedViewStore::recover(parts, CacheConfig::default()).expect(label);
    let snap = recovered.snapshot();
    let pre = ViewStore::build(loaded, selected).unwrap();
    let mut with_delta = loaded.clone();
    append_facts(&mut with_delta, delta);
    let post = ViewStore::build(&with_delta, selected).unwrap();
    let matches_pre = equivalent(snap.store(), &pre);
    let matches_post = equivalent(snap.store(), &post);
    assert!(
        matches_pre != matches_post,
        "{label}: recovered store is {} the pre- and post-delta oracles (hybrid state?)",
        if matches_pre { "both" } else { "neither" }
    );
    // Acknowledgement oracle: every commit-stamped sequence number must be
    // in the recovered image.
    if let Some(committed) = report.committed_seq {
        assert!(
            committed <= report.applied_seq,
            "{label}: commit-stamped record {committed} lost (applied through {})",
            report.applied_seq
        );
    }
    // Durability boundary: before the delta record is durable the crash
    // loses the batch; from PostAppend onward recovery replays it.
    let expect_post = point != CrashPoint::PreAppend;
    assert_eq!(
        matches_post, expect_post,
        "{label}: crash at {point:?} recovered to the wrong side of the delta \
         (replayed {} deltas, {} rows)",
        report.replayed_deltas, report.replayed_rows
    );
    if matches_post {
        *loaded = with_delta;
    }
    recovered
}

/// One torn-append cycle: the journal device tears the delta record itself
/// under the seeded fault plan. The append is a typed error (batch not
/// acknowledged), the living store is untouched, and a process death right
/// there recovers pre-delta after truncating the torn tail.
fn torn_append_cycle(
    store: SharedViewStore,
    parts: &DurableParts,
    loaded: &FactInput,
    seed: u64,
    selected: &[u32],
) {
    let label = format!("seed {seed} torn append");
    let delta = synth_delta(loaded.cards(), seed ^ 0xDEAD_BEEF, 10);
    parts.journal().arm(FaultPlan { torn_write: 1.0, ..FaultPlan::fault_free(seed) });
    let err = store.apply_delta(&delta).unwrap_err();
    assert!(
        matches!(err, Error::JournalTornAppend { .. }),
        "{label}: expected JournalTornAppend, got {err:?}"
    );
    parts.journal().disarm();
    let pre = ViewStore::build(loaded, selected).unwrap();
    assert!(
        equivalent(store.snapshot().store(), &pre),
        "{label}: a torn (unacknowledged) append must leave the living store untouched"
    );
    drop(store);
    let (recovered, report) =
        SharedViewStore::recover(parts, CacheConfig::default()).expect(&label);
    assert!(report.truncated_bytes > 0, "{label}: recovery must truncate the torn tail");
    assert!(
        equivalent(recovered.snapshot().store(), &pre),
        "{label}: recovery after a torn append must land pre-delta"
    );
    let stats = parts.journal().stats();
    assert!(stats.journal_torn_appends >= 1, "{label}: tear not counted");
    assert!(stats.journal_truncations >= 1, "{label}: truncation not counted");
}

/// Runs the full six-cycle gauntlet for one seed: all five kill points in
/// pipeline order (the recovered store of each cycle is the writer of the
/// next — recovery after recovery, over one growing journal), then the
/// torn-append mode.
fn run_seed(seed: u64) {
    let facts = generator_facts(seed + 1);
    let n = facts.dim_count();
    let selected: Vec<u32> = (0..n).map(|d| 1u32 << d).collect();
    let parts = DurableParts::new();
    let mut store =
        SharedViewStore::build_durable_on(&facts, &selected, CacheConfig::default(), parts.clone())
            .unwrap();
    let mut loaded = facts;
    for (i, point) in CrashPoint::ALL.into_iter().enumerate() {
        let delta = synth_delta(loaded.cards(), seed * 31 + i as u64 + 1, 10);
        let label = format!("seed {seed} cycle {i}");
        store =
            crash_and_recover_cycle(store, &parts, &mut loaded, &delta, point, &selected, &label);
    }
    torn_append_cycle(store, &parts, &loaded, seed, &selected);
}

/// The headline sweep: 120 seeds, generator chosen by seed, all five kill
/// points plus the torn-append mode per seed.
#[test]
fn recovery_is_pre_or_post_delta_across_seeds_and_generators() {
    for seed in 0..SEEDS {
        run_seed(seed);
    }
}

/// One seed through every kill point — the ci.sh quick-mode slice of the
/// sweep above (full mode runs the whole file).
#[test]
fn kill_points_quick() {
    run_seed(7);
}

/// Satellite: the writer mutex heals after an injected mid-fold panic. The
/// same living store — no recovery — accepts and correctly applies the next
/// delta, because [`SharedViewStore::apply_delta`]'s writer lease clears
/// the poison its unwind left behind.
///
/// Also pins the acknowledgement semantics of the *caught*-panic case: the
/// first delta was journaled but never acknowledged (the caller saw a
/// panic, not `Ok`), so its outcome is indeterminate — the living store
/// continues without it, while a later recovery replays it from the
/// journal. Both images are legitimate; what is forbidden is losing an
/// acknowledged batch, and the commit-stamp oracle still holds.
#[test]
fn midseal_panic_heals_the_writer_lock_and_the_next_delta_applies() {
    let base = synth_delta(&[6, 4, 3], 91, 240);
    let selected = [0b001u32, 0b010, 0b100];
    let parts = DurableParts::new();
    let store =
        SharedViewStore::build_durable_on(&base, &selected, CacheConfig::default(), parts.clone())
            .unwrap();
    let d1 = synth_delta(base.cards(), 92, 15);
    let d2 = synth_delta(base.cards(), 93, 15);

    parts.crash().arm(CrashPoint::MidSeal);
    let died = catch_unwind(AssertUnwindSafe(|| store.apply_delta(&d1)));
    assert!(died.is_err(), "armed MidSeal must fire");

    // The lock healed: the very next writer proceeds instead of finding a
    // poisoned mutex, and the published store is still the pre-d1 image.
    let report = store.apply_delta(&d2).expect("writer must survive a mid-fold panic");
    assert_eq!(report.rows as usize, d2.len());
    let mut base_d2 = base.clone();
    append_facts(&mut base_d2, &d2);
    let oracle = ViewStore::build(&base_d2, &selected).unwrap();
    assert!(
        equivalent(store.snapshot().store(), &oracle),
        "the living store must be base + d2 exactly (d1 died unacknowledged mid-fold)"
    );

    // Recovery replays the journal: the unacknowledged d1 record is intact
    // and durable, so the recovered image holds base + d1 + d2 — the other
    // legitimate resolution of d1's indeterminate outcome.
    drop(store);
    let (recovered, rec) = SharedViewStore::recover(&parts, CacheConfig::default()).unwrap();
    assert_eq!(rec.replayed_deltas, 2);
    if let Some(committed) = rec.committed_seq {
        assert!(committed <= rec.applied_seq, "commit-stamped record lost in recovery");
    }
    let mut all = base;
    append_facts(&mut all, &d1);
    append_facts(&mut all, &d2);
    let oracle_all = ViewStore::build(&all, &selected).unwrap();
    assert!(equivalent(recovered.snapshot().store(), &oracle_all));
}

/// A checkpoint bounds replay: recovery restarts from the checkpoint's
/// snapshot record and replays only the deltas past it, landing on the
/// same bit-for-bit image.
#[test]
fn checkpoint_bounds_recovery_replay() {
    let base = synth_delta(&[5, 4, 2], 71, 200);
    let selected = [0b011u32, 0b101];
    let parts = DurableParts::new();
    let store =
        SharedViewStore::build_durable_on(&base, &selected, CacheConfig::default(), parts.clone())
            .unwrap();
    let mut loaded = base.clone();
    for s in 0..3u64 {
        let d = synth_delta(base.cards(), 72 + s, 12);
        store.apply_delta(&d).unwrap();
        append_facts(&mut loaded, &d);
    }
    store.checkpoint().unwrap();
    let d_tail = synth_delta(base.cards(), 79, 12);
    store.apply_delta(&d_tail).unwrap();
    append_facts(&mut loaded, &d_tail);

    drop(store);
    let (recovered, report) = SharedViewStore::recover(&parts, CacheConfig::default()).unwrap();
    assert!(report.manifest_used, "an intact manifest must guide recovery");
    assert_eq!(report.replayed_deltas, 1, "only the post-checkpoint delta replays");
    let oracle = ViewStore::build(&loaded, &selected).unwrap();
    assert!(equivalent(recovered.snapshot().store(), &oracle));

    // A non-durable store refuses to checkpoint (typed error, no panic).
    let plain = SharedViewStore::build(&base, &selected, CacheConfig::default()).unwrap();
    assert!(plain.checkpoint().is_err());
}

/// A durable rebuild (full re-materialization) checkpoints its result: the
/// journaled deltas before it can no longer matter, and recovery restarts
/// from the rebuilt image.
#[test]
fn durable_rebuild_checkpoints_the_new_content() {
    let base = synth_delta(&[4, 3, 2], 51, 150);
    let selected = [0b001u32, 0b110];
    let parts = DurableParts::new();
    let store =
        SharedViewStore::build_durable_on(&base, &selected, CacheConfig::default(), parts.clone())
            .unwrap();
    store.apply_delta(&synth_delta(base.cards(), 52, 10)).unwrap();

    // Out-of-band content change: rebuild from a different fact set.
    let replacement = synth_delta(&[4, 3, 2], 53, 180);
    store.rebuild(&replacement).unwrap();

    drop(store);
    let (recovered, report) = SharedViewStore::recover(&parts, CacheConfig::default()).unwrap();
    assert_eq!(report.replayed_deltas, 0, "the rebuild's snapshot supersedes all prior deltas");
    let oracle = ViewStore::build(&replacement, &selected).unwrap();
    assert!(equivalent(recovered.snapshot().store(), &oracle));
}

/// A corrupt manifest must not derail recovery: the loader returns a typed
/// checksum error, recovery falls back to the full journal scan, and the
/// recovered image is unchanged.
#[test]
fn corrupt_manifest_falls_back_to_journal_scan() {
    let base = synth_delta(&[5, 3, 2], 61, 180);
    let selected = [0b010u32, 0b101];
    let parts = DurableParts::new();
    let store =
        SharedViewStore::build_durable_on(&base, &selected, CacheConfig::default(), parts.clone())
            .unwrap();
    let d = synth_delta(base.cards(), 62, 12);
    store.apply_delta(&d).unwrap();
    drop(store);

    parts.manifest().corrupt_bit(13);
    assert!(parts.manifest().load().is_err(), "a corrupt manifest must be a typed error");
    let (recovered, report) = SharedViewStore::recover(&parts, CacheConfig::default()).unwrap();
    assert!(!report.manifest_used, "recovery must fall back to scanning");
    let mut loaded = base.clone();
    append_facts(&mut loaded, &d);
    let oracle = ViewStore::build(&loaded, &selected).unwrap();
    assert!(equivalent(recovered.snapshot().store(), &oracle));
}
