//! Property suite for the partition-parallel cube engine: every thread
//! count computes the same cube as the sequential oracle, on arbitrary
//! dimension counts and cardinalities, and the partial-aggregation state
//! it merges on really is a commutative monoid.

use proptest::prelude::*;

use statcube::core::measure::AggState;
use statcube::cube::cube_op::{compute_naive, compute_parallel, DerivationSource};
use statcube::cube::input::FactInput;

/// Thread counts every equivalence property is checked under: sequential,
/// small, odd/larger-than-levels, and whatever the hardware offers.
fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut t = vec![1, 2, 7, hw];
    t.sort_unstable();
    t.dedup();
    t
}

/// Facts with a random shape: 1–4 dimensions, cardinalities 1–6, up to 300
/// rows, **integer-valued** measures so sums are exact in `f64` and
/// equality can be `==` rather than tolerance-based.
fn int_facts() -> impl Strategy<Value = FactInput> {
    (proptest::collection::vec(1usize..=6, 1..=4), 0usize..300, 1u64..u64::MAX).prop_map(
        |(cards, rows, seed)| {
            let mut f = FactInput::new(&cards).unwrap();
            let mut x = seed;
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for _ in 0..rows {
                let coords: Vec<u32> = cards.iter().map(|&c| (next() % c as u64) as u32).collect();
                let v = (next() % 2001) as f64 - 1000.0; // integer in [-1000, 1000]
                f.push(&coords, v).unwrap();
            }
            f
        },
    )
}

/// Like [`int_facts`] but with arbitrary float measures, for the
/// tolerance-based check (merge order changes float sums by rounding only).
fn float_facts() -> impl Strategy<Value = FactInput> {
    int_facts().prop_map(|mut f| {
        let cards = f.cards().to_vec();
        let mut g = FactInput::new(&cards).unwrap();
        for row in 0..f.len() {
            let v = f.measure()[row];
            g.push(&f.coords(row), v * 0.1 + 1.0 / 3.0).unwrap();
        }
        std::mem::swap(&mut f, &mut g);
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline oracle: `compute_parallel` is cell-for-cell identical
    /// to `compute_naive` (2^n independent scans) at every thread count.
    /// Integer measures make this bit-exact, so plain `==` applies
    /// (`CubeResult` equality covers masks, keys and full `AggState`s).
    #[test]
    fn parallel_equals_naive_oracle(f in int_facts()) {
        let oracle = compute_naive(&f);
        for threads in thread_counts() {
            let par = compute_parallel(&f, threads);
            prop_assert_eq!(&par, &oracle, "threads={}", threads);
        }
    }

    /// Float measures: counts/min/max stay bit-exact; sums agree up to
    /// re-association rounding.
    #[test]
    fn parallel_float_sums_agree_within_rounding(f in float_facts()) {
        let oracle = compute_naive(&f);
        for threads in thread_counts() {
            let par = compute_parallel(&f, threads);
            prop_assert_eq!(par.masks(), oracle.masks());
            for mask in oracle.masks() {
                let a = oracle.cuboid(mask).unwrap();
                let b = par.cuboid(mask).unwrap();
                prop_assert_eq!(a.len(), b.len(), "mask {:b}", mask);
                for (key, sa) in a {
                    let sb = &b[key];
                    prop_assert!((sa.sum - sb.sum).abs() <= 1e-9 * (1.0 + sa.sum.abs()));
                    prop_assert_eq!(sa.count, sb.count);
                    prop_assert_eq!(sa.min, sb.min);
                    prop_assert_eq!(sa.max, sb.max);
                }
            }
        }
    }

    /// Thread count is an implementation knob: the derivation plan (which
    /// parent each cuboid is computed from) must not change with it.
    #[test]
    fn derivation_plan_is_thread_invariant(f in int_facts(), threads in 2usize..9) {
        let seq = compute_parallel(&f, 1);
        let par = compute_parallel(&f, threads);
        for (a, b) in seq.stats().iter().zip(par.stats()) {
            prop_assert_eq!(a.mask, b.mask);
            prop_assert_eq!(a.rows_scanned, b.rows_scanned);
            prop_assert_eq!(a.cells, b.cells);
            match (a.source, b.source) {
                (DerivationSource::BaseFacts { .. }, DerivationSource::BaseFacts { .. }) => {}
                (sa, sb) => prop_assert_eq!(sa, sb, "mask {:b}", a.mask),
            }
        }
    }

    /// Merge is commutative: `a ⊕ b = b ⊕ a` — exactly, even for floats
    /// (IEEE addition commutes; min/max/count trivially do).
    #[test]
    fn merge_commutes(a in agg_state(), b in agg_state()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    /// Merge is associative: `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`. Exact here
    /// because the generated sums are integers (float addition only
    /// re-associates up to rounding in general).
    #[test]
    fn merge_associates(a in agg_state(), b in agg_state(), c in agg_state()) {
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    /// `EMPTY` is a two-sided identity: `a ⊕ ε = ε ⊕ a = a`.
    #[test]
    fn merge_empty_is_identity(a in agg_state()) {
        prop_assert_eq!(a.merged(&AggState::EMPTY), a);
        prop_assert_eq!(AggState::EMPTY.merged(&a), a);
    }

    /// `merge_many` over any split of a sequence equals the whole-sequence
    /// fold — the exact identity the per-partition merge uses.
    #[test]
    fn merge_many_is_split_invariant(
        vals in proptest::collection::vec(-500i64..500, 0..40),
        split in 0usize..41,
    ) {
        let states: Vec<AggState> =
            vals.iter().map(|&v| AggState::from_value(v as f64)).collect();
        let split = split.min(states.len());
        let whole = AggState::merge_many(&states);
        let left = AggState::merge_many(&states[..split]);
        let right = AggState::merge_many(&states[split..]);
        prop_assert_eq!(left.merged(&right), whole);
    }
}

/// States built from small integer observations (sums stay exact), plus
/// the occasional `EMPTY`.
fn agg_state() -> impl Strategy<Value = AggState> {
    proptest::collection::vec(-100i64..100, 0..8).prop_map(|vals| {
        AggState::merge_many(
            &vals.iter().map(|&v| AggState::from_value(v as f64)).collect::<Vec<_>>(),
        )
    })
}

#[test]
fn empty_input_all_thread_counts() {
    let f = FactInput::new(&[3, 2, 4]).unwrap();
    let oracle = compute_naive(&f);
    for threads in thread_counts() {
        let c = compute_parallel(&f, threads);
        assert_eq!(c, oracle, "threads={threads}");
        assert_eq!(c.total_cells(), 0);
        assert_eq!(c.masks().len(), 8);
    }
}

#[test]
fn single_row_all_thread_counts() {
    let mut f = FactInput::new(&[3, 2]).unwrap();
    f.push(&[2, 1], 9.0).unwrap();
    let oracle = compute_naive(&f);
    for threads in thread_counts() {
        let c = compute_parallel(&f, threads);
        assert_eq!(c, oracle, "threads={threads}");
        // One row can't be split: the base scan must report one partition.
        let base = c.stats_for(0b11).unwrap();
        assert_eq!(base.source, DerivationSource::BaseFacts { partitions: 1 });
    }
}

#[test]
fn zero_threads_clamps_to_one() {
    let mut f = FactInput::new(&[2]).unwrap();
    f.push(&[0], 1.0).unwrap();
    f.push(&[1], 2.0).unwrap();
    assert_eq!(compute_parallel(&f, 0), compute_naive(&f));
}

#[test]
fn more_threads_than_rows_still_correct() {
    let mut f = FactInput::new(&[4, 4]).unwrap();
    for i in 0..5u32 {
        f.push(&[i % 4, (i * 3) % 4], f64::from(i)).unwrap();
    }
    let c = compute_parallel(&f, 64);
    assert_eq!(c, compute_naive(&f));
    // Partitions are capped by the row count.
    match c.stats_for(0b11).unwrap().source {
        DerivationSource::BaseFacts { partitions } => assert!(partitions <= 5),
        ref s => panic!("base cuboid not scanned from facts: {s:?}"),
    }
}
