//! Property tests on the storage substrates: every physical organization
//! is a lossless view of the same logical data, and the B+tree behaves
//! like the standard ordered map.

use std::collections::BTreeMap;

use proptest::prelude::*;

use statcube::storage::bittransposed::BitSlicedColumn;
use statcube::storage::btree::BPlusTree;
use statcube::storage::chunked::ChunkedArray;
use statcube::storage::encoding::EncodedColumn;
use statcube::storage::extendible::ExtendibleArray;
use statcube::storage::header::HeaderCompressed;
use statcube::storage::linear::LinearizedArray;
use statcube::storage::rle::Rle;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encoded_column_round_trips(codes in proptest::collection::vec(0u32..1000, 0..300)) {
        let max = codes.iter().copied().max().unwrap_or(0).max(1) as u64;
        let bits = (64 - (max).leading_zeros()).clamp(1, 32);
        let col = EncodedColumn::pack(&codes, bits).unwrap();
        prop_assert_eq!(col.unpack(), codes);
    }

    #[test]
    fn rle_round_trips(values in proptest::collection::vec(0u32..5, 0..300)) {
        let r = Rle::encode(&values);
        prop_assert_eq!(r.decode(), &values[..]);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(r.get(i), Some(v));
        }
    }

    #[test]
    fn bitsliced_matches_naive_eq(
        codes in proptest::collection::vec(0u32..16, 1..300),
        probe in 0u32..16,
    ) {
        let col = BitSlicedColumn::build(&codes, 4).unwrap();
        let io = statcube::storage::io_stats::IoStats::new(4096);
        let bm = col.eq_scan(probe, &io);
        let got: Vec<usize> = BitSlicedColumn::iter_ones(&bm).collect();
        let expected: Vec<usize> = codes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == probe)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn header_compression_round_trips(
        cells in proptest::collection::vec(proptest::option::weighted(0.3, -100i64..100), 0..500)
    ) {
        let dense: Vec<f64> = cells.iter().map(|c| c.map(|v| v as f64).unwrap_or(f64::NAN)).collect();
        let h = HeaderCompressed::from_dense(&dense);
        for (i, c) in cells.iter().enumerate() {
            prop_assert_eq!(h.get(i), c.map(|v| v as f64));
        }
        // Inverse mapping is the left inverse of enumeration of non-nulls.
        let mut p = 0;
        for (i, c) in cells.iter().enumerate() {
            if c.is_some() {
                prop_assert_eq!(h.logical_of(p).unwrap(), i);
                p += 1;
            }
        }
        // Range sums match a naive filter.
        let lo = cells.len() / 4;
        let hi = cells.len() - cells.len() / 4;
        let naive: f64 = dense[lo..hi].iter().filter(|v| !v.is_nan()).sum();
        prop_assert!((h.range_sum(lo, hi) - naive).abs() < 1e-9);
    }

    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec((0u64..500, 0u64..1000), 0..400)) {
        let mut tree = BPlusTree::new();
        let mut map = BTreeMap::new();
        for (k, v) in &ops {
            tree.insert(*k, *v);
            map.insert(*k, *v);
        }
        prop_assert_eq!(tree.len(), map.len());
        for k in 0..500u64 {
            prop_assert_eq!(tree.get(k), map.get(&k).copied());
            let expected_le = map.range(..=k).next_back().map(|(&k, &v)| (k, v));
            prop_assert_eq!(tree.last_le(k), expected_le);
            let expected_ge = map.range(k..).next().map(|(&k, &v)| (k, v));
            prop_assert_eq!(tree.first_ge(k), expected_ge);
        }
        let all: Vec<(u64, u64)> = map.into_iter().collect();
        prop_assert_eq!(tree.iter_all(), all);
    }

    #[test]
    fn chunked_equals_linearized(
        writes in proptest::collection::vec((0usize..12, 0usize..9, -50i64..50), 0..150),
        chunk in (1usize..13, 1usize..10),
    ) {
        let mut lin = LinearizedArray::new(&[12, 9]).unwrap();
        let mut chunked = ChunkedArray::new(&[12, 9], &[chunk.0, chunk.1], 4096).unwrap();
        for (i, j, v) in &writes {
            lin.set(&[*i, *j], *v as f64).unwrap();
            chunked.set(&[*i, *j], *v as f64).unwrap();
        }
        for i in 0..12 {
            for j in 0..9 {
                prop_assert_eq!(lin.get(&[i, j]).unwrap(), chunked.get(&[i, j]).unwrap());
            }
        }
        // Random-rectangle range sums agree with a naive loop.
        let (sum, count) = chunked.range_sum(&[2, 1], &[10, 8]).unwrap();
        let mut nsum = 0.0;
        let mut ncount = 0;
        for i in 2..10 {
            for j in 1..8 {
                if let Some(v) = lin.get(&[i, j]).unwrap() {
                    nsum += v;
                    ncount += 1;
                }
            }
        }
        prop_assert!((sum - nsum).abs() < 1e-9);
        prop_assert_eq!(count, ncount);
    }

    #[test]
    fn extendible_equals_dense_reference(
        extensions in proptest::collection::vec((0usize..2, 1usize..3), 0..6),
        writes in proptest::collection::vec((0usize..64, -50i64..50), 0..100),
    ) {
        let mut arr = ExtendibleArray::new(&[3, 3], 4096).unwrap();
        let mut shape = [3usize, 3];
        for (d, k) in &extensions {
            arr.extend(*d, *k).unwrap();
            shape[*d] += *k;
        }
        let mut reference = std::collections::HashMap::new();
        for (pos, v) in &writes {
            let i = pos % shape[0];
            let j = (pos / shape[0]) % shape[1];
            arr.set(&[i, j], *v as f64).unwrap();
            reference.insert((i, j), *v as f64);
        }
        for i in 0..shape[0] {
            for j in 0..shape[1] {
                prop_assert_eq!(arr.get(&[i, j]).unwrap(), reference.get(&(i, j)).copied());
            }
        }
        let (sum, count) = arr.range_sum(&[0, 0], &[shape[0], shape[1]]).unwrap();
        let nsum: f64 = reference.values().sum();
        prop_assert!((sum - nsum).abs() < 1e-9);
        prop_assert_eq!(count as usize, reference.len());
    }
}
