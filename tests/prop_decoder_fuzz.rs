//! Corrupt-input fuzzing for the storage-layer decoders.
//!
//! The page store's checksum catches bit rot, but a decoder must also
//! survive *structurally* valid pages carrying garbage payloads (a stale
//! page whose checksum was recomputed, a buggy writer, a hostile file).
//! These properties assert the contract the decoders document: on any
//! byte input, [`statcube::storage::lzw::decompress`] and
//! [`Rle::from_bytes`] either succeed or return a typed error — they
//! never panic, index out of bounds, or loop unboundedly.

use proptest::prelude::*;

use statcube::storage::lzw;
use statcube::storage::rle::Rle;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte garbage through the LZW decoder.
    #[test]
    fn lzw_decompress_never_panics_on_garbage(data in proptest::collection::vec(0u8..=255, 0..256)) {
        // Returning is the property; both Ok and Err are acceptable.
        let _ = lzw::decompress(&data);
    }

    /// Truncating a *valid* LZW stream mid-code must fail cleanly (or, for
    /// prefixes that happen to stay well-formed, decode to a prefix — but
    /// never panic).
    #[test]
    fn lzw_decompress_survives_truncation(
        input in proptest::collection::vec(0u8..=255, 1..128),
        cut_num in 0u32..=1000,
    ) {
        let full = lzw::compress(&input);
        let cut = (cut_num as usize * full.len() / 1000).min(full.len());
        let _ = lzw::decompress(&full[..cut]);
        // The untruncated stream still round-trips.
        prop_assert_eq!(lzw::decompress(&full).unwrap(), input);
    }

    /// Flipping bytes inside a valid LZW stream must not panic the decoder.
    #[test]
    fn lzw_decompress_survives_corruption(
        input in proptest::collection::vec(0u8..=255, 1..128),
        at_num in 0u32..1000,
        xor in 1u8..=255,
    ) {
        let mut full = lzw::compress(&input);
        let at = at_num as usize * full.len() / 1000;
        full[at] ^= xor;
        let _ = lzw::decompress(&full);
    }

    /// Arbitrary byte garbage through the RLE byte decoder.
    #[test]
    fn rle_from_bytes_never_panics_on_garbage(data in proptest::collection::vec(0u8..=255, 0..256)) {
        if let Ok(rle) = Rle::<u32>::from_bytes(&data) {
            // Anything accepted must be internally consistent: decoding
            // yields exactly the recorded logical length.
            prop_assert_eq!(rle.decode().len(), rle.len());
        }
    }

    /// Truncating a valid RLE buffer is always a typed error: the header
    /// records the run count, so every proper prefix is length-inconsistent.
    #[test]
    fn rle_from_bytes_rejects_truncation(values in proptest::collection::vec(0u32..4, 1..64)) {
        let full = Rle::encode(&values).to_bytes();
        for cut in 0..full.len() {
            prop_assert!(Rle::<u32>::from_bytes(&full[..cut]).is_err(), "cut at {}", cut);
        }
        prop_assert_eq!(Rle::<u32>::from_bytes(&full).unwrap().decode(), values);
    }
}
