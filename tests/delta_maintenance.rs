//! Differential maintenance suite: incremental [`ViewStore::apply_delta`]
//! must equal a full [`ViewStore::build`] **bit for bit**, across every
//! materialized cuboid and every answerable mask, for
//!
//! * all five workload generators (census, retail, stocks, HMO, resources),
//! * repeated identical deltas,
//! * empty deltas (a reseal that changes no logical content),
//! * deltas introducing previously-unseen dimension values — the
//!   extendible-array growth path of \[RZ86\],
//! * rejected deltas, which must provably mutate nothing.
//!
//! Bit-for-bit is meaningful because every measure is integerized (workload
//! sums are rounded to cents): integer-valued `f64` sums are exact under
//! any association, so the fold's different merge grouping cannot shift an
//! ulp relative to the rebuild. Same rationale as the chaos suite.

use std::collections::HashMap;

use statcube::core::error::Error;
use statcube::core::measure::{AggState, MeasureKind, SummaryFunction};
use statcube::core::object::StatisticalObject;
use statcube::cube::groupby::Cuboid;
use statcube::cube::input::FactInput;
use statcube::cube::query::ViewStore;
use statcube::workload::prelude::*;
use statcube::workload::{census, hmo, resources, retail, stocks};

/// Facts from any statistical object, first measure only, integerized to
/// cents so `f64` summation is exact (multi-measure objects like stocks and
/// resources can't go through `FactInput::from_object`).
fn integer_facts(obj: &StatisticalObject) -> FactInput {
    let mut f = FactInput::new(&obj.schema().cardinalities()).unwrap();
    for (coords, states) in obj.cells() {
        f.push(coords, (states[0].sum * 100.0).round()).unwrap();
    }
    f
}

/// The sub-batch of rows `[start, end)`, over the given cardinalities
/// (which may exceed the source's — the growth tests redeclare them).
fn slice_with_cards(f: &FactInput, cards: &[usize], start: usize, end: usize) -> FactInput {
    let mut out = FactInput::new(cards).unwrap();
    for row in start..end {
        out.push(&f.coords(row), f.measure()[row]).unwrap();
    }
    out
}

fn slice(f: &FactInput, start: usize, end: usize) -> FactInput {
    slice_with_cards(f, f.cards(), start, end)
}

fn bit_identical_state(a: &AggState, b: &AggState) -> bool {
    a.sum.to_bits() == b.sum.to_bits()
        && a.count == b.count
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
}

fn bit_identical(a: &Cuboid, b: &Cuboid) -> bool {
    a.len() == b.len()
        && a.iter().all(|(k, sa)| b.get(k).is_some_and(|sb| bit_identical_state(sa, sb)))
}

/// The differential assertion: the incrementally maintained store and a
/// store rebuilt from scratch agree bit-for-bit on every materialized
/// cuboid, on every answerable mask (through the sealed/planned path), and
/// both verify clean.
fn assert_equivalent(inc: &ViewStore, rebuilt: &ViewStore, label: &str) {
    assert_eq!(inc.materialized(), rebuilt.materialized(), "{label}: materialized sets differ");
    assert_eq!(inc.lattice().cards(), rebuilt.lattice().cards(), "{label}: cards differ");
    for mask in inc.materialized() {
        let a = inc.view(mask).unwrap();
        let b = rebuilt.view(mask).unwrap();
        assert!(bit_identical(a, b), "{label}: materialized view {mask:#b} differs from rebuild");
    }
    for mask in 0..=inc.lattice().top() {
        let a = inc.answer(mask).unwrap();
        let b = rebuilt.answer(mask).unwrap();
        assert!(a.degraded.is_none(), "{label}: degraded incremental answer for {mask:#b}");
        assert!(
            bit_identical(&a.cuboid, &b.cuboid),
            "{label}: answer for mask {mask:#b} differs from rebuild"
        );
    }
    assert!(inc.verify_all().unwrap().is_clean(), "{label}: incremental store fails verification");
}

/// Splits `facts` into a base load plus `batches` deltas, applies each
/// delta incrementally, and after every application compares against a
/// from-scratch rebuild of everything loaded so far.
fn differential(label: &str, facts: &FactInput, batches: usize) {
    let n = facts.dim_count();
    let selected: Vec<u32> = (0..n).map(|d| 1u32 << d).collect();
    let rows = facts.len();
    assert!(rows > batches * 2, "{label}: workload too small ({rows} rows)");
    let base_rows = rows * 2 / 3;
    let mut store = ViewStore::build(&slice(facts, 0, base_rows), &selected).unwrap();
    let step = (rows - base_rows).div_ceil(batches);
    let mut end = base_rows;
    let mut batch = 0;
    while end < rows {
        let next = (end + step).min(rows);
        let delta = slice(facts, end, next);
        let report = store.apply_delta(&delta).unwrap();
        assert_eq!(report.rows as usize, next - end, "{label}: batch {batch} row count");
        assert!(report.cells_touched > 0, "{label}: batch {batch} touched no cells");
        let rebuilt = ViewStore::build(&slice(facts, 0, next), &selected).unwrap();
        assert_equivalent(&store, &rebuilt, &format!("{label} batch {batch}"));
        end = next;
        batch += 1;
    }
    assert_eq!(batch, batches, "{label}: expected {batches} delta batches");
}

/// Deterministic 3-dim integer workload (same shape as the chaos suite).
fn synthetic(seed: u64, rows: usize) -> FactInput {
    let mut f = FactInput::new(&[8, 4, 2]).unwrap();
    let mut x = seed.wrapping_mul(0x9E37_79B9).max(1);
    for _ in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        f.push(&[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32], (x % 100) as f64)
            .unwrap();
    }
    f
}

/// The headline property over all five generators: incremental maintenance
/// is bit-identical to a rebuild after every one of three delta batches.
#[test]
fn incremental_equals_rebuild_across_all_five_generators() {
    let retail = retail::generate(&RetailConfig {
        products: 8,
        categories: 3,
        cities: 2,
        stores_per_city: 2,
        days: 15,
        rows: 600,
        seed: 11,
    });
    differential("retail", &integer_facts(&retail.object), 3);

    let census =
        census::generate(&CensusConfig { states: 3, counties_per_state: 3, rows: 800, seed: 12 });
    let census_obj = census
        .micro
        .summarize(
            &["state", "sex", "race"],
            Some("income"),
            SummaryFunction::Sum,
            MeasureKind::Flow,
        )
        .unwrap();
    differential("census", &integer_facts(&census_obj), 3);

    let stocks = stocks::generate(&StocksConfig { stocks: 6, industries: 2, weeks: 3, seed: 13 });
    differential("stocks", &integer_facts(&stocks.object), 3);

    let hmo = hmo::generate(&HmoConfig { hospitals: 3, months: 4, rows: 500, seed: 14 });
    differential("hmo", &integer_facts(&hmo.object), 3);

    let resources = resources::generate(&ResourcesConfig {
        basins: 2,
        rivers_per_basin: 2,
        stations_per_river: 2,
        months: 6,
        seed: 15,
    });
    differential("resources", &integer_facts(&resources.object), 3);
}

/// Applying the same delta twice must equal a rebuild over base + delta +
/// delta: the fold is a monoid action, not an idempotent overwrite.
#[test]
fn repeated_identical_deltas_accumulate_like_a_rebuild() {
    let base = synthetic(21, 300);
    let delta = synthetic(22, 40);
    let mut store = ViewStore::build(&base, &[0b011, 0b101]).unwrap();
    store.apply_delta(&delta).unwrap();
    store.apply_delta(&delta).unwrap();

    let mut combined = slice(&base, 0, base.len());
    for rep in 0..2 {
        let _ = rep;
        for row in 0..delta.len() {
            combined.push(&delta.coords(row), delta.measure()[row]).unwrap();
        }
    }
    let rebuilt = ViewStore::build(&combined, &[0b011, 0b101]).unwrap();
    assert_equivalent(&store, &rebuilt, "repeated delta");
}

/// An empty delta changes no logical content but still reseals every view
/// with a bumped epoch (the chaos suite relies on this to land torn writes).
#[test]
fn empty_deltas_reseal_without_changing_content() {
    let base = synthetic(31, 250);
    let mut store = ViewStore::build(&base, &[0b110]).unwrap();
    let epochs_before: HashMap<u32, u64> =
        store.materialized().iter().map(|&m| (m, store.view_epoch(m).unwrap())).collect();

    let report = store.apply_delta(&FactInput::new(base.cards()).unwrap()).unwrap();
    assert_eq!(report.rows, 0);
    assert_eq!(report.cells_touched, 0);
    assert!(report.touched_base.is_empty());
    assert!(report.extended_dims.is_empty());

    let rebuilt = ViewStore::build(&base, &[0b110]).unwrap();
    assert_equivalent(&store, &rebuilt, "empty delta");
    for (&mask, &before) in &epochs_before {
        assert_eq!(
            store.view_epoch(mask),
            Some(before + 1),
            "empty delta must bump view {mask:#b}'s epoch exactly once"
        );
    }
}

/// A delta declaring larger cardinalities grows the lattice to the
/// element-wise maximum and the dense base organization by \[RZ86\]
/// increment segments — no relocation, and still bit-identical to a
/// rebuild at the grown shape.
#[test]
fn growth_deltas_extend_the_dense_base_without_relocation() {
    let mut base = FactInput::new(&[3, 3]).unwrap();
    for (coords, v) in [([0u32, 0u32], 5.0), ([1, 2], 7.0), ([2, 1], 11.0), ([0, 2], 13.0)] {
        base.push(&coords, v).unwrap();
    }
    let mut store = ViewStore::build(&base, &[0b01, 0b10]).unwrap();
    let dense = store.dense_base().expect("3x3 base must have a dense organization");
    let segments_before = dense.segment_count();
    assert_eq!(dense.dims(), &[3, 3]);

    // The delta's own cards declare the growth: dim 0 gains 2 indices,
    // dim 1 gains 1, and rows land in the previously-unseen region.
    let mut delta = FactInput::new(&[5, 4]).unwrap();
    for (coords, v) in [([4u32, 3u32], 17.0), ([3, 0], 19.0), ([4, 3], 23.0), ([1, 1], 29.0)] {
        delta.push(&coords, v).unwrap();
    }
    let report = store.apply_delta(&delta).unwrap();
    assert_eq!(report.extended_dims, vec![(0, 2), (1, 1)]);
    assert_eq!(store.lattice().cards(), vec![5, 4]);

    let mut combined = slice_with_cards(&base, &[5, 4], 0, base.len());
    for row in 0..delta.len() {
        combined.push(&delta.coords(row), delta.measure()[row]).unwrap();
    }
    let rebuilt = ViewStore::build(&combined, &[0b01, 0b10]).unwrap();
    assert_equivalent(&store, &rebuilt, "growth delta");

    // The dense base absorbed the growth as new segments and agrees with
    // the base cuboid cell-for-cell and in total.
    let dense = store.dense_base().unwrap();
    assert_eq!(dense.dims(), &[5, 4]);
    assert!(
        dense.segment_count() > segments_before,
        "growth must add increment segments, not relocate"
    );
    let top = store.lattice().top();
    let base_view = store.view(top).unwrap();
    for (key, state) in base_view {
        let coords: Vec<usize> = key.iter().map(|&k| k as usize).collect();
        assert_eq!(dense.get(&coords).unwrap(), Some(state.sum), "dense cell {key:?}");
    }
    let (sum, cells) = dense.range_sum(&[0, 0], &[5, 4]).unwrap();
    let expected: f64 = base_view.values().map(|s| s.sum).sum();
    assert_eq!(sum.to_bits(), expected.to_bits());
    assert_eq!(cells as usize, base_view.len());
}

/// The growth path on a real generator workload: unseen coordinate values
/// arrive in a delta against a census summary and the store still matches
/// a rebuild at the grown cardinalities.
#[test]
fn growth_delta_on_a_generator_workload() {
    let census =
        census::generate(&CensusConfig { states: 3, counties_per_state: 2, rows: 500, seed: 23 });
    let obj = census
        .micro
        .summarize(
            &["state", "sex", "race"],
            Some("income"),
            SummaryFunction::Sum,
            MeasureKind::Flow,
        )
        .unwrap();
    let facts = integer_facts(&obj);
    let n = facts.dim_count();
    let selected: Vec<u32> = (0..n).map(|d| 1u32 << d).collect();
    let mut store = ViewStore::build(&facts, &selected).unwrap();

    // A new state (index = old cardinality) appears in the delta.
    let mut grown_cards = facts.cards().to_vec();
    grown_cards[0] += 1;
    let mut delta = FactInput::new(&grown_cards).unwrap();
    let mut coords = vec![0u32; n];
    coords[0] = (grown_cards[0] - 1) as u32;
    delta.push(&coords, 123_400.0).unwrap();
    let report = store.apply_delta(&delta).unwrap();
    assert_eq!(report.extended_dims, vec![(0, 1)]);

    let mut combined = slice_with_cards(&facts, &grown_cards, 0, facts.len());
    combined.push(&coords, 123_400.0).unwrap();
    let rebuilt = ViewStore::build(&combined, &selected).unwrap();
    assert_equivalent(&store, &rebuilt, "census growth delta");
}

/// The validation bugfix, as a regression test: a delta rejected mid-batch
/// (non-finite measure, wrong arity) must leave the store completely
/// untouched — same views, same epochs, same answers. Validation runs
/// fully up-front, so there is no half-applied state and no reseal.
#[test]
fn rejected_deltas_mutate_nothing() {
    let base = synthetic(41, 280);
    let mut store = ViewStore::build(&base, &[0b011, 0b101]).unwrap();
    let epochs_before: HashMap<u32, u64> =
        store.materialized().iter().map(|&m| (m, store.view_epoch(m).unwrap())).collect();
    let views_before: HashMap<u32, Cuboid> =
        store.materialized().iter().map(|&m| (m, store.view(m).unwrap().clone())).collect();

    // Valid rows surround the poison row: without up-front validation the
    // first row would already be folded in when the NaN is discovered.
    let mut nan_delta = FactInput::new(base.cards()).unwrap();
    nan_delta.push(&[1, 1, 1], 50.0).unwrap();
    nan_delta.push(&[2, 2, 0], f64::NAN).unwrap();
    nan_delta.push(&[3, 3, 1], 60.0).unwrap();
    let err = store.apply_delta(&nan_delta).unwrap_err();
    assert!(
        matches!(&err, Error::InvalidSchema(m) if m.contains("row 1") && m.contains("non-finite")),
        "unexpected error for NaN measure: {err:?}"
    );

    let mut inf_delta = FactInput::new(base.cards()).unwrap();
    inf_delta.push(&[0, 0, 0], f64::INFINITY).unwrap();
    assert!(matches!(store.apply_delta(&inf_delta), Err(Error::InvalidSchema(_))));

    let arity_delta = FactInput::new(&[8, 4]).unwrap();
    assert!(matches!(
        store.apply_delta(&arity_delta),
        Err(Error::ArityMismatch { expected: 3, got: 2 })
    ));

    // Nothing moved: views, epochs, and answers all match the pre-reject
    // state and a from-scratch rebuild of the base.
    for (&mask, before) in &views_before {
        assert!(bit_identical(store.view(mask).unwrap(), before), "view {mask:#b} mutated");
    }
    for (&mask, &before) in &epochs_before {
        assert_eq!(store.view_epoch(mask), Some(before), "view {mask:#b} was resealed");
    }
    let rebuilt = ViewStore::build(&base, &[0b011, 0b101]).unwrap();
    assert_equivalent(&store, &rebuilt, "rejected deltas");

    // And the store still accepts a valid delta afterwards.
    let mut ok = FactInput::new(base.cards()).unwrap();
    ok.push(&[1, 1, 1], 50.0).unwrap();
    store.apply_delta(&ok).unwrap();
    let mut combined = slice(&base, 0, base.len());
    combined.push(&[1, 1, 1], 50.0).unwrap();
    let rebuilt = ViewStore::build(&combined, &[0b011, 0b101]).unwrap();
    assert_equivalent(&store, &rebuilt, "delta after rejections");
}
