//! Concurrency suite for the serving layer: one [`SharedViewStore`]
//! hammered from many reader threads, with and without faults, and with a
//! writer applying deltas mid-flight.
//!
//! The invariants:
//!
//! * readers never see a torn or silently wrong answer — every successful
//!   answer equals *some* consistent snapshot of the store (before or after
//!   an in-flight delta), bit for bit;
//! * failures are typed storage faults, never panics;
//! * the cache never serves a value from a snapshot other than the one the
//!   lock-protected store currently holds.

use statcube::core::error::Error;
use statcube::core::plan::{PlanSource, PlannerConfig, PrivacyPolicy};
use statcube::cube::cache::CacheConfig;
use statcube::cube::groupby::{self, Cuboid};
use statcube::cube::input::FactInput;
use statcube::cube::shared::SharedViewStore;
use statcube::storage::page_store::FaultPlan;

fn facts(seed: u64, rows: usize) -> FactInput {
    let mut f = FactInput::new(&[8, 4, 2]).unwrap();
    let mut x = seed.wrapping_mul(0x9E37_79B9).max(1);
    for _ in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        f.push(&[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32], (x % 100) as f64)
            .unwrap();
    }
    f
}

fn bit_identical(a: &Cuboid, b: &Cuboid) -> bool {
    a.len() == b.len()
        && a.iter().all(|(k, sa)| {
            b.get(k).is_some_and(|sb| {
                sa.sum.to_bits() == sb.sum.to_bits()
                    && sa.count == sb.count
                    && sa.min.to_bits() == sb.min.to_bits()
                    && sa.max.to_bits() == sb.max.to_bits()
            })
        })
}

/// Eight reader threads, one store, mixed cuboid and cell queries, faults
/// armed for part of the run: every answer is oracle-exact or a typed
/// error, and the run ends with a healthy cache.
#[test]
fn eight_threads_hammer_one_store_under_faults() {
    let f = facts(11, 400);
    let store = SharedViewStore::build(&f, &[0b011, 0b110], CacheConfig::default()).unwrap();
    let oracle: Vec<Cuboid> = (0..8u32).map(|m| groupby::from_facts(&f, m)).collect();

    store.arm_faults(FaultPlan::uniform(99, 0.05));
    std::thread::scope(|s| {
        for t in 0..8usize {
            let store = store.clone();
            let oracle = &oracle;
            s.spawn(move || {
                for i in 0..200usize {
                    let mask = ((i * 5 + t) % 8) as u32;
                    match store.answer(mask) {
                        Ok(ans) => assert!(
                            bit_identical(&ans.cuboid, &oracle[mask as usize]),
                            "thread {t} iter {i} mask {mask:03b}: wrong answer"
                        ),
                        Err(
                            Error::ChecksumMismatch { .. }
                            | Error::RetriesExhausted { .. }
                            | Error::NoHealthySource { .. },
                        ) => {}
                        Err(e) => panic!("thread {t}: untyped error {e:?}"),
                    }
                    // Every 8th probe goes through the cell path.
                    if i % 8 == 0 {
                        let d0 = (i % 8) as u32;
                        if let Ok(cell) = store.answer_cell(&[Some(d0), None, None]) {
                            let key: Box<[u32]> = vec![d0].into_boxed_slice();
                            let want = oracle[0b001].get(&key);
                            match (cell.state, want) {
                                (Some(got), Some(want)) => {
                                    assert_eq!(got.sum.to_bits(), want.sum.to_bits());
                                    assert_eq!(got.count, want.count);
                                }
                                (None, None) => {}
                                other => panic!("thread {t}: cell mismatch {other:?}"),
                            }
                        }
                    }
                }
            });
        }
    });
    store.disarm_faults();

    let s = store.cache_stats();
    assert!(s.hits + s.misses >= 8 * 200, "every cuboid query probes the cache");
    assert!(s.hits > 0, "a hammered store must produce hits");
    // After disarming, the store settles back to clean cached serving.
    let a = store.answer(0b000).unwrap();
    assert!(bit_identical(&a.cuboid, &oracle[0]));
    assert!(store.answer(0b000).unwrap().cache_hit);
}

/// Readers race a writer applying deltas: every read answer must be
/// bit-identical to one of the store's committed snapshots (0, 1, or 2
/// deltas applied) — the `RwLock` + epoch invalidation make anything else
/// impossible — and after the writer finishes, reads serve the final total.
#[test]
fn readers_race_a_delta_writer_and_see_only_committed_snapshots() {
    let f = facts(21, 300);
    let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();

    // Snapshots: oracle cuboids with 0, 1, and 2 deltas folded in.
    let mut snapshots: Vec<Vec<Cuboid>> = Vec::new();
    let mut combined = FactInput::new(f.cards()).unwrap();
    for row in 0..f.len() {
        combined.push(&f.coords(row), f.measure()[row]).unwrap();
    }
    snapshots.push((0..8u32).map(|m| groupby::from_facts(&combined, m)).collect());
    let deltas: Vec<(Vec<u32>, f64)> = vec![(vec![1, 1, 1], 10_000.0), (vec![2, 3, 0], 20_000.0)];
    for (coords, v) in &deltas {
        combined.push(coords, *v).unwrap();
        snapshots.push((0..8u32).map(|m| groupby::from_facts(&combined, m)).collect());
    }

    // Prime the cache so the first delta demonstrably clears live entries.
    for mask in 0..8u32 {
        store.answer(mask).unwrap();
    }

    std::thread::scope(|s| {
        // Writer: applies the two deltas with a little work in between.
        {
            let store = store.clone();
            let deltas = deltas.clone();
            s.spawn(move || {
                for (coords, v) in &deltas {
                    for _ in 0..50 {
                        std::hint::spin_loop();
                    }
                    let mut d = FactInput::new(&[8, 4, 2]).unwrap();
                    d.push(coords, *v).unwrap();
                    store.apply_delta(&d).unwrap();
                }
            });
        }
        // Readers: every answer must match one committed snapshot exactly.
        for t in 0..7usize {
            let store = store.clone();
            let snapshots = &snapshots;
            s.spawn(move || {
                for i in 0..300usize {
                    let mask = ((i + t) % 8) as u32;
                    let ans = store.answer(mask).unwrap();
                    let matched = snapshots
                        .iter()
                        .any(|snap| bit_identical(&ans.cuboid, &snap[mask as usize]));
                    assert!(
                        matched,
                        "thread {t} iter {i} mask {mask:03b}: answer matches no committed snapshot"
                    );
                }
            });
        }
    });

    // Quiesced: reads serve the final snapshot, from cache on repeat.
    let last = snapshots.last().unwrap();
    for mask in 0..8u32 {
        let a = store.answer(mask).unwrap();
        assert!(bit_identical(&a.cuboid, &last[mask as usize]), "mask {mask:03b} final total");
    }
    assert!(store.answer(0b000).unwrap().cache_hit);
    let stats = store.cache_stats();
    assert!(stats.invalidations > 0, "deltas must have cleared the cache");
}

/// Snapshot isolation, structurally: a pinned [`StoreSnapshot`] (and a
/// plan source holding one) kept open across `apply_delta` blocks nothing —
/// under the old reader-lock design the writer would deadlock right here —
/// and afterwards the pinned snapshot still serves its own epoch's totals
/// while the store serves the new ones.
#[test]
fn pinned_snapshots_serve_their_epoch_and_never_block_the_writer() {
    let f = facts(31, 300);
    let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();
    let before = groupby::from_facts(&f, 0b000);

    let snap = store.snapshot();
    assert_eq!(snap.generation(), 0);
    // A plan source pins a snapshot too; holding it across the delta is the
    // no-blocking property in its most direct form.
    let src = store.plan_source();

    let mut d = FactInput::new(f.cards()).unwrap();
    d.push(&[7, 3, 1], 10_000.0).unwrap();
    store.apply_delta(&d).unwrap();
    assert_eq!(store.generation(), 1);
    drop(src);

    // The pinned snapshot answers from the pre-delta epoch, bit for bit.
    let old = snap.store().answer(0b000).unwrap();
    assert!(bit_identical(&old.cuboid, &before), "pinned snapshot must keep its epoch");
    assert_eq!(snap.generation(), 0);

    // A fresh read sees the post-delta world.
    let mut combined = FactInput::new(f.cards()).unwrap();
    for row in 0..f.len() {
        combined.push(&f.coords(row), f.measure()[row]).unwrap();
    }
    combined.push(&[7, 3, 1], 10_000.0).unwrap();
    let new = store.answer(0b000).unwrap();
    assert!(bit_identical(&new.cuboid, &groupby::from_facts(&combined, 0b000)));
}

/// Targeted invalidation: after a delta, cell entries whose coordinates
/// don't intersect the batch survive and still hit with unchanged values;
/// touched cells and whole-cuboid entries miss and recompute to post-delta
/// values; policy-fingerprinted entries drop and re-key correctly.
#[test]
fn untouched_cache_entries_survive_a_delta_and_still_hit() {
    let f = facts(41, 400);
    let store = SharedViewStore::build(&f, &[0b011, 0b101], CacheConfig::default()).unwrap();

    // Prime a cell entry per d0 slice, every cuboid, and one strict-policy
    // answer under its own fingerprint.
    for d0 in 0..8u32 {
        store.answer_cell(&[Some(d0), None, None]).unwrap();
    }
    for mask in 0..8u32 {
        store.answer(mask).unwrap();
    }
    let policy = PrivacyPolicy::suppress(2);
    store.answer_with_policy(0b011, &policy, PlannerConfig::default()).unwrap();
    assert!(store.answer_cell(&[Some(0), None, None]).unwrap().cache_hit);
    assert!(store.answer_with_policy(0b011, &policy, PlannerConfig::default()).unwrap().cache_hit);
    let before_untouched =
        store.answer_cell(&[Some(0), None, None]).unwrap().state.expect("slice 0 is populated");

    // The delta touches only base cells with d0 == 5.
    let mut d = FactInput::new(f.cards()).unwrap();
    d.push(&[5, 2, 1], 40_000.0).unwrap();
    store.apply_delta(&d).unwrap();

    // Untouched slice: survived the delta, still hits, value unchanged.
    let untouched = store.answer_cell(&[Some(0), None, None]).unwrap();
    assert!(untouched.cache_hit, "untouched cell entry must survive the delta");
    let after = untouched.state.unwrap();
    assert_eq!(after.sum.to_bits(), before_untouched.sum.to_bits());
    assert_eq!(after.count, before_untouched.count);

    // Touched slice: dropped, recomputed to the post-delta value.
    let mut combined = FactInput::new(f.cards()).unwrap();
    for row in 0..f.len() {
        combined.push(&f.coords(row), f.measure()[row]).unwrap();
    }
    combined.push(&[5, 2, 1], 40_000.0).unwrap();
    let touched = store.answer_cell(&[Some(5), None, None]).unwrap();
    assert!(!touched.cache_hit, "touched cell entry must be invalidated");
    let want = groupby::from_facts(&combined, 0b001);
    let key: Box<[u32]> = vec![5].into_boxed_slice();
    assert_eq!(touched.state.unwrap().sum.to_bits(), want[&key].sum.to_bits());

    // Whole-cuboid entries (their grand totals moved): all recomputed.
    let total = store.answer(0b000).unwrap();
    assert!(!total.cache_hit, "cuboid entries must drop on a non-empty delta");
    assert!(bit_identical(&total.cuboid, &groupby::from_facts(&combined, 0b000)));

    // The strict-policy entry dropped with them and re-keys under the same
    // fingerprint on the next enforcement.
    let p = store.answer_with_policy(0b011, &policy, PlannerConfig::default()).unwrap();
    assert!(!p.cache_hit, "policy-keyed entry must drop after the delta");
    assert!(store.answer_with_policy(0b011, &policy, PlannerConfig::default()).unwrap().cache_hit);
}

/// N readers, one writer, generation arithmetic: each of 20 published
/// deltas adds exactly 10 000 to the grand total, so a reader's pinned
/// `(store, generation)` pair must satisfy
/// `total == base + generation × 10 000` *exactly* — a half-applied fold,
/// a torn publication, or an inconsistent snapshot pair would break the
/// equality — and the d0 marginal of the same snapshot must sum to the
/// same total (cross-cuboid consistency within one epoch).
#[test]
fn readers_observe_whole_generations_while_a_writer_streams_deltas() {
    let f = facts(51, 300);
    let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();
    let base_total: f64 = f.measure().iter().sum();
    const DELTAS: u64 = 20;
    const PER_DELTA: f64 = 10_000.0;

    std::thread::scope(|s| {
        {
            let store = store.clone();
            s.spawn(move || {
                for k in 0..DELTAS {
                    let mut d = FactInput::new(&[8, 4, 2]).unwrap();
                    d.push(&[(k % 8) as u32, (k % 4) as u32, (k % 2) as u32], PER_DELTA).unwrap();
                    store.apply_delta(&d).unwrap();
                }
            });
        }
        for t in 0..8usize {
            let store = store.clone();
            s.spawn(move || {
                let mut last_gen = 0u64;
                for i in 0..150usize {
                    let snap = store.snapshot();
                    let g = snap.generation();
                    assert!(g >= last_gen, "thread {t} iter {i}: generation went backwards");
                    last_gen = g;
                    let total = snap.store().answer(0b000).unwrap();
                    let got = total.cuboid.values().next().map_or(0.0, |s| s.sum);
                    let want = base_total + g as f64 * PER_DELTA;
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "thread {t} iter {i}: generation {g} snapshot serves a torn total"
                    );
                    let marginal = snap.store().answer(0b001).unwrap();
                    let m: f64 = marginal.cuboid.values().map(|s| s.sum).sum();
                    assert_eq!(
                        m.to_bits(),
                        want.to_bits(),
                        "thread {t} iter {i}: marginal disagrees with its own snapshot's total"
                    );
                }
            });
        }
    });
    assert_eq!(store.generation(), DELTAS);
}

/// Regression (epoch laundering): a reader still pinned to a *pre-delta*
/// snapshot can admit an answer after that delta's invalidation pass has
/// already run. The entry carries the old epoch, so lazy probing catches it
/// — but a later fold whose batch misses the entry's cells (here: an empty
/// heal batch, which keeps everything) used to blindly re-pin the entry to
/// the live epoch, laundering the pre-delta value into a fresh-looking hit
/// served indefinitely. `invalidate_delta` must drop any survivor whose
/// epoch is not the immediate pre-fold one instead.
#[test]
fn stale_snapshot_admits_are_dropped_not_laundered_by_later_deltas() {
    let f = facts(61, 300);
    let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();

    // A late reader pins the pre-delta snapshot and computes its answer.
    let late_reader = store.plan_source();
    let pre = PlanSource::load(&late_reader, 0b011).unwrap();

    // The delta lands; its targeted invalidation pass completes.
    let mut d = FactInput::new(f.cards()).unwrap();
    d.push(&[1, 1, 1], 10_000.0).unwrap();
    store.apply_delta(&d).unwrap();

    // Only now does the late reader admit what it computed: a pre-delta
    // value pinned to the pre-delta epoch, replacing any fresher entry.
    late_reader.admit(0b011, 0b011, pre.scanned, &pre.cells, false);
    drop(late_reader);

    // A fold that keeps every entry must not re-pin the stale admit.
    store.apply_delta(&FactInput::new(f.cards()).unwrap()).unwrap();

    let mut combined = FactInput::new(f.cards()).unwrap();
    for row in 0..f.len() {
        combined.push(&f.coords(row), f.measure()[row]).unwrap();
    }
    combined.push(&[1, 1, 1], 10_000.0).unwrap();
    let ans = store.answer(0b011).unwrap();
    assert!(!ans.cache_hit, "the stale admit must have been dropped, not re-pinned");
    assert!(
        bit_identical(&ans.cuboid, &groupby::from_facts(&combined, 0b011)),
        "a pre-delta value must never be served after the delta"
    );
    // The recomputed (fresh) answer caches and hits normally again.
    assert!(store.answer(0b011).unwrap().cache_hit);
}
