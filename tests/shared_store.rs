//! Concurrency suite for the serving layer: one [`SharedViewStore`]
//! hammered from many reader threads, with and without faults, and with a
//! writer applying deltas mid-flight.
//!
//! The invariants:
//!
//! * readers never see a torn or silently wrong answer — every successful
//!   answer equals *some* consistent snapshot of the store (before or after
//!   an in-flight delta), bit for bit;
//! * failures are typed storage faults, never panics;
//! * the cache never serves a value from a snapshot other than the one the
//!   lock-protected store currently holds.

use statcube::core::error::Error;
use statcube::cube::cache::CacheConfig;
use statcube::cube::groupby::{self, Cuboid};
use statcube::cube::input::FactInput;
use statcube::cube::shared::SharedViewStore;
use statcube::storage::page_store::FaultPlan;

fn facts(seed: u64, rows: usize) -> FactInput {
    let mut f = FactInput::new(&[8, 4, 2]).unwrap();
    let mut x = seed.wrapping_mul(0x9E37_79B9).max(1);
    for _ in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        f.push(&[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32], (x % 100) as f64)
            .unwrap();
    }
    f
}

fn bit_identical(a: &Cuboid, b: &Cuboid) -> bool {
    a.len() == b.len()
        && a.iter().all(|(k, sa)| {
            b.get(k).is_some_and(|sb| {
                sa.sum.to_bits() == sb.sum.to_bits()
                    && sa.count == sb.count
                    && sa.min.to_bits() == sb.min.to_bits()
                    && sa.max.to_bits() == sb.max.to_bits()
            })
        })
}

/// Eight reader threads, one store, mixed cuboid and cell queries, faults
/// armed for part of the run: every answer is oracle-exact or a typed
/// error, and the run ends with a healthy cache.
#[test]
fn eight_threads_hammer_one_store_under_faults() {
    let f = facts(11, 400);
    let store = SharedViewStore::build(&f, &[0b011, 0b110], CacheConfig::default()).unwrap();
    let oracle: Vec<Cuboid> = (0..8u32).map(|m| groupby::from_facts(&f, m)).collect();

    store.arm_faults(FaultPlan::uniform(99, 0.05));
    std::thread::scope(|s| {
        for t in 0..8usize {
            let store = store.clone();
            let oracle = &oracle;
            s.spawn(move || {
                for i in 0..200usize {
                    let mask = ((i * 5 + t) % 8) as u32;
                    match store.answer(mask) {
                        Ok(ans) => assert!(
                            bit_identical(&ans.cuboid, &oracle[mask as usize]),
                            "thread {t} iter {i} mask {mask:03b}: wrong answer"
                        ),
                        Err(
                            Error::ChecksumMismatch { .. }
                            | Error::RetriesExhausted { .. }
                            | Error::NoHealthySource { .. },
                        ) => {}
                        Err(e) => panic!("thread {t}: untyped error {e:?}"),
                    }
                    // Every 8th probe goes through the cell path.
                    if i % 8 == 0 {
                        let d0 = (i % 8) as u32;
                        if let Ok(cell) = store.answer_cell(&[Some(d0), None, None]) {
                            let key: Box<[u32]> = vec![d0].into_boxed_slice();
                            let want = oracle[0b001].get(&key);
                            match (cell.state, want) {
                                (Some(got), Some(want)) => {
                                    assert_eq!(got.sum.to_bits(), want.sum.to_bits());
                                    assert_eq!(got.count, want.count);
                                }
                                (None, None) => {}
                                other => panic!("thread {t}: cell mismatch {other:?}"),
                            }
                        }
                    }
                }
            });
        }
    });
    store.disarm_faults();

    let s = store.cache_stats();
    assert!(s.hits + s.misses >= 8 * 200, "every cuboid query probes the cache");
    assert!(s.hits > 0, "a hammered store must produce hits");
    // After disarming, the store settles back to clean cached serving.
    let a = store.answer(0b000).unwrap();
    assert!(bit_identical(&a.cuboid, &oracle[0]));
    assert!(store.answer(0b000).unwrap().cache_hit);
}

/// Readers race a writer applying deltas: every read answer must be
/// bit-identical to one of the store's committed snapshots (0, 1, or 2
/// deltas applied) — the `RwLock` + epoch invalidation make anything else
/// impossible — and after the writer finishes, reads serve the final total.
#[test]
fn readers_race_a_delta_writer_and_see_only_committed_snapshots() {
    let f = facts(21, 300);
    let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();

    // Snapshots: oracle cuboids with 0, 1, and 2 deltas folded in.
    let mut snapshots: Vec<Vec<Cuboid>> = Vec::new();
    let mut combined = FactInput::new(f.cards()).unwrap();
    for row in 0..f.len() {
        combined.push(&f.coords(row), f.measure()[row]).unwrap();
    }
    snapshots.push((0..8u32).map(|m| groupby::from_facts(&combined, m)).collect());
    let deltas: Vec<(Vec<u32>, f64)> = vec![(vec![1, 1, 1], 10_000.0), (vec![2, 3, 0], 20_000.0)];
    for (coords, v) in &deltas {
        combined.push(coords, *v).unwrap();
        snapshots.push((0..8u32).map(|m| groupby::from_facts(&combined, m)).collect());
    }

    // Prime the cache so the first delta demonstrably clears live entries.
    for mask in 0..8u32 {
        store.answer(mask).unwrap();
    }

    std::thread::scope(|s| {
        // Writer: applies the two deltas with a little work in between.
        {
            let store = store.clone();
            let deltas = deltas.clone();
            s.spawn(move || {
                for (coords, v) in &deltas {
                    for _ in 0..50 {
                        std::hint::spin_loop();
                    }
                    let mut d = FactInput::new(&[8, 4, 2]).unwrap();
                    d.push(coords, *v).unwrap();
                    store.apply_delta(&d).unwrap();
                }
            });
        }
        // Readers: every answer must match one committed snapshot exactly.
        for t in 0..7usize {
            let store = store.clone();
            let snapshots = &snapshots;
            s.spawn(move || {
                for i in 0..300usize {
                    let mask = ((i + t) % 8) as u32;
                    let ans = store.answer(mask).unwrap();
                    let matched = snapshots
                        .iter()
                        .any(|snap| bit_identical(&ans.cuboid, &snap[mask as usize]));
                    assert!(
                        matched,
                        "thread {t} iter {i} mask {mask:03b}: answer matches no committed snapshot"
                    );
                }
            });
        }
    });

    // Quiesced: reads serve the final snapshot, from cache on repeat.
    let last = snapshots.last().unwrap();
    for mask in 0..8u32 {
        let a = store.answer(mask).unwrap();
        assert!(bit_identical(&a.cuboid, &last[mask as usize]), "mask {mask:03b} final total");
    }
    assert!(store.answer(0b000).unwrap().cache_hit);
    let stats = store.cache_stats();
    assert!(stats.invalidations > 0, "deltas must have cleared the cache");
}
