//! Kernel-differential CI gate: the batched executor must equal the frozen
//! tuple-at-a-time interpreter **bit for bit**.
//!
//! [`plan::execute`] runs the fused batch kernels of `core::plan::kernels`;
//! [`plan::execute_interpreter`] is the historical tuple-at-a-time
//! implementation, frozen as the differential oracle (the same discipline
//! as the rebuild oracle of the delta-maintenance gate). This suite replays
//! both over identical sources and asserts byte-identical answers — keys,
//! aggregation-state bits, suppression verdicts, routing, and enforcement
//! counters — across:
//!
//! * all five workload generators (census, retail, stocks, HMO, resources);
//! * every summary function (COUNT, SUM, AVG, MIN, MAX);
//! * privacy policies off and on (suppression + tracker guard,
//!   perturbation);
//! * the compressed storage organizations' aggregation kernels (RLE runs,
//!   bit-sliced selection bitmaps, dense columns) against scalar oracles.
//!
//! Measures are quantized to integer-valued doubles first: integer f64
//! addition below 2^53 is exact, so every accumulation order produces the
//! same bits and the bit-for-bit contract is sound even though the oracle
//! aggregates in hash-map order.

use statcube::core::measure::{AggState, SummaryFunction};
use statcube::core::object::StatisticalObject;
use statcube::core::ops;
use statcube::core::plan::{
    self, AggRequest, GroupingSpec, ObjectSource, Plan, PlanExecution, PlanPredicate, Planner,
    PrivacyPolicy,
};
use statcube::storage::prelude::*;
use statcube::workload::prelude::*;
use statcube::workload::{census, hmo, resources, retail, stocks};

/// Rebuilds `obj` with every measure value rounded to an integer (one
/// micro unit per cell), preserving schema, hierarchies, and key
/// distribution while making float addition exact.
fn quantized(obj: &StatisticalObject) -> StatisticalObject {
    let mut out = StatisticalObject::empty(obj.schema().clone());
    for (coords, states) in obj.cells() {
        let values: Vec<f64> = states.iter().map(|s| s.sum.round()).collect();
        out.insert_ids(coords, &values).expect("same schema");
    }
    out
}

/// The five quantized workload objects, smallest useful sizes.
fn workloads() -> Vec<(&'static str, StatisticalObject)> {
    let retail = retail::generate(&RetailConfig {
        products: 8,
        categories: 3,
        cities: 2,
        stores_per_city: 2,
        days: 15,
        rows: 600,
        seed: 41,
    });
    let census =
        census::generate(&CensusConfig { states: 3, counties_per_state: 3, rows: 700, seed: 42 });
    let census_obj = census
        .micro
        .summarize(
            &["state", "sex", "race"],
            Some("income"),
            SummaryFunction::Sum,
            statcube::core::measure::MeasureKind::Flow,
        )
        .expect("summarize");
    let stocks = stocks::generate(&StocksConfig { stocks: 6, industries: 2, weeks: 3, seed: 43 });
    let hmo = hmo::generate(&HmoConfig { hospitals: 3, months: 4, rows: 500, seed: 44 });
    let resources = resources::generate(&ResourcesConfig {
        basins: 2,
        rivers_per_basin: 2,
        stations_per_river: 2,
        months: 6,
        seed: 45,
    });
    vec![
        ("retail", quantized(&retail.object)),
        ("census", quantized(&census_obj)),
        ("stocks", quantized(&stocks.object)),
        ("hmo", quantized(&hmo.object)),
        ("resources", quantized(&resources.object)),
    ]
}

/// Plans `p` over `obj` under `policy` and executes it through both the
/// batched kernels and the frozen interpreter, over the same source.
fn both(
    obj: &StatisticalObject,
    p: &Plan,
    policy: PrivacyPolicy,
) -> (PlanExecution, PlanExecution) {
    let planned = Planner::for_object(obj.schema()).with_policy(policy).plan(p).expect("plan");
    let mut base = obj.clone();
    for pr in &planned.leaf_predicates {
        base = ops::s_select_ids(&base, pr.dim, &pr.allowed).expect("select");
    }
    for r in &planned.leaf_rollups {
        base = ops::s_aggregate(&base, &r.dim_name, &r.level).expect("rollup");
    }
    for (d, dim) in obj.schema().dimensions().iter().enumerate() {
        if planned.base_mask() >> d & 1 == 0 {
            base = ops::s_project_unchecked(&base, dim.name()).expect("project");
        }
    }
    let src = ObjectSource::new(&base, planned.base_mask()).expect("source");
    let batched = plan::execute(&planned, &src).expect("batched executor");
    let oracle = plan::execute_interpreter(&planned, &src).expect("interpreter oracle");
    (batched, oracle)
}

/// Byte-identical comparison: every key, every state bit, every flag.
fn assert_bit_identical(batched: &PlanExecution, oracle: &PlanExecution, label: &str) {
    assert_eq!(batched.sets.len(), oracle.sets.len(), "{label}: set count");
    for (a, b) in batched.sets.iter().zip(&oracle.sets) {
        let t = a.target;
        assert_eq!(a.target, b.target, "{label}: target");
        assert_eq!(a.source, b.source, "{label} {t:#b}: routing diverged");
        assert_eq!(a.keep, b.keep, "{label} {t:#b}: keep mask");
        let (ba, bb) = (&a.cells, &b.cells);
        assert_eq!(ba.key_width(), bb.key_width(), "{label} {t:#b}: key width");
        assert_eq!(ba.measure_count(), bb.measure_count(), "{label} {t:#b}: measures");
        assert_eq!(ba.len(), bb.len(), "{label} {t:#b}: cell count");
        for i in 0..ba.len() {
            assert_eq!(ba.key(i), bb.key(i), "{label} {t:#b} row {i}: key");
            assert_eq!(
                ba.is_suppressed(i),
                bb.is_suppressed(i),
                "{label} {t:#b} row {i}: suppression"
            );
            for m in 0..ba.measure_count() {
                let (x, y) = (ba.state(m, i), bb.state(m, i));
                assert_eq!(x.count, y.count, "{label} {t:#b} row {i} m{m}: count");
                assert_eq!(
                    x.sum.to_bits(),
                    y.sum.to_bits(),
                    "{label} {t:#b} row {i} m{m}: sum bits ({} vs {})",
                    x.sum,
                    y.sum
                );
                assert_eq!(x.min.to_bits(), y.min.to_bits(), "{label} {t:#b} row {i} m{m}: min");
                assert_eq!(x.max.to_bits(), y.max.to_bits(), "{label} {t:#b} row {i} m{m}: max");
            }
        }
    }
    assert_eq!(
        batched.enforcement.suppressed, oracle.enforcement.suppressed,
        "{label}: suppression count"
    );
    assert_eq!(
        batched.enforcement.complementary, oracle.enforcement.complementary,
        "{label}: complementary count"
    );
    assert_eq!(
        batched.enforcement.perturbed, oracle.enforcement.perturbed,
        "{label}: perturbed count"
    );
}

/// Per-object plan mix: CUBE with a pushed-down predicate (prefix and hash
/// derivations plus the apex), ROLLUP, and a single non-prefix grouping
/// (dimension 1 alone always takes the hash path).
fn plans_for(obj: &StatisticalObject) -> Vec<Plan> {
    let dims: Vec<String> = obj.schema().dimensions().iter().map(|d| d.name().to_owned()).collect();
    let aggs: Vec<AggRequest> = obj
        .schema()
        .measures()
        .iter()
        .enumerate()
        .map(|(i, m)| AggRequest {
            func: obj.schema().function(i),
            measure: Some(m.name().to_owned()),
            label: m.name().to_owned(),
        })
        .collect();
    let member = obj.schema().dimensions()[0].members().values().next().expect("member").to_owned();
    let n = dims.len().min(3);
    vec![
        Plan::scan(obj.schema().name())
            .select(vec![PlanPredicate::eq(dims[0].clone(), member)])
            .grouping_sets(dims[..2].to_vec(), GroupingSpec::Cube, aggs.clone()),
        Plan::scan(obj.schema().name()).grouping_sets(
            dims[..n].to_vec(),
            GroupingSpec::Rollup,
            aggs.clone(),
        ),
        Plan::scan(obj.schema().name()).grouping_sets(
            vec![dims[1].clone()],
            GroupingSpec::Single,
            aggs,
        ),
    ]
}

#[test]
fn batched_executor_equals_interpreter_on_all_five_workloads() {
    for (label, obj) in workloads() {
        for (pi, p) in plans_for(&obj).iter().enumerate() {
            let (batched, oracle) = both(&obj, p, PrivacyPolicy::none());
            assert_bit_identical(&batched, &oracle, &format!("{label}/plan{pi}"));
        }
    }
}

#[test]
fn batched_executor_equals_interpreter_under_privacy_policies() {
    let policies = [
        ("suppress", PrivacyPolicy::suppress(5)),
        ("tracker", PrivacyPolicy::suppress(5).with_tracker_guard()),
        ("perturbed", PrivacyPolicy::suppress(3).with_perturbation(0.5, 17)),
    ];
    for (label, obj) in workloads() {
        for p in plans_for(&obj).iter().take(1) {
            for (pname, policy) in &policies {
                let (batched, oracle) = both(&obj, p, policy.clone());
                assert_bit_identical(&batched, &oracle, &format!("{label}/{pname}"));
            }
        }
    }
}

#[test]
fn every_summary_function_round_trips_through_both_paths() {
    let retail = retail::generate(&RetailConfig {
        products: 6,
        categories: 2,
        cities: 2,
        stores_per_city: 2,
        days: 10,
        rows: 400,
        seed: 46,
    });
    let obj = quantized(&retail.object);
    let measure = obj.schema().measures()[0].name().to_owned();
    let aggs: Vec<AggRequest> = [
        (SummaryFunction::Count, None),
        (SummaryFunction::Sum, Some(measure.clone())),
        (SummaryFunction::Avg, Some(measure.clone())),
        (SummaryFunction::Min, Some(measure.clone())),
        (SummaryFunction::Max, Some(measure)),
    ]
    .into_iter()
    .map(|(func, measure)| AggRequest { func, measure, label: format!("{func:?}") })
    .collect();
    let dims: Vec<String> = obj.schema().dimensions().iter().map(|d| d.name().to_owned()).collect();
    let p =
        Plan::scan(obj.schema().name()).grouping_sets(dims[..2].to_vec(), GroupingSpec::Cube, aggs);
    let (batched, oracle) = both(&obj, &p, PrivacyPolicy::none());
    assert_bit_identical(&batched, &oracle, "retail/all-functions");
    // And the rendered values agree per function, not just the raw states.
    let planned = Planner::for_object(obj.schema()).plan(&p).expect("plan");
    let set = &batched.sets[0];
    for i in 0..set.cells.len() {
        for (m, agg) in planned.aggs.iter().enumerate().take(set.cells.measure_count()) {
            let a = set.cells.value(agg.measure, i, agg.func);
            let b = oracle.sets[0].cells.value(agg.measure, i, agg.func);
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits), "row {i} slot {m}");
        }
    }
}

/// One measure column per workload, in dictionary-code order, plus the
/// dimension-0 codes that group it.
fn columns() -> Vec<(&'static str, Vec<u32>, u32, Vec<f64>)> {
    workloads()
        .into_iter()
        .map(|(label, obj)| {
            let mut rows: Vec<(Vec<u32>, f64)> =
                obj.cells().map(|(coords, states)| (coords.to_vec(), states[0].sum)).collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            let codes: Vec<u32> = rows.iter().map(|(k, _)| k[0]).collect();
            let card = obj.schema().dimensions()[0].members().len() as u32;
            let values: Vec<f64> = rows.iter().map(|&(_, v)| v).collect();
            (label, codes, card, values)
        })
        .collect()
}

/// Scalar oracle for the storage kernels: a plain merge loop.
fn scalar_aggregate(values: impl IntoIterator<Item = f64>) -> AggState {
    let mut s = AggState::EMPTY;
    for v in values {
        s.merge(&AggState::from_value(v));
    }
    s
}

#[test]
fn rle_kernel_matches_decoded_scan_on_workload_columns() {
    for (label, _, _, values) in columns() {
        let rle = Rle::encode(&values);
        let oracle = scalar_aggregate(values.iter().copied());
        assert_eq!(aggregate_runs(rle.runs()), oracle, "{label}: run-aware");
        assert_eq!(aggregate_dense(&values), oracle, "{label}: dense");
        for chunk_rows in [1usize, 64, 2048] {
            assert_eq!(
                aggregate_chunks(dense_chunks(&values, chunk_rows)),
                oracle,
                "{label}: dense chunks of {chunk_rows}"
            );
        }
        assert_eq!(aggregate_chunks(run_chunks(&rle, 7)), oracle, "{label}: run chunks");
    }
}

#[test]
fn bit_sliced_selection_matches_scalar_filter_on_workload_columns() {
    for (label, codes, card, values) in columns() {
        let bits = 32 - card.max(2).next_power_of_two().leading_zeros();
        let col = BitSlicedColumn::build(&codes, bits).expect("build");
        let io = IoStats::new(DEFAULT_PAGE_SIZE);
        for member in [0, card / 2, card.saturating_sub(1)] {
            let bitmap = col.eq_scan(member, &io);
            let oracle = scalar_aggregate(
                values.iter().zip(&codes).filter(|(_, &c)| c == member).map(|(&v, _)| v),
            );
            assert_eq!(filtered_aggregate(&values, &bitmap), oracle, "{label}: member {member}");
        }
    }
}

#[test]
fn grouped_kernel_matches_per_group_scalar_on_workload_columns() {
    for (label, codes, card, values) in columns() {
        let grouped = group_aggregate(&codes, card as usize, &values);
        for g in 0..card {
            let oracle = scalar_aggregate(
                values.iter().zip(&codes).filter(|(_, &c)| c == g).map(|(&v, _)| v),
            );
            assert_eq!(grouped[g as usize], oracle, "{label}: group {g}");
        }
    }
}
