//! Property tests on the statistical operator algebra: commutation laws,
//! roll-up path independence, union algebra, and summarizability
//! enforcement over generated objects.

use proptest::prelude::*;

use statcube::core::dimension::Dimension;
use statcube::core::hierarchy::Hierarchy;
use statcube::core::measure::{MeasureKind, SummaryAttribute};
use statcube::core::object::StatisticalObject;
use statcube::core::ops::{self, UnionPolicy};
use statcube::core::schema::Schema;

const CITIES: [&str; 6] = ["sf", "la", "fresno", "reno", "vegas", "elko"];
const PRODUCTS: [&str; 4] = ["a", "b", "c", "d"];

fn geo() -> Hierarchy {
    Hierarchy::builder("geo")
        .level("city")
        .level("state")
        .edge("sf", "ca")
        .edge("la", "ca")
        .edge("fresno", "ca")
        .edge("reno", "nv")
        .edge("vegas", "nv")
        .edge("elko", "nv")
        .build()
        .unwrap()
}

fn object_strategy() -> impl Strategy<Value = StatisticalObject> {
    proptest::collection::vec((0u32..6, 0u32..4, -100i64..100), 0..120).prop_map(|cells| {
        let schema = Schema::builder("sales")
            .dimension(Dimension::classified("city", geo()))
            .dimension(Dimension::categorical("product", PRODUCTS))
            .measure(SummaryAttribute::new("sales", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        for (c, p, v) in cells {
            o.insert_ids(&[c, p], &[v as f64]).unwrap();
        }
        o
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn select_is_idempotent_and_commutes(o in object_strategy(), keep in proptest::sample::subsequence(&CITIES[..], 0..6)) {
        let keep: Vec<&str> = keep.to_vec();
        let once = ops::s_select(&o, "city", &keep).unwrap();
        let twice = ops::s_select(&once, "city", &keep).unwrap();
        prop_assert_eq!(&once, &twice);
        // Select on different dimensions commutes.
        let ab = ops::s_select(&ops::s_select(&o, "city", &keep).unwrap(), "product", &["a", "b"]).unwrap();
        let ba = ops::s_select(&ops::s_select(&o, "product", &["a", "b"]).unwrap(), "city", &keep).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn project_order_is_irrelevant(o in object_strategy()) {
        let cp = ops::s_project(&ops::s_project(&o, "city").unwrap(), "product").unwrap();
        let pc = ops::s_project(&ops::s_project(&o, "product").unwrap(), "city").unwrap();
        let (_, a) = cp.cells().next().map(|(k, s)| (k.to_vec(), s.to_vec())).unzip();
        let (_, b) = pc.cells().next().map(|(k, s)| (k.to_vec(), s.to_vec())).unzip();
        match (a, b) {
            (Some(a), Some(b)) => {
                prop_assert!((a[0].sum - b[0].sum).abs() < 1e-9);
                prop_assert_eq!(a[0].count, b[0].count);
            }
            (None, None) => {}
            _ => prop_assert!(false, "one order produced cells, the other none"),
        }
    }

    #[test]
    fn rollup_then_project_equals_project(o in object_strategy()) {
        // Summarizing over all cities directly, or first rolling up to
        // states, must agree (strict complete hierarchy).
        let direct = ops::s_project(&o, "city").unwrap();
        let via_state = ops::s_project(&ops::s_aggregate(&o, "city", "state").unwrap(), "city").unwrap();
        prop_assert_eq!(direct.cell_count(), via_state.cell_count());
        for (coords, states) in direct.cells() {
            let names = direct.schema().names_of(coords).unwrap();
            let v = via_state.get(&names).unwrap();
            prop_assert!((states[0].sum - v.unwrap_or(0.0)).abs() < 1e-9
                || (v.is_none() && states[0].sum == 0.0));
        }
    }

    #[test]
    fn rollup_preserves_grand_total(o in object_strategy()) {
        let rolled = ops::s_aggregate(&o, "city", "state").unwrap();
        match (o.grand_total(0), rolled.grand_total(0)) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn union_with_self_prefer_first_is_identity_on_values(o in object_strategy()) {
        let u = ops::s_union(&o, &o, UnionPolicy::PreferFirst).unwrap();
        prop_assert_eq!(u.cell_count(), o.cell_count());
        for (coords, states) in o.cells() {
            let names = o.schema().names_of(coords).unwrap();
            let coords2 = u.schema().coords_of(&names).unwrap();
            let s2 = u.states_at(&coords2).unwrap();
            prop_assert!((s2[0].sum - states[0].sum).abs() < 1e-12);
        }
        // ErrorOnConflict also accepts a self-union (everything agrees).
        prop_assert!(ops::s_union(&o, &o, UnionPolicy::ErrorOnConflict).is_ok());
        // MergeStates doubles sums.
        let m = ops::s_union(&o, &o, UnionPolicy::MergeStates).unwrap();
        match (o.grand_total(0), m.grand_total(0)) {
            (Some(a), Some(b)) => prop_assert!((2.0 * a - b).abs() < 1e-9),
            (a, b) => prop_assert_eq!(a.map(|x| 2.0 * x), b),
        }
    }

    #[test]
    fn union_is_commutative_up_to_domain_order(a in object_strategy(), b in object_strategy()) {
        let ab = ops::s_union(&a, &b, UnionPolicy::MergeStates).unwrap();
        let ba = ops::s_union(&b, &a, UnionPolicy::MergeStates).unwrap();
        prop_assert_eq!(ab.cell_count(), ba.cell_count());
        for (coords, states) in ab.cells() {
            let names = ab.schema().names_of(coords).unwrap();
            let v = ba.get(&names).unwrap();
            prop_assert!((states[0].sum - v.unwrap_or(f64::NAN)).abs() < 1e-9);
        }
    }
}

#[test]
fn non_strict_rollup_always_refused() {
    let h = Hierarchy::builder("h")
        .level("leaf")
        .level("top")
        .edge("x", "p")
        .edge("x", "q")
        .build()
        .unwrap();
    let schema = Schema::builder("t")
        .dimension(Dimension::classified("d", h))
        .measure(SummaryAttribute::new("m", MeasureKind::Flow))
        .build()
        .unwrap();
    let mut o = StatisticalObject::empty(schema);
    o.insert(&["x"], 1.0).unwrap();
    assert!(ops::s_aggregate(&o, "d", "top").is_err());
}
