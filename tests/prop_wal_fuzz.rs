//! Corrupt-input fuzzing for the write-ahead journal decoder and the
//! recovery state machine.
//!
//! A journal found after a crash is untrusted bytes: torn tails, bit rot,
//! duplicated regions (a retried write landing twice), or outright garbage.
//! These properties pin the contract the WAL documents: on **any** byte
//! image, [`decode_records`] returns the longest intact prefix and a
//! [`TailReport`] that accounts for every byte — and the full recovery path
//! ([`recover_replay`]) either reconstitutes a store or returns a typed
//! error. Never a panic, never an out-of-bounds read, never a record
//! replayed twice (sequence numbers make replay idempotent, so a
//! duplicated tail recovers to the same bits as the original).

use proptest::prelude::*;

use statcube::cube::durable::{
    decode_fact_input, decode_snapshot, encode_fact_input, encode_snapshot, recover_replay,
};
use statcube::cube::input::FactInput;
use statcube::cube::query::ViewStore;
use statcube::storage::wal::{
    decode_records, DeltaJournal, ManifestCell, RecordKind, RECORD_HEADER_BYTES,
};

/// A small deterministic fact set within fixed cards (integer measures).
fn facts(seed: u64, rows: usize) -> FactInput {
    let mut f = FactInput::new(&[4, 3]).unwrap();
    let mut x = seed.wrapping_mul(0x9E37_79B9).max(1);
    for _ in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        f.push(&[(x % 4) as u32, ((x >> 8) % 3) as u32], (1 + x % 50) as f64).unwrap();
    }
    f
}

/// A well-formed journal: snapshot, `deltas` delta records, one commit
/// stamp for the first delta. Returns the image and the per-record byte
/// boundaries (for cutting on and off record edges).
fn valid_journal(seed: u64, deltas: usize) -> (Vec<u8>, Vec<u64>) {
    let base = facts(seed, 60);
    let store = ViewStore::build(&base, &[0b01]).unwrap();
    let journal = DeltaJournal::new();
    let mut bounds = vec![0u64];
    let s = journal.append(RecordKind::Snapshot, 0, &encode_snapshot(&store)).unwrap();
    bounds.push(s.end_offset);
    let mut first_delta_seq = None;
    for i in 0..deltas {
        let d = facts(seed.wrapping_add(i as u64 + 1), 10);
        let a = journal.append(RecordKind::Delta, i as u64 + 1, &encode_fact_input(&d)).unwrap();
        first_delta_seq.get_or_insert(a.seq);
        bounds.push(a.end_offset);
    }
    if let Some(seq) = first_delta_seq {
        let c = journal.append(RecordKind::Commit, 1, &seq.to_le_bytes()).unwrap();
        bounds.push(c.end_offset);
    }
    (journal.image(), bounds)
}

/// Bit-exact store comparison over every materialized view.
fn same_bits(a: &ViewStore, b: &ViewStore) -> bool {
    a.materialized() == b.materialized()
        && a.materialized().into_iter().all(|m| {
            let (va, vb) = (a.view(m).unwrap(), b.view(m).unwrap());
            va.len() == vb.len()
                && va.iter().all(|(k, sa)| {
                    vb.get(k).is_some_and(|sb| {
                        sa.sum.to_bits() == sb.sum.to_bits() && sa.count == sb.count
                    })
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage through the record decoder: every byte is
    /// accounted for, every decoded record lies inside the intact prefix.
    #[test]
    fn decode_records_never_panics_and_accounts_for_every_byte(
        data in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let (records, tail) = decode_records(&data);
        prop_assert_eq!(tail.valid_len + tail.torn_bytes, data.len() as u64);
        let decoded: u64 = records
            .iter()
            .map(|r| (RECORD_HEADER_BYTES + r.payload.len()) as u64)
            .sum();
        prop_assert_eq!(decoded, tail.valid_len);
    }

    /// Arbitrary garbage through the payload codecs: typed error or a
    /// valid value, never a panic (declared counts are untrusted).
    #[test]
    fn payload_decoders_never_panic_on_garbage(
        data in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let _ = decode_fact_input(&data);
        let _ = decode_snapshot(&data);
    }

    /// Truncating a valid journal anywhere yields a strict prefix of its
    /// record list — recovery of the cut image never panics and never
    /// invents records.
    #[test]
    fn truncation_yields_a_record_prefix(seed in 1u64..500, cut_num in 0u32..=1000) {
        let (image, _) = valid_journal(seed, 3);
        let (full, clean_tail) = decode_records(&image);
        prop_assert_eq!(clean_tail.torn_bytes, 0);
        let cut = cut_num as usize * image.len() / 1000;
        let (prefix, tail) = decode_records(&image[..cut]);
        prop_assert!(prefix.len() <= full.len());
        prop_assert_eq!(&full[..prefix.len()], &prefix[..]);
        prop_assert_eq!(tail.valid_len + tail.torn_bytes, cut as u64);
        // The full recovery path survives the cut too: a store (when the
        // snapshot record survived) or a typed error, never a panic.
        let journal = DeltaJournal::from_bytes(image[..cut].to_vec());
        let _ = recover_replay(&journal, &ManifestCell::new());
    }

    /// Flipping any bit of a valid journal: the decoder and the full
    /// recovery path return (Ok or typed error), never panic, and replay
    /// never applies more deltas than the journal holds.
    #[test]
    fn bit_flips_never_panic_recovery(seed in 1u64..500, bit in 0u64..1_000_000) {
        let (image, _) = valid_journal(seed, 2);
        let journal = DeltaJournal::from_bytes(image);
        journal.corrupt_bit(bit);
        if let Ok((_, report)) = recover_replay(&journal, &ManifestCell::new()) {
            prop_assert!(report.replayed_deltas <= 2);
        }
    }

    /// A duplicated tail (retried writes landing twice) recovers to the
    /// same bits as the original journal: old sequence numbers are skipped,
    /// never replayed twice.
    #[test]
    fn duplicated_tails_replay_idempotently(
        seed in 1u64..500,
        from_rec in 1usize..=4,
    ) {
        let (image, bounds) = valid_journal(seed, 3);
        let (clean, _) = recover_replay(
            &DeltaJournal::from_bytes(image.clone()),
            &ManifestCell::new(),
        ).unwrap();
        let from = bounds[from_rec.min(bounds.len() - 1)] as usize;
        let mut doubled = image.clone();
        doubled.extend_from_slice(&image[from..]);
        let (recovered, report) = recover_replay(
            &DeltaJournal::from_bytes(doubled),
            &ManifestCell::new(),
        ).unwrap();
        prop_assert!(report.replayed_deltas <= 3, "duplicates must not re-apply");
        prop_assert!(same_bits(&recovered, &clean), "duplicated tail changed the image");
    }
}
