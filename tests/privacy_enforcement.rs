//! In-path privacy enforcement across every front-end (paper §7).
//!
//! The planner inserts a mandatory privacy pass, so a suppression policy
//! must change the answers of *all* query paths identically: the SQL
//! interpreter, the `ViewStore` cube path, and the cached serving session.
//! These tests pin that invariant — including on warm cache hits, where a
//! pre-planner engine could leak cells admitted under a laxer policy.
//!
//! The fixture holds one record per populated cell (the macro-data grain
//! `FactInput` preserves), so unit counts agree between the interpreter
//! and the cube paths at every grouping level.

use std::collections::BTreeSet;

use statcube::core::dimension::Dimension;
use statcube::core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use statcube::core::object::StatisticalObject;
use statcube::core::plan::{PlannerConfig, PrivacyPolicy};
use statcube::core::schema::Schema;
use statcube::cube::cache::CacheConfig;
use statcube::cube::input::FactInput;
use statcube::cube::query::ViewStore;
use statcube::sql::{self, CachedSession, ResultSet};

/// product × store sales, one record per cell. `pear` is sold in one store
/// only, so `GROUP BY product` under `suppress(2)` withholds exactly it.
fn sales() -> StatisticalObject {
    let schema = Schema::builder("sales")
        .dimension(Dimension::categorical("product", ["apple", "pear", "plum"]))
        .dimension(Dimension::categorical("store", ["s1", "s2"]))
        .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
        .function(SummaryFunction::Sum)
        .build()
        .unwrap();
    let mut o = StatisticalObject::empty(schema);
    let cells: &[(&str, &str, f64)] = &[
        ("apple", "s1", 10.0),
        ("apple", "s2", 4.0),
        ("pear", "s1", 7.0),
        ("plum", "s1", 9.0),
        ("plum", "s2", 1.0),
    ];
    for &(p, s, v) in cells {
        o.insert(&[p, s], v).unwrap();
    }
    o
}

/// The group labels of suppressed rows (every value reads `NULL`).
fn suppressed_groups(rs: &ResultSet) -> BTreeSet<Vec<String>> {
    rs.rows
        .iter()
        .filter(|r| r.suppressed)
        .map(|r| r.group.iter().map(|g| g.as_deref().unwrap_or("ALL").to_owned()).collect())
        .collect()
}

/// The group labels of published rows.
fn published_groups(rs: &ResultSet) -> BTreeSet<Vec<String>> {
    rs.rows
        .iter()
        .filter(|r| !r.suppressed)
        .map(|r| r.group.iter().map(|g| g.as_deref().unwrap_or("ALL").to_owned()).collect())
        .collect()
}

#[test]
fn one_policy_changes_sql_viewstore_and_cached_answers_identically() {
    let o = sales();
    let policy = PrivacyPolicy::suppress(2);
    let query = sql::parse("SELECT SUM(amount) FROM sales GROUP BY product").unwrap();
    let expected_suppressed: BTreeSet<Vec<String>> = [vec!["pear".to_owned()]].into();

    // 1. The SQL interpreter withholds exactly the single-cell group.
    let interpreted = sql::execute_with_policy(&o, &query, &policy).unwrap();
    assert_eq!(suppressed_groups(&interpreted), expected_suppressed);
    assert_eq!(interpreted.rows.len(), 3, "suppressed rows are published as NULL, not dropped");

    // 2. The ViewStore cube path withholds the same group (absent from the
    //    returned cuboid entirely). Mask 0b01 keeps only `product`.
    let facts = FactInput::from_object(&o).unwrap();
    let store = ViewStore::build(&facts, &[]).unwrap();
    let answer = store.answer_with_policy(0b01, &policy, PlannerConfig::default()).unwrap();
    let product = o.schema().dimensions()[0].members();
    let store_published: BTreeSet<Vec<String>> =
        answer.cuboid.keys().map(|k| vec![product.value_of(k[0]).unwrap().to_owned()]).collect();
    assert_eq!(store_published, published_groups(&interpreted));
    assert!(!store_published.contains(&vec!["pear".to_owned()]), "pear leaked from the store");

    // 3. The cached session withholds the same group — cold and warm, so a
    //    cache hit can never resurrect a suppressed cell.
    let session =
        CachedSession::new(&o, CacheConfig::default()).unwrap().with_policy(policy.clone());
    let cold = session.execute(&query).unwrap();
    assert_eq!(suppressed_groups(&cold.result), expected_suppressed);
    let warm = session.execute(&query).unwrap();
    assert!(warm.cache_hits > 0, "second run must be served from the cache");
    assert_eq!(suppressed_groups(&warm.result), expected_suppressed);
    assert_eq!(published_groups(&warm.result), published_groups(&interpreted));

    // The published values agree across all three paths.
    for row in interpreted.rows.iter().filter(|r| !r.suppressed) {
        let id = product.id_of(row.group[0].as_deref().unwrap()).unwrap();
        let state = answer.cuboid.get(&vec![id].into_boxed_slice()).unwrap();
        assert_eq!(Some(state.sum), row.values[0]);
        let cached_row = warm
            .result
            .rows
            .iter()
            .find(|r| r.group == row.group)
            .expect("cached path returns the same groups");
        assert_eq!(cached_row.values, row.values);
    }
}

#[test]
fn permissive_policy_publishes_everything_on_every_path() {
    let o = sales();
    let query = sql::parse("SELECT SUM(amount) FROM sales GROUP BY product, store").unwrap();
    let interpreted = sql::execute(&o, &query).unwrap();
    assert!(interpreted.rows.iter().all(|r| !r.suppressed));
    assert_eq!(interpreted.rows.len(), 5);

    let facts = FactInput::from_object(&o).unwrap();
    let store = ViewStore::build(&facts, &[]).unwrap();
    assert_eq!(store.answer(0b11).unwrap().cuboid.len(), 5);

    let session = CachedSession::new(&o, CacheConfig::default()).unwrap();
    let ans = session.execute(&query).unwrap();
    assert!(ans.result.rows.iter().all(|r| !r.suppressed));
    assert_eq!(ans.result.rows.len(), 5);
}

#[test]
fn cube_marginals_get_complementary_protection_on_both_sql_paths() {
    let o = sales();
    let policy = PrivacyPolicy::suppress(2);
    let query = sql::parse("SELECT SUM(amount) FROM sales GROUP BY CUBE(product, store)").unwrap();

    let interpreted = sql::execute_with_policy(&o, &query, &policy).unwrap();
    let session =
        CachedSession::new(&o, CacheConfig::default()).unwrap().with_policy(policy.clone());
    let cached = session.execute(&query).unwrap();
    assert_eq!(suppressed_groups(&cached.result), suppressed_groups(&interpreted));
    assert_eq!(published_groups(&cached.result), published_groups(&interpreted));

    let hidden = suppressed_groups(&interpreted);
    // Primary suppression: every base cell holds one record, and the pear
    // marginal covers a single cell.
    assert!(hidden.contains(&vec!["apple".to_owned(), "s1".to_owned()]));
    assert!(hidden.contains(&vec!["pear".to_owned(), "ALL".to_owned()]));
    // Complementary suppression withheld more than the primary victims, so
    // no published marginal line can be inverted.
    assert!(hidden.len() > 6, "complementary suppression must fire on CUBE marginals");

    // Warm repetition of the cube answers is identical.
    let warm = session.execute(&query).unwrap();
    assert_eq!(suppressed_groups(&warm.result), suppressed_groups(&interpreted));
}
