//! Chaos property suite: under any seeded fault plan, every query either
//! equals the fault-free oracle **bit for bit** or returns a typed error —
//! never a silently corrupted answer.
//!
//! The suite drives three query surfaces through injected faults:
//!
//! * [`ViewStore`] — materialized views sealed in a checksummed
//!   [`PageStore`], queried under uniform fault plans (transient errors,
//!   short reads, bit flips, torn writes) across 120 seeds;
//! * [`molap`]/[`rolap`] — sealed engine cubes with targeted per-seed
//!   corruption, answered through the verified lookup path;
//! * the physical stores — every `Scrubbable` organization catches an
//!   injected bit flip in a scrub pass.
//!
//! Measures are integer-valued throughout, so sums are exact in `f64`
//! regardless of derivation order and "equals the oracle" can be asserted
//! on raw bits. Reproducing any failure: every fault decision derives from
//! the printed seed via `FaultPlan`'s `StdRng` stream (see DESIGN.md,
//! "Fault model and degraded answers").

use statcube::core::error::Error;
use statcube::cube::cache::CacheConfig;
use statcube::cube::cube_op::DerivationSource;
use statcube::cube::groupby::{self, Cuboid};
use statcube::cube::input::FactInput;
use statcube::cube::query::ViewStore;
use statcube::cube::shared::SharedViewStore;
use statcube::cube::{molap, rolap};
use statcube::storage::page_store::FaultPlan;

const SEEDS: u64 = 120;

/// 3-dim workload with integer measures (exact f64 sums).
fn facts(seed: u64) -> FactInput {
    let mut f = FactInput::new(&[8, 4, 2]).unwrap();
    let mut x = seed.wrapping_mul(0x9E37_79B9).max(1);
    for _ in 0..300 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        f.push(&[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32], (x % 100) as f64)
            .unwrap();
    }
    f
}

/// Bit-exact cuboid comparison: every key present in both, every state
/// field identical at the bit level.
fn bit_identical(a: &Cuboid, b: &Cuboid) -> bool {
    a.len() == b.len()
        && a.iter().all(|(k, sa)| {
            b.get(k).is_some_and(|sb| {
                sa.sum.to_bits() == sb.sum.to_bits()
                    && sa.count == sb.count
                    && sa.min.to_bits() == sb.min.to_bits()
                    && sa.max.to_bits() == sb.max.to_bits()
            })
        })
}

fn is_typed_fault(e: &Error) -> bool {
    matches!(
        e,
        Error::ChecksumMismatch { .. }
            | Error::RetriesExhausted { .. }
            | Error::NoHealthySource { .. }
    )
}

/// The headline property: across ≥100 seeded uniform fault plans, every
/// ViewStore query is bit-identical to the fault-free oracle or a typed
/// error. Torn writes are exercised via a rewrite (`apply_delta`) under an
/// armed injector.
#[test]
fn viewstore_oracle_or_typed_error_across_seeds() {
    let f = facts(1);
    let oracle = ViewStore::build(&f, &[0b011, 0b101]).unwrap();
    let oracle_answers: Vec<Cuboid> = (0..8u32).map(|m| oracle.answer(m).unwrap().cuboid).collect();

    let mut faulted_runs = 0u64;
    let mut degraded_answers = 0u64;
    let mut typed_errors = 0u64;
    for seed in 0..SEEDS {
        // Rates 0 %, 2 %, 4 %, 8 % — seed 0 doubles as a fault-free control.
        let rate = [0.0, 0.02, 0.04, 0.08][(seed % 4) as usize];
        let mut store = ViewStore::build(&f, &[0b011, 0b101]).unwrap();
        store.arm_faults(FaultPlan::uniform(seed, rate));
        // Rewrite under the armed injector so torn writes land too (the
        // empty delta leaves the logical content unchanged).
        store.apply_delta(&FactInput::new(f.cards()).unwrap()).unwrap();
        for mask in 0..8u32 {
            match store.answer(mask) {
                Ok(ans) => {
                    assert!(
                        bit_identical(&ans.cuboid, &oracle_answers[mask as usize]),
                        "seed {seed} rate {rate} mask {mask:03b}: answer differs from oracle"
                    );
                    if let Some(d) = &ans.degraded {
                        degraded_answers += 1;
                        assert_eq!(d.requested, mask);
                        assert_eq!(d.served_from, ans.source);
                        assert!(!d.failed.is_empty());
                        assert!(d.failed.iter().all(|(_, e)| is_typed_fault(e)));
                    }
                }
                Err(e) => {
                    typed_errors += 1;
                    assert!(is_typed_fault(&e), "seed {seed}: untyped error {e:?}");
                }
            }
        }
        let s = store.fault_stats();
        if rate == 0.0 {
            assert_eq!(s, Default::default(), "seed {seed}: faults under a zero-rate plan");
        } else if s.transient_faults + s.short_reads + s.bit_flips + s.torn_writes > 0 {
            faulted_runs += 1;
        }
    }
    // The sweep must actually have exercised the fault paths.
    assert!(faulted_runs > 50, "only {faulted_runs} runs saw faults");
    assert!(degraded_answers > 0, "no degraded answer across {SEEDS} seeds");
    assert!(typed_errors > 0, "no typed error across {SEEDS} seeds");
}

/// Determinism: the same seed over the same operation sequence yields the
/// same answers, the same degradations, and the same fault counters.
#[test]
fn chaos_runs_reproduce_from_their_seed() {
    let f = facts(7);
    let run = |seed: u64| {
        let store = ViewStore::build(&f, &[0b110]).unwrap();
        store.arm_faults(FaultPlan::uniform(seed, 0.1));
        let outcomes: Vec<String> = (0..8u32)
            .map(|m| match store.answer(m) {
                Ok(a) => format!("ok:{}:{}", a.source, a.degraded.is_some()),
                Err(e) => format!("err:{e}"),
            })
            .collect();
        (outcomes, store.fault_stats())
    };
    assert_eq!(run(42), run(42));
    assert_eq!(run(1234), run(1234));
}

/// Targeted corruption: a cuboid with a bad page is answered via a healthy
/// lattice ancestor, the degradation lands in the result stats, and the
/// answer stays exact.
#[test]
fn corrupted_cuboid_answered_via_healthy_ancestor() {
    let f = facts(3);
    let store = ViewStore::build(&f, &[0b011]).unwrap();
    store.corrupt_view(0b011, 123).unwrap();
    let cube = store.answer_cube().unwrap();
    // Exactness first: every cuboid still matches direct computation.
    for mask in 0..8u32 {
        assert!(bit_identical(cube.cuboid(mask).unwrap(), &groupby::from_facts(&f, mask)));
    }
    // Provenance: the degraded masks carry FallbackAncestor stats.
    assert!(!cube.degradations().is_empty());
    for d in cube.degradations() {
        let stat = cube.stats_for(d.requested).unwrap();
        assert!(matches!(stat.source, DerivationSource::FallbackAncestor { failed: 0b011, .. }));
    }
    assert!(cube.degradations().iter().any(|d| d.requested == 0b011));
}

/// The serving layer under chaos: across the same 120 seeded fault plans,
/// a cache-enabled [`SharedViewStore`] and the uncached baseline (budget 0)
/// agree — every successful answer, hit or miss, is bit-identical to the
/// fault-free oracle, and failures are typed. Each store is queried in two
/// passes so the second pass exercises cache hits *while faults fire*.
#[test]
fn cached_store_matches_uncached_path_across_seeds() {
    let f = facts(1);
    let oracle = ViewStore::build(&f, &[0b011, 0b101]).unwrap();
    let oracle_answers: Vec<Cuboid> = (0..8u32).map(|m| oracle.answer(m).unwrap().cuboid).collect();

    let mut cache_hits = 0u64;
    let mut faulted_runs = 0u64;
    for seed in 0..SEEDS {
        let rate = [0.0, 0.02, 0.04, 0.08][(seed % 4) as usize];
        let cached = SharedViewStore::build(&f, &[0b011, 0b101], CacheConfig::default()).unwrap();
        let uncached =
            SharedViewStore::build(&f, &[0b011, 0b101], CacheConfig::disabled()).unwrap();
        cached.arm_faults(FaultPlan::uniform(seed, rate));
        uncached.arm_faults(FaultPlan::uniform(seed, rate));
        for pass in 0..2 {
            for mask in 0..8u32 {
                let a = cached.answer(mask);
                let b = uncached.answer(mask);
                for (who, ans) in [("cached", &a), ("uncached", &b)] {
                    match ans {
                        Ok(ans) => assert!(
                            bit_identical(&ans.cuboid, &oracle_answers[mask as usize]),
                            "seed {seed} pass {pass} mask {mask:03b}: {who} differs from oracle"
                        ),
                        Err(e) => {
                            assert!(is_typed_fault(e), "seed {seed}: untyped {who} error {e:?}")
                        }
                    }
                }
                if let Ok(ans) = &a {
                    cache_hits += u64::from(ans.cache_hit);
                }
            }
        }
        assert_eq!(uncached.cache_stats().entries, 0, "budget 0 must admit nothing");
        let s = cached.fault_stats();
        if s.transient_faults + s.short_reads + s.bit_flips > 0 {
            faulted_runs += 1;
        }
    }
    assert!(cache_hits > SEEDS * 4, "cache should hit on second passes: {cache_hits}");
    assert!(faulted_runs > 30, "only {faulted_runs} cached runs saw faults");
}

/// The stale-read property: corruption evicts dependent cache entries
/// (directly and via scrub), and after a healing delta the cache serves the
/// *new* totals — never a value cached before the store changed.
#[test]
fn no_stale_reads_after_corrupt_scrub_and_heal() {
    let f = facts(9);
    let store = SharedViewStore::build(&f, &[0b011, 0b101], CacheConfig::default()).unwrap();
    // Prime every cuboid, then prime again so everything is a known hit.
    for mask in 0..8u32 {
        store.answer(mask).unwrap();
    }
    let primed = store.answer(0b001).unwrap();
    assert!(primed.cache_hit);

    // Corrupt the view {d0} was actually served from: its entries are
    // evicted at once; the detour answer is exact, degraded, not cached.
    store.corrupt_view(primed.source, 41).unwrap();
    let detour = store.answer(0b001).unwrap();
    assert!(!detour.cache_hit, "stale entry served after corruption");
    assert!(detour.degraded.is_some());
    assert!(bit_identical(&detour.cuboid, &groupby::from_facts(&f, 0b001)));

    // The scrub localizes the failure and reports eviction work done.
    let report = store.scrub();
    assert!(!report.is_clean());
    assert!(store.cache_stats().invalidations > 0);

    // Heal with a real (non-empty) delta: every subsequent answer must
    // reflect the delta, including answers that were cached pre-delta.
    let mut delta = FactInput::new(f.cards()).unwrap();
    delta.push(&[7, 3, 1], 5000.0).unwrap();
    store.apply_delta(&delta).unwrap();
    let mut combined = FactInput::new(f.cards()).unwrap();
    for row in 0..f.len() {
        combined.push(&f.coords(row), f.measure()[row]).unwrap();
    }
    combined.push(&[7, 3, 1], 5000.0).unwrap();
    for mask in 0..8u32 {
        let fresh = store.answer(mask).unwrap();
        assert!(!fresh.cache_hit, "mask {mask:03b}: pre-delta entry survived apply_delta");
        assert!(fresh.degraded.is_none(), "rewrite heals corruption");
        assert!(
            bit_identical(&fresh.cuboid, &groupby::from_facts(&combined, mask)),
            "mask {mask:03b}: answer does not include the delta"
        );
        // And the re-admitted entry serves the same fresh value.
        let warm = store.answer(mask).unwrap();
        assert!(warm.cache_hit);
        assert!(bit_identical(&warm.cuboid, &fresh.cuboid));
    }
}

/// Delta atomicity under chaos: across the 120 seeded fault plans, a
/// non-empty delta applied with faults armed publishes **fully** — the
/// generation bumps exactly once and every answer is bit-identical to the
/// combined oracle or a typed error (torn writes may corrupt the resealed
/// files, never the folded values) — and a batch that fails validation
/// publishes **nothing**: generation unchanged, answers still the oracle.
#[test]
fn fault_injected_deltas_publish_fully_or_not_at_all() {
    let f = facts(13);
    let mut combined = FactInput::new(f.cards()).unwrap();
    for row in 0..f.len() {
        combined.push(&f.coords(row), f.measure()[row]).unwrap();
    }
    combined.push(&[7, 3, 1], 5000.0).unwrap();
    let oracle: Vec<Cuboid> = (0..8u32).map(|m| groupby::from_facts(&combined, m)).collect();

    for seed in 0..SEEDS {
        let rate = [0.0, 0.02, 0.04, 0.08][(seed % 4) as usize];
        let store = SharedViewStore::build(&f, &[0b011, 0b101], CacheConfig::default()).unwrap();
        store.arm_faults(FaultPlan::uniform(seed, rate));

        // The fold runs on in-memory views, so it succeeds even under an
        // armed injector; the injected faults land on the successor's
        // seals instead.
        let mut d = FactInput::new(f.cards()).unwrap();
        d.push(&[7, 3, 1], 5000.0).unwrap();
        store.apply_delta(&d).unwrap();
        assert_eq!(store.generation(), 1, "seed {seed}: delta must publish exactly once");

        let check = |when: &str| {
            for mask in 0..8u32 {
                match store.answer(mask) {
                    Ok(ans) => assert!(
                        bit_identical(&ans.cuboid, &oracle[mask as usize]),
                        "seed {seed} {when} mask {mask:03b}: answer differs from combined oracle"
                    ),
                    Err(e) => assert!(is_typed_fault(&e), "seed {seed} {when}: untyped {e:?}"),
                }
            }
        };
        check("after delta");

        // A poison batch must change nothing, faults or no faults.
        let mut bad = FactInput::new(f.cards()).unwrap();
        bad.push(&[1, 1, 1], f64::NAN).unwrap();
        assert!(store.apply_delta(&bad).is_err(), "seed {seed}: NaN delta accepted");
        assert_eq!(store.generation(), 1, "seed {seed}: rejected delta published");
        check("after rejected delta");
    }
}

/// The engine cubes under per-seed targeted corruption: verified lookups
/// equal the fault-free oracle or fail typed; corrupting every covering
/// cuboid yields `NoHealthySource`, never a silent wrong number.
#[test]
fn engine_cubes_oracle_or_typed_error_across_seeds() {
    let f = facts(5);
    let molap_oracle = molap::compute_molap(&f).unwrap();
    let rolap_oracle = rolap::compute_rolap(&f);
    let patterns: Vec<Vec<Option<u32>>> = vec![
        vec![None, None, None],
        vec![Some(2), None, None],
        vec![None, Some(1), None],
        vec![Some(3), Some(0), Some(1)],
        vec![None, Some(2), Some(0)],
    ];
    for seed in 0..SEEDS {
        let target = (seed % 8) as u32;
        let bit = seed.wrapping_mul(2654435761);

        let mut m = molap::compute_molap(&f).unwrap();
        m.seal();
        m.corrupt(target, bit).unwrap();
        let mut r = rolap::compute_rolap(&f);
        r.seal();
        r.corrupt(target, bit).unwrap();

        for p in &patterns {
            match m.get_all_verified(p) {
                Ok((cell, _)) => {
                    assert_eq!(cell, molap_oracle.get_all(p), "seed {seed} molap pattern {p:?}")
                }
                Err(e) => assert!(is_typed_fault(&e)),
            }
            match r.get_all_verified(p) {
                Ok((cell, _)) => {
                    assert_eq!(cell, rolap_oracle.get_all(p), "seed {seed} rolap pattern {p:?}")
                }
                Err(e) => assert!(is_typed_fault(&e)),
            }
        }
        // The scrub pass localizes the corruption to exactly one object.
        assert_eq!(m.scrub().failures.len(), 1, "seed {seed}");
        assert_eq!(r.scrub().failures.len(), 1, "seed {seed}");
    }
}

/// Every `Scrubbable` physical organization: clean seal verifies, one
/// injected bit flip is caught by the next scrub.
#[test]
fn every_store_scrub_catches_injected_bitflips() {
    use statcube::storage::chunked::ChunkedArray;
    use statcube::storage::column::TransposedStore;
    use statcube::storage::header::HeaderCompressed;
    use statcube::storage::linear::LinearizedArray;
    use statcube::storage::relation::Relation;
    use statcube::storage::row::RowStore;
    use statcube::storage::star::{DimensionTable, StarSchema};

    fn rel() -> Relation {
        let mut rel = Relation::new(&["state", "sex"], &["pop"]);
        for i in 0..200 {
            rel.push(
                &[if i % 2 == 0 { "AL" } else { "CA" }, if i % 3 == 0 { "m" } else { "f" }],
                &[i as f64],
            )
            .unwrap();
        }
        rel
    }

    let mut linear = LinearizedArray::new(&[8, 9]).unwrap();
    for i in 0..8 {
        linear.set(&[i, i], (i * 3) as f64).unwrap();
    }
    let mut header = HeaderCompressed::from_dense(
        &(0..500).map(|i| if i % 7 == 0 { f64::NAN } else { i as f64 }).collect::<Vec<_>>(),
    );
    let mut chunked = ChunkedArray::new(&[16, 16], &[4, 4], 4096).unwrap();
    for i in 0..16 {
        chunked.set(&[i, (i * 5) % 16], i as f64).unwrap();
    }
    let mut row = RowStore::new(rel(), 4096);
    let mut col = TransposedStore::new(rel(), 4096);
    let mut star = {
        let mut d = DimensionTable::new("state", &["name"]);
        d.push(&["AL"]).unwrap();
        d.push(&["CA"]).unwrap();
        let mut s = StarSchema::new(vec![d], &["pop"], 4096);
        for i in 0..100 {
            s.push_fact(&[(i % 2) as u32], &[i as f64]).unwrap();
        }
        s
    };

    // Each store: seal → clean verify → flip → scrub catches it. The seal,
    // scrub and corruption hooks go through the same Scrubbable plumbing,
    // so one loop per store suffices.
    macro_rules! check {
        ($store:ident, $bit:expr) => {{
            let seal = $store.seal();
            assert!($store.verify_all(&seal).is_ok(), "{} clean", stringify!($store));
            statcube::storage::verify::Scrubbable::inject_bitflip(&mut $store, $bit);
            let report = $store.scrub(&seal);
            assert!(!report.is_clean(), "{} corrupted", stringify!($store));
            assert!($store.verify_all(&seal).is_err());
        }};
    }
    check!(linear, 777);
    check!(header, 1234);
    check!(chunked, 4321);
    check!(row, 999);
    check!(col, 555);
    check!(star, 2468);
}
