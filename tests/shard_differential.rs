//! Scatter-gather differential suite: a [`ShardedViewStore`] must answer
//! **bit for bit** like the unsharded [`SharedViewStore`] it partitions,
//! across
//!
//! * all five workload generators (census, retail, stocks, HMO,
//!   resources),
//! * every privacy-policy shape (open, suppression, tracker guard,
//!   seeded perturbation),
//! * shard counts N ∈ {1, 2, 4, 7} under both hash and range routers,
//! * delta maintenance (routed sub-batches folded per shard),
//!
//! plus a 120-seed dead-shard chaos property: killing a random subset of
//! shards yields a typed *partial* answer whose `missing_shards` mask
//! names exactly the killed shards, and whose cells equal — bit for bit —
//! an unsharded store built over only the surviving shards' rows. Never
//! an error while any shard lives, never a silently wrong total.
//!
//! Bit-for-bit is meaningful for the same reason as the maintenance
//! suite: measures are integerized (cents), and integer-valued `f64` sums
//! are exact under any association — so the shard merge's different
//! float grouping cannot shift an ulp. Perturbed policies stay
//! bit-identical because the merged pre-enforcement block equals the
//! unsharded derived block, and the seeded perturbation is a pure
//! function of that block.
//!
//! `quick_`-prefixed tests are the ci.sh quick-mode slice.

use statcube::core::measure::{AggState, MeasureKind, SummaryFunction};
use statcube::core::object::StatisticalObject;
use statcube::core::plan::{PlannerConfig, PrivacyPolicy};
use statcube::cube::cache::CacheConfig;
use statcube::cube::groupby::Cuboid;
use statcube::cube::input::FactInput;
use statcube::cube::sharded::{ShardRouter, ShardedViewStore};
use statcube::cube::shared::SharedViewStore;
use statcube::workload::prelude::*;
use statcube::workload::{census, hmo, resources, retail, stocks};

/// Facts from any statistical object, first measure only, integerized to
/// cents so `f64` summation is exact under any association.
fn integer_facts(obj: &StatisticalObject) -> FactInput {
    let mut f = FactInput::new(&obj.schema().cardinalities()).unwrap();
    for (coords, states) in obj.cells() {
        f.push(coords, (states[0].sum * 100.0).round()).unwrap();
    }
    f
}

fn bit_identical_state(a: &AggState, b: &AggState) -> bool {
    a.sum.to_bits() == b.sum.to_bits()
        && a.count == b.count
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
}

fn bit_identical(a: &Cuboid, b: &Cuboid) -> bool {
    a.len() == b.len()
        && a.iter().all(|(k, sa)| b.get(k).is_some_and(|sb| bit_identical_state(sa, sb)))
}

/// The policy shapes under test: open, plain suppression, suppression
/// with the tracker guard, and seeded perturbation over suppression.
fn policies() -> Vec<PrivacyPolicy> {
    vec![
        PrivacyPolicy::none(),
        PrivacyPolicy::suppress(2),
        PrivacyPolicy::suppress(3).with_tracker_guard(),
        PrivacyPolicy::suppress(2).with_perturbation(1.5, 97),
    ]
}

/// The router pool for a store shape: hash on every dimension is always
/// valid; a range router needs at least `n` distinct coordinates on its
/// dimension, so it partitions the widest one when that fits.
fn routers(cards: &[usize], n: usize) -> Vec<ShardRouter> {
    let mut out = vec![ShardRouter::Hash { dim: 0 }, ShardRouter::Hash { dim: cards.len() - 1 }];
    let (dim, &card) =
        cards.iter().enumerate().max_by_key(|&(_, &c)| c).expect("at least one dimension");
    if card >= n {
        let bounds: Vec<u32> = (1..n).map(|i| (i * card / n) as u32).collect();
        if n == 1 || bounds.windows(2).all(|w| w[0] < w[1]) {
            out.push(ShardRouter::Range { dim, bounds });
        }
    }
    out
}

/// The differential assertion: for every mask of the lattice and every
/// policy, the sharded answer is complete (no missing shards) and
/// bit-identical to the unsharded one.
fn assert_equivalent(unsharded: &SharedViewStore, sharded: &ShardedViewStore, label: &str) {
    assert_eq!(unsharded.top(), sharded.top(), "{label}: lattice tops differ");
    for policy in policies() {
        for mask in 0..=unsharded.top() {
            let a = unsharded.answer_with_policy(mask, &policy, PlannerConfig::default()).unwrap();
            let b = sharded.answer_with_policy(mask, &policy, PlannerConfig::default()).unwrap();
            assert!(!b.is_partial(), "{label}: healthy store answered mask {mask:#b} partially");
            assert!(
                bit_identical(&a.cuboid, &b.cuboid),
                "{label}: mask {mask:#b} differs under {}",
                policy.describe()
            );
        }
    }
}

/// Builds both stores over `facts` (singleton views materialized, like the
/// maintenance suite) and runs the differential for one router/N pair.
fn differential(label: &str, facts: &FactInput, n: usize, router: ShardRouter) {
    let selected: Vec<u32> = (0..facts.dim_count()).map(|d| 1u32 << d).collect();
    let unsharded = SharedViewStore::build(facts, &selected, CacheConfig::default()).unwrap();
    let sharded =
        ShardedViewStore::build(facts, &selected, router.clone(), n, CacheConfig::default())
            .unwrap();
    assert_eq!(sharded.shard_count(), n, "{label}");
    assert_equivalent(&unsharded, &sharded, &format!("{label} n={n} router={router:?}"));
}

fn all_generators() -> Vec<(&'static str, FactInput)> {
    let retail = retail::generate(&RetailConfig {
        products: 8,
        categories: 3,
        cities: 2,
        stores_per_city: 2,
        days: 15,
        rows: 600,
        seed: 11,
    });
    let census =
        census::generate(&CensusConfig { states: 3, counties_per_state: 3, rows: 800, seed: 12 });
    let census_obj = census
        .micro
        .summarize(
            &["state", "sex", "race"],
            Some("income"),
            SummaryFunction::Sum,
            MeasureKind::Flow,
        )
        .unwrap();
    let stocks = stocks::generate(&StocksConfig { stocks: 6, industries: 2, weeks: 3, seed: 13 });
    let hmo = hmo::generate(&HmoConfig { hospitals: 3, months: 4, rows: 500, seed: 14 });
    let resources = resources::generate(&ResourcesConfig {
        basins: 2,
        rivers_per_basin: 2,
        stations_per_river: 2,
        months: 6,
        seed: 15,
    });
    vec![
        ("retail", integer_facts(&retail.object)),
        ("census", integer_facts(&census_obj)),
        ("stocks", integer_facts(&stocks.object)),
        ("hmo", integer_facts(&hmo.object)),
        ("resources", integer_facts(&resources.object)),
    ]
}

/// Deterministic integer workload for the chaos and delta properties.
fn synthetic(seed: u64, rows: usize, cards: &[usize]) -> FactInput {
    let mut f = FactInput::new(cards).unwrap();
    let mut x = seed.wrapping_mul(0x9E37_79B9).max(1);
    for _ in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let coords: Vec<u32> =
            cards.iter().enumerate().map(|(d, &c)| ((x >> (8 * d)) % c as u64) as u32).collect();
        f.push(&coords, (x % 100) as f64).unwrap();
    }
    f
}

/// Quick-mode slice: one generator, N=2, both router families.
#[test]
fn quick_sharded_equals_unsharded_n2() {
    let retail = retail::generate(&RetailConfig {
        products: 8,
        categories: 3,
        cities: 2,
        stores_per_city: 2,
        days: 15,
        rows: 600,
        seed: 11,
    });
    let facts = integer_facts(&retail.object);
    for router in routers(facts.cards(), 2) {
        differential("retail-quick", &facts, 2, router);
    }
}

/// The headline property: every generator, every policy, N ∈ {1,2,4,7},
/// hash and range routers — sharded is bit-identical to unsharded.
#[test]
fn sharded_equals_unsharded_across_generators_policies_and_routers() {
    for (label, facts) in all_generators() {
        for n in [1usize, 2, 4, 7] {
            for router in routers(facts.cards(), n) {
                differential(label, &facts, n, router);
            }
        }
    }
}

/// Routed delta maintenance: applying batches through the sharded path
/// equals an unsharded store over the same rows, after every batch —
/// including batches introducing previously-unseen coordinates (lattice
/// growth must stay in lockstep across shards).
#[test]
fn sharded_delta_maintenance_matches_unsharded() {
    let cards = [12usize, 6, 4];
    let grown = [14usize, 6, 4];
    let facts = synthetic(5, 400, &cards);
    let selected = [0b011u32, 0b101];
    let unsharded = SharedViewStore::build(&facts, &selected, CacheConfig::default()).unwrap();
    let sharded = ShardedViewStore::build(
        &facts,
        &selected,
        ShardRouter::Hash { dim: 0 },
        4,
        CacheConfig::default(),
    )
    .unwrap();
    for batch in 0..3u64 {
        // The last batch redeclares a wider card on dim 0: growth path.
        let delta_cards = if batch == 2 { &grown[..] } else { &cards[..] };
        let delta = synthetic(100 + batch, 50, delta_cards);
        let ra = unsharded.apply_delta(&delta).unwrap();
        let rb = sharded.apply_delta(&delta).unwrap();
        assert_eq!(rb.rows, 50, "batch {batch}");
        assert_eq!(rb.per_shard.len(), 4, "batch {batch}");
        assert_eq!(ra.rows, rb.rows, "batch {batch}: row accounting diverged from unsharded");
        assert_equivalent(&unsharded, &sharded, &format!("delta batch {batch}"));
    }
}

/// A rejected batch (wrong arity) must reach no shard: the sharded store
/// keeps answering exactly as before.
#[test]
fn rejected_sharded_delta_mutates_nothing() {
    let facts = synthetic(9, 300, &[10, 5, 3]);
    let sharded = ShardedViewStore::build(
        &facts,
        &[],
        ShardRouter::Hash { dim: 1 },
        3,
        CacheConfig::default(),
    )
    .unwrap();
    let before = sharded.answer(0b011).unwrap();
    let g0 = sharded.generation();
    let bad = synthetic(10, 20, &[10, 5]);
    assert!(sharded.apply_delta(&bad).is_err());
    assert_eq!(sharded.generation(), g0, "a rejected batch must publish nothing");
    let after = sharded.answer(0b011).unwrap();
    assert!(bit_identical(&before.cuboid, &after.cuboid));
}

/// 120-seed dead-shard chaos: kill a random proper subset of shards; the
/// answer must be partial with *exactly* the killed shards' bits, and its
/// cells must be bit-identical to an unsharded store holding only the
/// surviving shards' rows — the "never silently wrong" oracle.
#[test]
fn quick_dead_shard_chaos_masks_are_exact() {
    dead_shard_chaos(0..12);
}

#[test]
fn dead_shard_chaos_masks_are_exact_120_seeds() {
    dead_shard_chaos(0..120);
}

fn dead_shard_chaos(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let mut x = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).max(1);
        let mut next = |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        let n = 2 + next(6) as usize; // 2..=7 shards
        let facts = synthetic(seed.wrapping_add(1000), 150 + next(150) as usize, &[16, 5, 3]);
        let router = if next(2) == 0 {
            ShardRouter::Hash { dim: next(3) as usize }
        } else {
            let bounds: Vec<u32> = (1..n).map(|i| (i * 16 / n) as u32).collect();
            ShardRouter::Range { dim: 0, bounds }
        };
        let sharded =
            ShardedViewStore::build(&facts, &[0b011], router.clone(), n, CacheConfig::default())
                .unwrap();
        // Kill a random proper, non-empty subset.
        let kill_count = 1 + next(n as u64 - 1) as usize;
        let mut killed = vec![false; n];
        let mut remaining = kill_count;
        while remaining > 0 {
            let i = next(n as u64) as usize;
            if !killed[i] {
                killed[i] = true;
                remaining -= 1;
            }
        }
        let mut expected_mask = 0u32;
        for (i, &k) in killed.iter().enumerate() {
            if k {
                sharded.kill_shard(i).unwrap();
                expected_mask |= 1 << i;
            }
        }
        // The survivors-only oracle: an unsharded store over rows the
        // router assigns to surviving shards.
        let mut alive = FactInput::new(facts.cards()).unwrap();
        for row in 0..facts.len() {
            let coords = facts.coords(row);
            if !killed[router.route(&coords, n)] {
                alive.push(&coords, facts.measure()[row]).unwrap();
            }
        }
        let oracle = SharedViewStore::build(&alive, &[0b011], CacheConfig::default()).unwrap();
        for mask in [0b000u32, 0b001, 0b011, 0b111] {
            let ans = sharded.answer(mask).unwrap();
            assert!(ans.is_partial(), "seed {seed}: dead shards must mark the answer partial");
            assert_eq!(
                ans.missing_shards, expected_mask,
                "seed {seed} mask {mask:#b}: wrong missing-shard mask"
            );
            assert_eq!(ans.failed.len(), kill_count, "seed {seed}: typed error per dead shard");
            let want = oracle.answer(mask).unwrap();
            assert!(
                bit_identical(&want.cuboid, &ans.cuboid),
                "seed {seed} mask {mask:#b}: partial answer differs from survivors-only oracle"
            );
        }
        // Healing restores the complete answer.
        sharded.heal().unwrap();
        let healed = sharded.answer(0b011).unwrap();
        assert!(!healed.is_partial(), "seed {seed}: heal must revive every shard");
    }
}

/// Filtered-scatter differential: `answer_filtered` under every policy
/// must match an unsharded store built over only the rows the filters
/// admit — and a filter on the routing dimension must prune the scatter
/// to exactly the owning shards, without changing a single bit of the
/// answer. Pruned shards are proven empty, not missing: the answer stays
/// complete.
#[test]
fn quick_filtered_scatter_prunes_and_stays_exact() {
    use statcube::core::plan::CodedPredicate;
    let cards = [16usize, 5, 3];
    let facts = synthetic(21, 500, &cards);
    let n = 4usize;
    let routers =
        [ShardRouter::Hash { dim: 0 }, ShardRouter::Range { dim: 0, bounds: vec![4, 8, 12] }];
    let filter_sets: Vec<Vec<CodedPredicate>> = vec![
        // A point slice on the router dimension: prunes to one shard.
        vec![CodedPredicate { dim: 0, allowed: vec![6] }],
        // A two-value slice on the router dimension.
        vec![CodedPredicate { dim: 0, allowed: vec![2, 13] }],
        // A slice on a non-router dimension: no pruning, still exact.
        vec![CodedPredicate { dim: 2, allowed: vec![1] }],
        // A conjunction across both.
        vec![
            CodedPredicate { dim: 0, allowed: vec![3, 9, 11] },
            CodedPredicate { dim: 1, allowed: vec![0, 4] },
        ],
    ];
    for router in routers {
        let selected: Vec<u32> = (0..facts.dim_count()).map(|d| 1u32 << d).collect();
        let sharded =
            ShardedViewStore::build(&facts, &selected, router.clone(), n, CacheConfig::default())
                .unwrap();
        for filters in &filter_sets {
            // Oracle: an unsharded store over only the admitted rows.
            let mut admitted = FactInput::new(facts.cards()).unwrap();
            for row in 0..facts.len() {
                let coords = facts.coords(row);
                if filters.iter().all(|f| f.allowed.contains(&coords[f.dim])) {
                    admitted.push(&coords, facts.measure()[row]).unwrap();
                }
            }
            let oracle =
                SharedViewStore::build(&admitted, &selected, CacheConfig::default()).unwrap();
            // The shards a router-dimension filter leaves live.
            let expected_pruned: u32 = filters
                .iter()
                .find(|f| f.dim == router.dim())
                .map(|f| {
                    let mut live = 0u32;
                    for &v in &f.allowed {
                        live |= 1 << router.route_coord(v, n);
                    }
                    ((1u32 << n) - 1) & !live
                })
                .unwrap_or(0);
            for policy in policies() {
                for mask in [0b000u32, 0b010, 0b101, 0b111] {
                    let want =
                        oracle.answer_with_policy(mask, &policy, PlannerConfig::default()).unwrap();
                    let got = sharded
                        .answer_filtered(mask, filters, &policy, PlannerConfig::default())
                        .unwrap();
                    assert!(
                        !got.is_partial(),
                        "router={router:?} mask={mask:#b}: pruned shards must not read as missing"
                    );
                    assert_eq!(
                        got.pruned_shards, expected_pruned,
                        "router={router:?} mask={mask:#b}: wrong pruned-shard mask"
                    );
                    assert!(
                        bit_identical(&want.cuboid, &got.cuboid),
                        "router={router:?} mask={mask:#b} filters={filters:?}: filtered answer \
                         differs from admitted-rows oracle under {}",
                        policy.describe()
                    );
                }
            }
        }
        // An empty allowed set is a valid (vacuous) slice, not an error.
        let empty = sharded
            .answer_filtered(
                0b111,
                &[CodedPredicate { dim: 0, allowed: vec![] }],
                &PrivacyPolicy::none(),
                PlannerConfig::default(),
            )
            .unwrap();
        assert!(empty.cuboid.is_empty(), "router={router:?}: empty slice must yield no cells");
        assert!(!empty.is_partial(), "router={router:?}: empty slice is complete, not partial");
    }
}

/// Satellite differential for the chunked cold scan: a store whose first
/// (cold) reads stream sealed pages through the `storage::chunks` state
/// kernels must agree bit-for-bit with one whose decoded cache was warmed
/// first (the dense derive path), on every mask and under suppression.
#[test]
fn quick_chunked_cold_scan_matches_dense_derivation() {
    use statcube::cube::query::ViewStore;
    for (label, facts) in all_generators() {
        let selected: Vec<u32> = (0..facts.dim_count()).map(|d| 1u32 << d).collect();
        let cold = ViewStore::build(&facts, &selected).unwrap();
        let warm = ViewStore::build(&facts, &selected).unwrap();
        for mask in warm.materialized() {
            // Identity loads decode and warm the dense cache.
            warm.answer(mask).unwrap();
        }
        for policy in [PrivacyPolicy::none(), PrivacyPolicy::suppress(3)] {
            for mask in 0..=cold.lattice().top() {
                let a = cold.answer_with_policy(mask, &policy, PlannerConfig::default()).unwrap();
                let b = warm.answer_with_policy(mask, &policy, PlannerConfig::default()).unwrap();
                assert!(
                    bit_identical(&a.cuboid, &b.cuboid),
                    "{label}: cold streamed answer for {mask:#b} differs from dense path"
                );
            }
        }
    }
}
