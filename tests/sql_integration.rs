//! Cross-crate integration: the SQL layer must agree with the cube
//! engines and the operator algebra on the same data.

use statcube::cube::cube_op::compute_shared;
use statcube::cube::input::FactInput;
use statcube::sql::{execute_str, expand_cube_to_unions, parse};
use statcube::workload::retail::{generate, RetailConfig};

fn retail() -> statcube::workload::retail::Retail {
    generate(&RetailConfig {
        products: 15,
        categories: 5,
        cities: 3,
        stores_per_city: 2,
        days: 20,
        rows: 6_000,
        seed: 31,
    })
}

#[test]
fn sql_cube_matches_cube_engine() {
    let retail = retail();
    let rs = execute_str(
        &retail.object,
        "SELECT SUM(\"quantity sold\") FROM sales GROUP BY CUBE(product, store, day)",
    )
    .unwrap();
    let facts = FactInput::from_object(&retail.object).unwrap();
    let cube = compute_shared(&facts);
    assert_eq!(rs.rows.len(), cube.total_cells());
    // Spot-check every row against the engine.
    for row in &rs.rows {
        let pattern: Vec<Option<u32>> = vec![
            row.group[0].as_deref().map(|p| {
                retail.object.schema().dimension("product").unwrap().member_id(p).unwrap()
            }),
            row.group[1]
                .as_deref()
                .map(|s| retail.object.schema().dimension("store").unwrap().member_id(s).unwrap()),
            row.group[2]
                .as_deref()
                .map(|d| retail.object.schema().dimension("day").unwrap().member_id(d).unwrap()),
        ];
        let state = cube.get_all(&pattern).unwrap_or_else(|| panic!("missing {pattern:?}"));
        let sql_value = row.values[0].unwrap();
        assert!((state.sum - sql_value).abs() < 1e-6, "engine {} vs sql {sql_value}", state.sum);
    }
}

#[test]
fn sql_where_matches_algebra_select() {
    let retail = retail();
    let store = retail.stores[0].clone();
    let rs = execute_str(
        &retail.object,
        &format!(
            "SELECT SUM(\"quantity sold\") FROM sales WHERE store = '{store}' GROUP BY product"
        ),
    )
    .unwrap();
    let filtered = retail.object.select("store", &[&store]).unwrap();
    let by_product = filtered.project("store").unwrap().project("day").unwrap();
    assert_eq!(rs.rows.len(), by_product.cell_count());
    for row in &rs.rows {
        let p = row.group[0].as_deref().unwrap();
        let expected = by_product.get(&[p]).unwrap().unwrap();
        assert!((row.values[0].unwrap() - expected).abs() < 1e-6);
    }
}

#[test]
fn cube_query_equals_its_union_expansion() {
    let retail = retail();
    let sql = "SELECT SUM(\"quantity sold\"), COUNT(*) FROM sales GROUP BY CUBE(store, day)";
    let cube_rs = execute_str(&retail.object, sql).unwrap();
    let unions = expand_cube_to_unions(&parse(sql).unwrap()).unwrap();
    let mut union_rows = Vec::new();
    for u in &unions {
        union_rows.extend(execute_str(&retail.object, u).unwrap().rows);
    }
    assert_eq!(cube_rs.rows.len(), union_rows.len());
    // Compare as multisets of (group-with-ALL, values) — the expansions
    // have shorter group vectors, so render them against the CUBE order.
    let mut cube_keys: Vec<String> =
        cube_rs.rows.iter().map(|r| format!("{:?}{:?}", r.group, r.values)).collect();
    cube_keys.sort();
    // Expansion groupings lack the ALL columns; rebuild them per grouping.
    let mut expansion_keys: Vec<String> = Vec::new();
    for (i, u) in unions.iter().enumerate() {
        let part = execute_str(&retail.object, u).unwrap();
        // unions are emitted finest-first over masks (rev order).
        let mask = (unions.len() - 1 - i) as u32;
        for row in &part.rows {
            let mut group: Vec<Option<std::sync::Arc<str>>> = Vec::new();
            let mut cursor = 0;
            for bit in 0..2 {
                if mask & (1 << bit) != 0 {
                    group.push(row.group[cursor].clone());
                    cursor += 1;
                } else {
                    group.push(None);
                }
            }
            expansion_keys.push(format!("{:?}{:?}", group, row.values));
        }
    }
    expansion_keys.sort();
    assert_eq!(cube_keys, expansion_keys);
}

#[test]
fn sql_count_star_equals_transaction_count() {
    let retail = retail();
    let rs = execute_str(&retail.object, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0].values[0], Some(6_000.0));
}
