//! End-to-end integration: workload → statistical-object algebra → cube
//! engines → physical storage, checking that every layer reports the same
//! numbers.

use statcube::core::measure::SummaryFunction;
use statcube::core::ops;
use statcube::cube::cube_op::compute_shared;
use statcube::cube::input::FactInput;
use statcube::storage::chunked::ChunkedArray;
use statcube::storage::header::HeaderCompressed;
use statcube::storage::linear::LinearizedArray;
use statcube::workload::retail::{generate, RetailConfig};

fn retail_cfg() -> RetailConfig {
    RetailConfig {
        products: 30,
        categories: 6,
        cities: 3,
        stores_per_city: 3,
        days: 30,
        rows: 8_000,
        seed: 99,
    }
}

#[test]
fn every_layer_agrees_on_the_grand_total() {
    let retail = generate(&retail_cfg());
    let obj = &retail.object;
    let expected = obj.grand_total(0).unwrap();

    // Operator algebra: project everything away.
    let algebra =
        ops::s_project(&ops::s_project(&obj.clone(), "product").unwrap(), "store").unwrap();
    // `day` is temporal but quantity sold is a flow: summable.
    let algebra = ops::s_project(&algebra, "day").unwrap();
    let (_, states) = algebra.cells().next().unwrap();
    assert!((states[0].sum - expected).abs() < 1e-6);

    // CUBE apex.
    let facts = FactInput::from_object(obj).unwrap();
    let cube = compute_shared(&facts);
    let apex = cube.get_all(&[None, None, None]).unwrap();
    assert!((apex.sum - expected).abs() < 1e-6);

    // Dense linearization.
    let dense = LinearizedArray::from_object(obj, 0, SummaryFunction::Sum).unwrap();
    let dense_total: f64 = dense.dense_values().iter().filter(|v| !v.is_nan()).sum();
    assert!((dense_total - expected).abs() < 1e-6);

    // Header compression of the linearization.
    let compressed = HeaderCompressed::from_dense(dense.dense_values());
    assert!((compressed.range_sum(0, dense.len()) - expected).abs() < 1e-6);

    // Chunked storage, full-space range query.
    let chunked = ChunkedArray::from_linearized(&dense, &[8, 4, 8], 4096).unwrap();
    let dims = chunked.dims().to_vec();
    let (chunk_total, _) = chunked.range_sum(&vec![0; dims.len()], &dims).unwrap();
    assert!((chunk_total - expected).abs() < 1e-6);
}

#[test]
fn rollup_matches_cube_cuboid() {
    let retail = generate(&retail_cfg());
    let obj = &retail.object;
    // Roll up to (store) via algebra…
    let by_store =
        ops::s_project(&ops::s_project(&obj.clone(), "product").unwrap(), "day").unwrap();
    // …and via the CUBE's {store} cuboid.
    let facts = FactInput::from_object(obj).unwrap();
    let cube = compute_shared(&facts);
    let cuboid = cube.cuboid(0b010).unwrap();
    assert_eq!(by_store.cell_count(), cuboid.len());
    // `FactInput::from_object` turns each populated cell into one fact, so
    // cube counts are populated-cell counts, not transaction counts —
    // compute the expected cell count per store from the base object.
    let mut cells_per_store = std::collections::HashMap::new();
    for (coords, _) in obj.cells() {
        *cells_per_store.entry(coords[1]).or_insert(0u64) += 1;
    }
    for (coords, states) in by_store.cells() {
        let key = vec![coords[0]];
        let cell = &cuboid[&key.into_boxed_slice()];
        assert!((cell.sum - states[0].sum).abs() < 1e-6);
        assert_eq!(cell.count, cells_per_store[&coords[0]]);
    }
}

#[test]
fn storage_point_lookups_match_object_cells() {
    let retail = generate(&retail_cfg());
    let obj = &retail.object;
    let dense = LinearizedArray::from_object(obj, 0, SummaryFunction::Sum).unwrap();
    let compressed = HeaderCompressed::from_dense(dense.dense_values());
    let chunked = ChunkedArray::from_linearized(&dense, &[7, 5, 9], 4096).unwrap();
    let mut checked = 0;
    for (coords, states) in obj.cells() {
        let idx: Vec<usize> = coords.iter().map(|&c| c as usize).collect();
        let expected = states[0].sum;
        assert_eq!(dense.get(&idx).unwrap(), Some(expected));
        assert_eq!(chunked.get(&idx).unwrap(), Some(expected));
        let off = dense.offset_of(&idx).unwrap();
        assert_eq!(compressed.get(off), Some(expected));
        checked += 1;
        if checked > 500 {
            break;
        }
    }
    assert!(checked > 100);
}

#[test]
fn slices_and_rollups_compose_across_hierarchies() {
    let retail = generate(&retail_cfg());
    let obj = &retail.object;
    // Roll up to (category, city, month), then slice one month and verify
    // against a filtered recomputation from the base.
    let coarse = obj
        .roll_up("product", "category")
        .unwrap()
        .roll_up("store", "city")
        .unwrap()
        .roll_up("day", "month")
        .unwrap();
    let sliced = coarse.slice("day", "m00").unwrap();

    // Recompute: select days of month 0 at the base, project day, roll up.
    let first_month: Vec<&str> =
        retail.days[..30.min(retail.days.len())].iter().map(String::as_str).collect();
    let base = ops::s_select(obj, "day", &first_month).unwrap();
    let base = ops::s_project_unchecked(&base, "day").unwrap();
    let base = base.roll_up("product", "category").unwrap().roll_up("store", "city").unwrap();
    assert_eq!(sliced.cell_count(), base.cell_count());
    for (coords, states) in sliced.cells() {
        let names = sliced.schema().names_of(coords).unwrap();
        let v = base.get(&names).unwrap().unwrap();
        assert!((states[0].sum - v).abs() < 1e-6);
    }
}
