//! Rewrite-pass safety: the planner's rewrites must never change answers.
//!
//! Two angles, both over all five workload generators (census, retail,
//! stocks, HMO, resources):
//!
//! 1. **Config ablations on the core plan layer** — planning the same
//!    logical plan with each rewrite pass disabled
//!    ([`PlannerConfig`]) yields cell-identical executions.
//! 2. **Cross-path identity on the SQL front-ends** (single-measure
//!    objects) — the algebraic interpreter, the physical path (default
//!    and ablated), and the cached session all return the same rows.

use statcube::core::object::StatisticalObject;
use statcube::core::ops;
use statcube::core::plan::{
    self, AggRequest, GroupingSpec, ObjectSource, Plan, PlanPredicate, Planner, PlannerConfig,
};
use statcube::cube::cache::CacheConfig;
use statcube::sql::prelude::*;
use statcube::sql::{execute_physical_with_options, CachedSession};
use statcube::workload::prelude::*;
use statcube::workload::{census, hmo, resources, retail, stocks};

/// Every config variant: all passes on, then each rewrite disabled.
fn configs() -> Vec<(&'static str, PlannerConfig)> {
    let on = PlannerConfig::default();
    vec![
        ("default", on),
        ("no-summarizability", PlannerConfig { summarizability: false, ..on }),
        ("no-lattice", PlannerConfig { lattice: false, ..on }),
        ("no-pushdown", PlannerConfig { pushdown: false, ..on }),
    ]
}

/// Plans and executes `plan` over `obj` under `config`, returning a
/// printable fingerprint of every grouping set's cells (sorted, with full
/// aggregation state), so ablations can be compared exactly.
fn fingerprint(obj: &StatisticalObject, plan: &Plan, config: PlannerConfig) -> String {
    let planned = Planner::for_object(obj.schema())
        .with_config(config)
        .plan(plan)
        .expect("plan must be valid under every config");
    // Leaf program: predicates apply before the scan.
    let mut base = obj.clone();
    for p in &planned.leaf_predicates {
        base = ops::s_select_ids(&base, p.dim, &p.allowed).unwrap();
    }
    for r in &planned.leaf_rollups {
        base = ops::s_aggregate(&base, &r.dim_name, &r.level).unwrap();
    }
    for (d, dim) in obj.schema().dimensions().iter().enumerate() {
        if planned.base_mask() >> d & 1 == 0 {
            base = ops::s_project_unchecked(&base, dim.name()).unwrap();
        }
    }
    let src = ObjectSource::new(&base, planned.base_mask()).unwrap();
    let exec = plan::execute(&planned, &src).unwrap();
    let mut out = String::new();
    for set in &exec.sets {
        // Sums are rounded to 9 significant digits: cell merge order
        // follows HashMap iteration, so the last few ulps of a float sum
        // are not stable between executions.
        let block = &set.cells;
        let mut cells: Vec<String> = (0..block.len())
            .map(|i| {
                let states: Vec<String> = block
                    .states_row(i)
                    .iter()
                    .map(|s| {
                        format!("(n={} sum={:.8e} min={} max={})", s.count, s.sum, s.min, s.max)
                    })
                    .collect();
                format!("{:?}:{:?}:{}", block.key(i), states, block.is_suppressed(i))
            })
            .collect();
        cells.sort();
        out.push_str(&format!("target {:#b}\n{}\n", set.target, cells.join("\n")));
    }
    out
}

/// Asserts every ablation matches the default-config execution for a CUBE
/// with a predicate and a plain ROLLUP over the first two dimensions.
fn ablations_preserve_answers(obj: &StatisticalObject, label: &str) {
    let dims: Vec<String> = obj.schema().dimensions().iter().map(|d| d.name().to_owned()).collect();
    let aggs: Vec<AggRequest> = obj
        .schema()
        .measures()
        .iter()
        .enumerate()
        .map(|(i, m)| AggRequest {
            func: obj.schema().function(i),
            measure: Some(m.name().to_owned()),
            label: m.name().to_owned(),
        })
        .collect();
    let member = obj.schema().dimensions()[0].members().values().next().unwrap().to_owned();
    let plans = [
        Plan::scan(obj.schema().name())
            .select(vec![PlanPredicate::eq(dims[0].clone(), member)])
            .grouping_sets(dims[..2].to_vec(), GroupingSpec::Cube, aggs.clone()),
        Plan::scan(obj.schema().name()).grouping_sets(
            dims[..2].to_vec(),
            GroupingSpec::Rollup,
            aggs.clone(),
        ),
    ];
    for (pi, p) in plans.iter().enumerate() {
        let reference = fingerprint(obj, p, PlannerConfig::default());
        assert!(!reference.is_empty());
        for (name, config) in configs() {
            assert_eq!(
                fingerprint(obj, p, config),
                reference,
                "{label}: plan {pi} diverged under {name}"
            );
        }
    }
}

#[test]
fn ablations_preserve_answers_on_all_five_workloads() {
    let retail = retail::generate(&RetailConfig {
        products: 8,
        categories: 3,
        cities: 2,
        stores_per_city: 2,
        days: 15,
        rows: 600,
        seed: 11,
    });
    ablations_preserve_answers(&retail.object, "retail");

    let census =
        census::generate(&CensusConfig { states: 3, counties_per_state: 3, rows: 800, seed: 12 });
    let census_obj = census
        .micro
        .summarize(
            &["state", "sex", "race"],
            Some("income"),
            statcube::core::measure::SummaryFunction::Sum,
            statcube::core::measure::MeasureKind::Flow,
        )
        .unwrap();
    ablations_preserve_answers(&census_obj, "census");

    let stocks = stocks::generate(&StocksConfig { stocks: 6, industries: 2, weeks: 3, seed: 13 });
    ablations_preserve_answers(&stocks.object, "stocks");

    let hmo = hmo::generate(&HmoConfig { hospitals: 3, months: 4, rows: 500, seed: 14 });
    ablations_preserve_answers(&hmo.object, "hmo");

    let resources = resources::generate(&ResourcesConfig {
        basins: 2,
        rivers_per_basin: 2,
        stations_per_river: 2,
        months: 6,
        seed: 15,
    });
    ablations_preserve_answers(&resources.object, "resources");
}

/// Sorted, printable rows for cross-path comparison.
fn row_key(rs: &statcube::sql::ResultSet) -> Vec<String> {
    // Values rounded to 9 significant digits: float sums accumulate in
    // HashMap order, which differs between paths.
    let mut v: Vec<String> = rs
        .rows
        .iter()
        .map(|r| {
            let vals: Vec<String> = r
                .values
                .iter()
                .map(|v| v.map_or("NULL".to_owned(), |x| format!("{x:.8e}")))
                .collect();
            format!("{:?} {:?} {}", r.group, vals, r.suppressed)
        })
        .collect();
    v.sort();
    v
}

/// The algebraic interpreter is the reference; the physical path (per
/// ablation) and the cached session (cold + warm) must match it.
fn cross_path_identity(obj: &StatisticalObject, label: &str) {
    let dims: Vec<String> = obj.schema().dimensions().iter().map(|d| d.name().to_owned()).collect();
    let measure = obj.schema().measures()[0].name().to_owned();
    let from = obj.schema().name().to_owned();
    let member = obj.schema().dimensions()[1].members().values().next().unwrap().to_owned();
    // SUM only: the physical fact table is at the macro-data grain, so
    // COUNT/AVG/MIN/MAX intentionally read cells rather than micro records
    // (see the statcube-sql physical module docs).
    let sum = AggExpr { func: statcube::core::measure::SummaryFunction::Sum, arg: Some(measure) };
    let queries = [
        SqlQuery {
            select: vec![sum.clone()],
            from: from.clone(),
            filters: vec![],
            grouping: Grouping::Cube(dims[..2].to_vec()),
        },
        SqlQuery {
            select: vec![sum.clone()],
            from: from.clone(),
            filters: vec![],
            grouping: Grouping::Rollup(dims[..2].to_vec()),
        },
        SqlQuery {
            select: vec![sum.clone()],
            from: from.clone(),
            filters: vec![Predicate { column: dims[1].clone(), value: member, negated: false }],
            grouping: Grouping::Plain(vec![dims[0].clone()]),
        },
        SqlQuery { select: vec![sum], from, filters: vec![], grouping: Grouping::None },
    ];
    let policy = statcube::core::plan::PrivacyPolicy::none();
    let session = CachedSession::new(obj, CacheConfig::default()).unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let reference = row_key(&execute(obj, q).unwrap());
        for (name, config) in configs() {
            let phys = execute_physical_with_options(obj, q, &policy, config).unwrap();
            assert_eq!(row_key(&phys.result), reference, "{label}: q{qi} physical/{name}");
        }
        let cold = session.execute(q).unwrap();
        assert_eq!(row_key(&cold.result), reference, "{label}: q{qi} cached cold");
        let warm = session.execute(q).unwrap();
        assert_eq!(row_key(&warm.result), reference, "{label}: q{qi} cached warm");
    }
}

#[test]
fn all_query_paths_agree_on_single_measure_workloads() {
    let retail = retail::generate(&RetailConfig {
        products: 6,
        categories: 2,
        cities: 2,
        stores_per_city: 2,
        days: 12,
        rows: 400,
        seed: 21,
    });
    cross_path_identity(&retail.object, "retail");

    let hmo = hmo::generate(&HmoConfig { hospitals: 3, months: 3, rows: 300, seed: 22 });
    cross_path_identity(&hmo.object, "hmo");

    let census =
        census::generate(&CensusConfig { states: 3, counties_per_state: 2, rows: 500, seed: 23 });
    let census_obj = census
        .micro
        .summarize(
            &["state", "sex", "race"],
            Some("income"),
            statcube::core::measure::SummaryFunction::Sum,
            statcube::core::measure::MeasureKind::Flow,
        )
        .unwrap();
    cross_path_identity(&census_obj, "census");
}
