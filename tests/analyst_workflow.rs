//! An end-to-end "analyst session" integration test: file datasets in the
//! SUBJECT catalog, find one by category attribute, navigate it with
//! roll-up/drill-down, pose an automatic-aggregation query, render a 2-D
//! table with marginals, and realign a classification — the full
//! conceptual-modeling surface of the paper in one flow.

use statcube::core::auto_agg::{self, Query};
use statcube::core::catalog::Catalog;
use statcube::core::matching::{realign, IntervalClassification};
use statcube::core::ops::navigator::Navigator;
use statcube::core::prelude::*;
use statcube::core::table2d::Table2D;
use statcube::workload::hmo::{self, HmoConfig};
use statcube::workload::resources::{self, ResourcesConfig};
use statcube::workload::retail::{self, RetailConfig};

fn small_retail() -> retail::Retail {
    retail::generate(&RetailConfig {
        products: 12,
        categories: 3,
        cities: 2,
        stores_per_city: 2,
        days: 10,
        rows: 2_000,
        seed: 17,
    })
}

#[test]
fn catalog_to_navigation_to_query() {
    let retail = small_retail();
    let hmo = hmo::generate(&HmoConfig { hospitals: 3, months: 4, rows: 400, seed: 2 });
    let rivers = resources::generate(&ResourcesConfig::default());

    let mut catalog = Catalog::new();
    catalog.insert(&["business", "retail"], "sales", retail.object.clone()).unwrap();
    catalog.insert(&["health"], "visit costs", hmo.object.clone()).unwrap();
    catalog.insert(&["environment"], "river monitoring", rivers.object.clone()).unwrap();
    assert_eq!(catalog.len(), 3);

    // Find the dataset with a `product` breakdown, fetch it, navigate.
    let hits = catalog.find_by_category("product");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].to_path_string(), "business/retail/sales");
    let sales = catalog.get(&["business", "retail"], "sales").unwrap();

    let mut nav = Navigator::new(sales.clone());
    nav.roll_up("product").unwrap();
    nav.roll_up("store").unwrap();
    let view = nav.view().unwrap();
    assert_eq!(view.schema().dimension("product").unwrap().cardinality(), 3);
    assert_eq!(view.schema().dimension("store").unwrap().cardinality(), 2);
    assert_eq!(view.grand_total(0), sales.grand_total(0));
    nav.drill_down("product").unwrap();
    assert_eq!(nav.view().unwrap().schema().dimension("product").unwrap().cardinality(), 12);

    // Automatic aggregation on the rolled-up view: one circled category.
    let q = Query::new().at_level("product", "category", "cat00");
    let r = auto_agg::execute(sales, &q).unwrap();
    let scalar = r.scalar().unwrap();
    // Cross-check against the algebra.
    let by_cat = sales.roll_up("product", "category").unwrap();
    let expected = statcube::core::ops::s_select(&by_cat, "product", &["cat00"])
        .unwrap()
        .grand_total(0)
        .unwrap();
    assert!((scalar - expected).abs() < 1e-6);

    // Render the rolled-up view as a 2-D table with marginals.
    let table = Table2D::layout(&view, &["store"], &["product", "day"]).unwrap();
    assert!(table.marginals_consistent());
    let text = table.render();
    assert!(text.contains("cat00"));
    assert!(text.contains("total"));
}

#[test]
fn cross_source_merge_with_matching() {
    // Two "agencies" report water quality in different depth bins; realign
    // then union — the §5.7 workflow.
    let coarse = IntervalClassification::from_boundaries("coarse", &[0.0, 10.0, 30.0]).unwrap();
    let fine =
        IntervalClassification::from_boundaries("fine", &[0.0, 5.0, 10.0, 20.0, 30.0]).unwrap();

    let make = |classes: &IntervalClassification, values: &[f64], name: &str| {
        let schema = Schema::builder(name)
            .dimension(Dimension::categorical("depth", classes.labels()))
            .measure(SummaryAttribute::new("samples", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        for (label, &v) in classes.labels().iter().zip(values) {
            o.insert(&[label], v).unwrap();
        }
        o
    };
    let agency_a = make(&coarse, &[40.0, 60.0], "agency A");
    let agency_b = make(&fine, &[10.0, 12.0, 20.0, 18.0], "agency B");

    // Realign A onto B's bins, then S-union with state merging (disjoint
    // sample populations).
    let (a_on_fine, report) = realign(&agency_a, "depth", &coarse, &fine).unwrap();
    assert_eq!(report.to_owned().provenance.len(), 4);
    let merged = s_union(&a_on_fine, &agency_b, UnionPolicy::MergeStates).unwrap();
    let total = merged.grand_total(0).unwrap();
    assert!((total - (100.0 + 60.0)).abs() < 1e-9);
    // The [0,5) bin: half of A's 40 (uniform within [0,10)) plus B's 10.
    assert!((merged.get(&["0-5"]).unwrap().unwrap() - 30.0).abs() < 1e-9);
}

#[test]
fn non_strict_data_is_caught_at_every_entry_point() {
    // The HMO disease hierarchy must be refused by the algebra, the
    // navigator view, AND automatic aggregation.
    let hmo = hmo::generate(&HmoConfig { hospitals: 2, months: 2, rows: 200, seed: 5 });
    assert!(hmo.object.roll_up("disease", "category").is_err());
    let mut nav = Navigator::new(hmo.object.clone());
    nav.roll_up("disease").unwrap(); // cursor moves…
    assert!(nav.view().is_err()); // …but materializing the view refuses
    let q = Query::new().at_level("disease", "category", "cancer");
    assert!(auto_agg::execute(&hmo.object, &q).is_err());
}
