//! Golden EXPLAIN snapshots (wired into `ci.sh` quick mode).
//!
//! Every query path plans through `statcube-core::plan`, so the EXPLAIN
//! rendering — logical plan, the four rewrite passes, and the physical
//! grouping sets — is a contract. These snapshots fail on *unintended*
//! plan changes; when a planner change is intentional, update the golden
//! strings to the new output (print `sql::explain_str` for the queries
//! below and paste).

use statcube::core::dimension::Dimension;
use statcube::core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use statcube::core::object::StatisticalObject;
use statcube::core::plan::PrivacyPolicy;
use statcube::core::schema::Schema;
use statcube::sql;

/// The snapshot fixture: plans depend only on the schema, so the object
/// stays empty.
fn census() -> StatisticalObject {
    let schema = Schema::builder("census")
        .dimension(Dimension::spatial("state", ["AL", "CA"]))
        .dimension(Dimension::temporal("year", ["1990", "1991"]))
        .dimension(Dimension::categorical("sex", ["male", "female"]))
        .measure(SummaryAttribute::new("population", MeasureKind::Stock))
        .measure(SummaryAttribute::new("births", MeasureKind::Flow))
        .function(SummaryFunction::Sum)
        .build()
        .unwrap();
    StatisticalObject::empty(schema)
}

const GOLDEN: &[(&str, &str)] = &[
    (
        "SELECT SUM(births) FROM census",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=single, group=[], aggs=[SUM("births")]}
      Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 3 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b0 serves 1 grouping set(s)
  3. pushdown: nothing to move
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b0 ← scan 0b0; candidates: 0b0 (base)"#,
    ),
    (
        "SELECT SUM(births) FROM census GROUP BY state",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=single, group=[state], aggs=[SUM("births")]}
      Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 2 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b1 serves 1 grouping set(s)
  3. pushdown: nothing to move
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b1 ← scan 0b1; candidates: 0b1 (base)"#,
    ),
    (
        "SELECT SUM(births), COUNT(*) FROM census GROUP BY state, year",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=single, group=[state, year], aggs=[SUM("births"), COUNT(*)]}
      Scan{census}
rewrites
  1. summarizability: validated 2 aggregate(s) over 1 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b11 serves 1 grouping set(s)
  3. pushdown: nothing to move
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b11 ← scan 0b11; candidates: 0b11 (base)"#,
    ),
    (
        "SELECT SUM(births) FROM census WHERE sex = 'male' GROUP BY state",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=single, group=[state], aggs=[SUM("births")]}
      Select{sex = 'male'}
        Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 1 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b1 serves 1 grouping set(s)
  3. pushdown: 1 predicate(s) at the leaf scan
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b1 ← scan 0b1; candidates: 0b1 (base)"#,
    ),
    (
        "SELECT SUM(births) FROM census WHERE sex <> 'male' GROUP BY year",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=single, group=[year], aggs=[SUM("births")]}
      Select{sex <> 'male'}
        Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 2 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b10 serves 1 grouping set(s)
  3. pushdown: 1 predicate(s) at the leaf scan
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b10 ← scan 0b10; candidates: 0b10 (base)"#,
    ),
    (
        "SELECT SUM(births) FROM census GROUP BY CUBE(state, year)",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=cube, group=[state, year], aggs=[SUM("births")]}
      Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 3 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b11 serves 4 grouping set(s)
  3. pushdown: nothing to move
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b11 ← scan 0b11; candidates: 0b11 (base)
  target 0b10 ← scan 0b10; candidates: 0b11 (base)
  target 0b1 ← scan 0b1; candidates: 0b11 (base)
  target 0b0 ← scan 0b0; candidates: 0b11 (base)"#,
    ),
    (
        "SELECT SUM(births) FROM census GROUP BY ROLLUP(state, year, sex)",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=rollup, group=[state, year, sex], aggs=[SUM("births")]}
      Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 3 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b111 serves 4 grouping set(s)
  3. pushdown: nothing to move
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b111 ← scan 0b111; candidates: 0b111 (base)
  target 0b11 ← scan 0b11; candidates: 0b111 (base)
  target 0b1 ← scan 0b1; candidates: 0b111 (base)
  target 0b0 ← scan 0b0; candidates: 0b111 (base)"#,
    ),
    (
        "SELECT SUM(births) FROM census WHERE sex = 'male' GROUP BY CUBE(state, year)",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=cube, group=[state, year], aggs=[SUM("births")]}
      Select{sex = 'male'}
        Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 2 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b11 serves 4 grouping set(s)
  3. pushdown: 1 predicate(s) at the leaf scan
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b11 ← scan 0b11; candidates: 0b11 (base)
  target 0b10 ← scan 0b10; candidates: 0b11 (base)
  target 0b1 ← scan 0b1; candidates: 0b11 (base)
  target 0b0 ← scan 0b0; candidates: 0b11 (base)"#,
    ),
    (
        "SELECT AVG(population) FROM census GROUP BY sex",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=single, group=[sex], aggs=[AVG("population")]}
      Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 2 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b100 serves 1 grouping set(s)
  3. pushdown: nothing to move
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b100 ← scan 0b100; candidates: 0b100 (base)"#,
    ),
    (
        "SELECT COUNT(*) FROM census GROUP BY year, sex",
        r#"logical plan
  Restrict{policy=none}
    GroupingSets{spec=single, group=[year, sex], aggs=[COUNT(*)]}
      Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 1 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b110 serves 1 grouping set(s)
  3. pushdown: nothing to move
  4. privacy: policy none enforced on every grouping set
physical grouping sets
  target 0b110 ← scan 0b110; candidates: 0b110 (base)"#,
    ),
];

#[test]
fn explain_matches_the_golden_snapshots() {
    let o = census();
    for (sql_text, golden) in GOLDEN {
        let actual = sql::explain_str(&o, sql_text).unwrap();
        assert_eq!(
            actual.trim_end(),
            golden.trim_end(),
            "\nEXPLAIN drifted for:\n  {sql_text}\n\n--- expected ---\n{golden}\n--- actual ---\n{actual}\n"
        );
    }
}

#[test]
fn explain_renders_the_privacy_policy_in_the_restrict_barrier() {
    let o = census();
    let parsed = sql::parse("SELECT SUM(births) FROM census GROUP BY state").unwrap();
    let actual =
        sql::explain_with_policy(&o, &parsed, &PrivacyPolicy::suppress(2).with_tracker_guard())
            .unwrap();
    let golden = r#"logical plan
  Restrict{policy=suppress(k=2), tracker-guard}
    GroupingSets{spec=single, group=[state], aggs=[SUM("births")]}
      Scan{census}
rewrites
  1. summarizability: validated 1 aggregate(s) over 2 collapsed dimension(s); 0 roll-up(s) structurally checked
  2. lattice: one base projection at mask 0b1 serves 1 grouping set(s)
  3. pushdown: nothing to move
  4. privacy: policy suppress(k=2), tracker-guard enforced on every grouping set
physical grouping sets
  target 0b1 ← scan 0b1; candidates: 0b1 (base)"#;
    assert_eq!(actual.trim_end(), golden.trim_end());
}
