//! Property tests for the Fig 16 completeness homomorphism: for *arbitrary*
//! micro-data, relational algebra then summarization equals statistical
//! algebra on the macro-data, for every summary function.

use proptest::prelude::*;

use statcube::core::hierarchy::Hierarchy;
use statcube::core::measure::SummaryFunction;
use statcube::core::microdata::{
    homomorphism_aggregate, homomorphism_project, homomorphism_select, homomorphism_union,
    MicroTable,
};

const STATES: [&str; 4] = ["s0", "s1", "s2", "s3"];
const SEXES: [&str; 2] = ["m", "f"];
const RACES: [&str; 3] = ["a", "b", "c"];

fn micro_strategy(max_rows: usize) -> impl Strategy<Value = MicroTable> {
    proptest::collection::vec(
        (0usize..STATES.len(), 0usize..SEXES.len(), 0usize..RACES.len(), -1000i64..1000),
        0..max_rows,
    )
    .prop_map(|rows| {
        let mut t = MicroTable::new(&["state", "sex", "race"], &["v"]);
        for (s, x, r, v) in rows {
            t.push(&[STATES[s], SEXES[x], RACES[r]], &[v as f64]).unwrap();
        }
        t
    })
}

fn function_strategy() -> impl Strategy<Value = SummaryFunction> {
    prop_oneof![
        Just(SummaryFunction::Sum),
        Just(SummaryFunction::Count),
        Just(SummaryFunction::Avg),
        Just(SummaryFunction::Min),
        Just(SummaryFunction::Max),
    ]
}

/// The saved proptest shrink from `prop_homomorphism.proptest-regressions`
/// — an empty `MicroTable` unioned with a one-row table under `Sum` —
/// pinned as a named deterministic test so the case runs even when the
/// proptest pass is bypassed. `union_square_commutes` now assumes both
/// sides non-empty; this pin keeps the empty-side behavior itself covered.
#[test]
fn union_with_empty_side_pinned_regression() {
    let a = MicroTable::new(&["state", "sex", "race"], &["v"]);
    let mut b = MicroTable::new(&["state", "sex", "race"], &["v"]);
    b.push(&["s0", "m", "a"], &[0.0]).unwrap();
    for (lhs, rhs) in [(&a, &b), (&b, &a)] {
        let r = homomorphism_union(lhs, rhs, &["state", "race"], Some("v"), SummaryFunction::Sum);
        // summarize() of the empty side has no rows to populate its
        // dimension dictionaries, so the two squares legitimately disagree
        // — the homomorphism must report that as `Ok(false)` or a typed
        // error, never panic (the original shrink) and never claim success.
        assert_ne!(r.as_ref().ok(), Some(&true), "empty-side union cannot commute: {r:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn select_square_commutes(
        micro in micro_strategy(60),
        f in function_strategy(),
        state in 0usize..STATES.len(),
    ) {
        prop_assume!(!micro.is_empty());
        prop_assert!(homomorphism_select(
            &micro, &["state", "sex"], Some("v"), f, "state", STATES[state]
        ).unwrap());
    }

    #[test]
    fn project_square_commutes(
        micro in micro_strategy(60),
        f in function_strategy(),
    ) {
        prop_assume!(!micro.is_empty());
        prop_assert!(homomorphism_project(
            &micro, &["state", "sex", "race"], Some("v"), f, "race"
        ).unwrap());
        prop_assert!(homomorphism_project(
            &micro, &["state", "sex", "race"], Some("v"), f, "state"
        ).unwrap());
    }

    #[test]
    fn union_square_commutes(
        a in micro_strategy(40),
        b in micro_strategy(40),
        f in function_strategy(),
    ) {
        // summarize() needs at least one row to populate the dimension
        // dictionaries, on both sides of the union.
        prop_assume!(!a.is_empty() && !b.is_empty());
        prop_assert!(homomorphism_union(&a, &b, &["state", "race"], Some("v"), f).unwrap());
    }

    #[test]
    fn aggregate_square_commutes(
        micro in micro_strategy(60),
        f in function_strategy(),
        split in 1usize..STATES.len(),
    ) {
        prop_assume!(!micro.is_empty());
        // Random two-region partition of the states.
        let mut geo = Hierarchy::builder("geo").level("state").level("region");
        for (i, s) in STATES.iter().enumerate() {
            geo = geo.edge(s, if i < split { "east" } else { "west" });
        }
        let geo = geo.build().unwrap();
        prop_assert!(homomorphism_aggregate(
            &micro, &["state", "sex"], Some("v"), f, "state", &geo
        ).unwrap());
    }

    #[test]
    fn count_measure_squares_commute(
        micro in micro_strategy(60),
        f in function_strategy(),
    ) {
        prop_assume!(!micro.is_empty());
        prop_assert!(homomorphism_select(
            &micro, &["state", "sex"], None, f, "sex", "f"
        ).unwrap());
        prop_assert!(homomorphism_project(
            &micro, &["state", "sex"], None, f, "sex"
        ).unwrap());
    }
}
