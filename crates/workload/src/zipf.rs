//! Zipf-distributed sampling for skewed category frequencies.
//!
//! Real category attributes are skewed — a few products dominate sales, a
//! few counties hold most people — and several of the paper's claims
//! (clustered nulls for header compression, small populated fractions of
//! huge cross products) only show up under skew, so the generators draw
//! category values from a Zipf law.

use rand::Rng;

/// A Zipf(`n`, `s`) sampler over ranks `0..n` using a precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s` (`s = 0` is
    /// uniform; larger `s` is more skewed). Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of rank `k`; `0.0` for ranks outside `0..n`
    /// (the support), so callers can probe any rank without panicking.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            0.0
        } else if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(100, 1.0);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1));
        }
        assert!(z.pmf(0) > 10.0 * z.pmf(99));
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let expect = z.pmf(k) * trials as f64;
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt() + 20.0,
                "rank {k}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn pmf_out_of_range_is_zero() {
        // Regression: `pmf(k)` indexed `cdf[k]` unchecked and panicked for
        // `k >= n`; out-of-support ranks must read as zero mass instead.
        let z = Zipf::new(4, 1.0);
        assert_eq!(z.pmf(4), 0.0);
        assert_eq!(z.pmf(5), 0.0);
        assert_eq!(z.pmf(usize::MAX), 0.0);
        // The in-range masses still sum to 1.
        let total: f64 = (0..4).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }
}
