//! Synthetic natural-resources monitoring data (§3.1(iii)).
//!
//! "This type of databases monitor such things as water levels in dams,
//! logging in forests, floods and river flows … water level per month per
//! measuring station of rivers, but the geographic dimension is where the
//! complexity lies." The generated dataset carries a three-level spatial
//! hierarchy (station → river → basin), monthly observations, and **two**
//! measures with opposite temporal semantics: `water level` (a stock —
//! never summed over time) and `flow volume` (a flow — summable), so the
//! summarizability machinery has something real to guard.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use statcube_core::dimension::Dimension;
use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ResourcesConfig {
    /// Number of river basins.
    pub basins: usize,
    /// Rivers per basin.
    pub rivers_per_basin: usize,
    /// Measuring stations per river.
    pub stations_per_river: usize,
    /// Number of months observed.
    pub months: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ResourcesConfig {
    fn default() -> Self {
        Self { basins: 3, rivers_per_basin: 4, stations_per_river: 5, months: 24, seed: 1979 }
    }
}

/// A generated hydrology dataset.
#[derive(Debug)]
pub struct Resources {
    /// `water level` (avg, stock) and `flow volume` (sum, flow) by
    /// station × month.
    pub object: StatisticalObject,
    /// Station names (`"b0/r1/st2"`), id-ordered.
    pub stations: Vec<String>,
    /// The station → river → basin hierarchy.
    pub geography: Hierarchy,
}

/// Generates a hydrology dataset.
pub fn generate(cfg: &ResourcesConfig) -> Resources {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stations = Vec::new();
    let mut geo = Hierarchy::builder("hydrology").level("station").level("river");
    let mut river_names = Vec::new();
    for b in 0..cfg.basins {
        for r in 0..cfg.rivers_per_basin {
            let river = format!("b{b}/r{r}");
            for s in 0..cfg.stations_per_river {
                let station = format!("{river}/st{s}");
                geo = geo.edge(&station, &river);
                stations.push(station);
            }
            river_names.push((river, format!("b{b}")));
        }
    }
    geo = geo.level("basin");
    for (river, basin) in &river_names {
        geo = geo.edge_at(1, river, basin);
    }
    let geography = geo.build().expect("valid hydrology hierarchy");

    let months: Vec<String> = (0..cfg.months).map(|m| format!("m{m:02}")).collect();
    let schema = Schema::builder("river monitoring")
        .dimension(
            Dimension::classified("station", geography.clone())
                .with_role(statcube_core::dimension::DimensionRole::Spatial),
        )
        .dimension(Dimension::temporal("month", months.iter().map(String::as_str)))
        .measure(SummaryAttribute::new("water level", MeasureKind::Stock).with_unit("meters"))
        .function(SummaryFunction::Avg)
        .measure(SummaryAttribute::new("flow volume", MeasureKind::Flow).with_unit("m^3"))
        .function(SummaryFunction::Sum)
        .build()
        .expect("valid schema");

    let mut object = StatisticalObject::empty(schema);
    // Seasonal level + station-specific base; flow correlates with level.
    let bases: Vec<f64> = (0..stations.len()).map(|_| rng.random_range(2.0..20.0)).collect();
    for (s, base) in bases.iter().enumerate() {
        for m in 0..cfg.months {
            let season = 1.0 + 0.4 * (m as f64 / 12.0 * std::f64::consts::TAU).sin();
            let level = base * season * rng.random_range(0.9..1.1);
            let flow = level * rng.random_range(800.0..1200.0);
            object
                .insert_ids(&[s as u32, m as u32], &[level, flow.round()])
                .expect("coords in range");
        }
    }
    Resources { object, stations, geography }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::error::Error;
    use statcube_core::ops;

    fn small() -> ResourcesConfig {
        ResourcesConfig {
            basins: 2,
            rivers_per_basin: 2,
            stations_per_river: 3,
            months: 12,
            seed: 8,
        }
    }

    #[test]
    fn three_level_geography() {
        let r = generate(&small());
        assert_eq!(r.geography.level_count(), 3);
        assert_eq!(r.stations.len(), 12);
        assert!(r.geography.is_strict());
        assert_eq!(generate(&small()).object, r.object);
        // Roll all the way up to basins in one step.
        let by_basin = ops::s_aggregate(&r.object, "station", "basin").unwrap();
        assert_eq!(by_basin.schema().dimension("station").unwrap().cardinality(), 2);
        // Flow volume totals survive the roll-up.
        assert!((by_basin.grand_total(1).unwrap() - r.object.grand_total(1).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn stock_vs_flow_semantics_over_time() {
        let r = generate(&small());
        // Summarizing over months: the level (stock, avg) and volume
        // (flow, sum) are both fine under their declared functions…
        assert!(ops::s_project(&r.object, "month").is_ok());
        // …but a SUM-of-level variant must be refused.
        let schema = Schema::builder("bad")
            .dimension(Dimension::temporal("month", ["m0", "m1"]))
            .measure(SummaryAttribute::new("water level", MeasureKind::Stock))
            .build()
            .unwrap();
        let mut bad = StatisticalObject::empty(schema);
        bad.insert(&["m0"], 3.0).unwrap();
        assert!(matches!(ops::s_project(&bad, "month"), Err(Error::Summarizability(_))));
    }

    #[test]
    fn levels_are_seasonal() {
        let r = generate(&ResourcesConfig { months: 24, ..small() });
        // The wet-season months should average higher than the dry ones.
        let by_month = ops::s_project(&r.object, "station").unwrap();
        let level = |m: &str| by_month.get_measure(&[m], 0).unwrap().unwrap();
        assert!(level("m03") > level("m09"), "seasonality expected");
    }
}
