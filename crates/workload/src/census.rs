//! Synthetic census micro-data (§3.1(i)).
//!
//! The paper's census sketch: individual records summarized upward through
//! a voluminous geographic hierarchy, with a handful of low-cardinality
//! socio-economic category attributes (race, sex, age group) and an income
//! measure. County populations are Zipf-skewed; incomes are right-skewed.
//! Everything is deterministic under the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use statcube_core::hierarchy::Hierarchy;
use statcube_core::microdata::MicroTable;

use crate::zipf::Zipf;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of states.
    pub states: usize,
    /// Counties per state.
    pub counties_per_state: usize,
    /// Number of individual records.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        Self { states: 10, counties_per_state: 8, rows: 20_000, seed: 1997 }
    }
}

/// Race category values.
pub const RACES: [&str; 5] = ["white", "black", "asian", "native", "other"];
/// Sex category values.
pub const SEXES: [&str; 2] = ["male", "female"];
/// Age-group category values (decades).
pub const AGE_GROUPS: [&str; 9] =
    ["1-10", "11-20", "21-30", "31-40", "41-50", "51-60", "61-70", "71-80", "81-90"];

/// A generated census dataset.
#[derive(Debug)]
pub struct Census {
    /// Micro records: `county, state, race, sex, age_group` × `income`.
    pub micro: MicroTable,
    /// The county → state classification hierarchy.
    pub geography: Hierarchy,
    /// County names, id-ordered (`"<state>/c<k>"`).
    pub counties: Vec<String>,
    /// State names, id-ordered (`"s<k>"`).
    pub states: Vec<String>,
}

/// Generates a census dataset.
pub fn generate(cfg: &CensusConfig) -> Census {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let states: Vec<String> = (0..cfg.states).map(|s| format!("s{s:02}")).collect();
    let mut counties = Vec::with_capacity(cfg.states * cfg.counties_per_state);
    let mut builder = Hierarchy::builder("geography").level("county").level("state");
    for st in &states {
        for c in 0..cfg.counties_per_state {
            let county = format!("{st}/c{c:02}");
            builder = builder.edge(&county, st);
            counties.push(county);
        }
    }
    let geography = builder.build().expect("valid geography");

    let county_zipf = Zipf::new(counties.len(), 1.1);
    let mut micro = MicroTable::new(&["county", "state", "race", "sex", "age_group"], &["income"]);
    for _ in 0..cfg.rows {
        let county_id = county_zipf.sample(&mut rng);
        let county = &counties[county_id];
        let state = &county[..3];
        let race = RACES[rng.random_range(0..RACES.len())];
        let sex = SEXES[rng.random_range(0..SEXES.len())];
        let age = AGE_GROUPS[rng.random_range(0..AGE_GROUPS.len())];
        // Right-skewed income: product of uniforms, scaled.
        let income: f64 =
            20_000.0 + 120_000.0 * rng.random::<f64>() * rng.random::<f64>() * rng.random::<f64>();
        micro.push(&[county, state, race, sex, age], &[income]).expect("schema matches");
    }
    Census { micro, geography, counties, states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::measure::{MeasureKind, SummaryFunction};

    #[test]
    fn shapes_and_determinism() {
        let cfg = CensusConfig { states: 3, counties_per_state: 4, rows: 1000, seed: 7 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.micro, b.micro);
        assert_eq!(a.micro.len(), 1000);
        assert_eq!(a.counties.len(), 12);
        assert_eq!(a.geography.leaf().members().len(), 12);
        assert_eq!(a.geography.level(1).members().len(), 3);
        assert!(a.geography.is_strict());
        let c = generate(&CensusConfig { seed: 8, ..cfg });
        assert_ne!(a.micro, c.micro);
    }

    #[test]
    fn county_populations_are_skewed() {
        let census = generate(&CensusConfig::default());
        let counts = census
            .micro
            .summarize(&["county"], None, SummaryFunction::Count, MeasureKind::Flow)
            .unwrap();
        let mut values: Vec<f64> =
            census.counties.iter().filter_map(|c| counts.get(&[c]).unwrap()).collect();
        values.sort_by(f64::total_cmp);
        let max = values.last().copied().unwrap_or(0.0);
        let median = values[values.len() / 2];
        assert!(max > 5.0 * median, "Zipf skew expected: max {max}, median {median}");
    }

    #[test]
    fn summarizes_through_geography() {
        let census = generate(&CensusConfig { rows: 5000, ..CensusConfig::default() });
        let by_county = census
            .micro
            .summarize(&["county"], Some("income"), SummaryFunction::Sum, MeasureKind::Flow)
            .unwrap();
        assert!(by_county.cell_count() > 0);
        // Incomes are in the generated band.
        for (_, states) in by_county.cells() {
            let avg = states[0].sum / states[0].count as f64;
            assert!((20_000.0..140_000.0).contains(&avg));
        }
    }
}
