//! Synthetic stock-market data (§3.2(ii)).
//!
//! "The most obvious feature of a stock market database is its temporal
//! dimension … a time series of the days that the market is open (weekdays,
//! excluding holidays)." Prices follow a random walk (a value-per-unit
//! measure — never additive!), volumes are flows, and stocks carry two
//! classifications over the same dimension: by industry and by rating
//! (§3.2(ii)'s "multiple classifications over the stock").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use statcube_core::dimension::Dimension;
use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct StocksConfig {
    /// Number of stocks.
    pub stocks: usize,
    /// Number of industries.
    pub industries: usize,
    /// Number of *calendar* weeks (each contributes 5 trading days).
    pub weeks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StocksConfig {
    fn default() -> Self {
        Self { stocks: 40, industries: 6, weeks: 26, seed: 1987 }
    }
}

/// Rating classes for the second classification.
pub const RATINGS: [&str; 4] = ["AAA", "AA", "A", "B"];

/// A generated stock-market dataset.
#[derive(Debug)]
pub struct Stocks {
    /// `price` (avg, value-per-unit) and `volume` (sum, flow) by stock ×
    /// trading day.
    pub object: StatisticalObject,
    /// Stock tickers, id-ordered.
    pub tickers: Vec<String>,
    /// Trading-day names (`"w03-tue"`), id-ordered — weekdays only.
    pub days: Vec<String>,
}

/// Generates a stock-market dataset.
#[allow(clippy::needless_range_loop)] // random walk updates prices[s] in place
pub fn generate(cfg: &StocksConfig) -> Stocks {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let tickers: Vec<String> = (0..cfg.stocks).map(|s| format!("tk{s:03}")).collect();
    // Classification 1: by industry.
    let mut by_industry = Hierarchy::builder("by industry").level("stock").level("industry");
    for (s, t) in tickers.iter().enumerate() {
        by_industry = by_industry.edge(t, &format!("ind{:02}", s % cfg.industries));
    }
    let by_industry = by_industry.build().expect("valid industry hierarchy");
    // Classification 2: by rating, over the same stocks in the same order.
    let mut by_rating = Hierarchy::builder("by rating").level("stock").level("rating");
    for (s, t) in tickers.iter().enumerate() {
        by_rating = by_rating.edge(t, RATINGS[(s * 7) % RATINGS.len()]);
    }
    let by_rating = by_rating.build().expect("valid rating hierarchy");

    // Trading calendar: weekdays only, grouped into weeks.
    const WEEKDAYS: [&str; 5] = ["mon", "tue", "wed", "thu", "fri"];
    let mut days = Vec::with_capacity(cfg.weeks * 5);
    let mut calendar = Hierarchy::builder("trading calendar").level("day").level("week");
    for w in 0..cfg.weeks {
        for wd in WEEKDAYS {
            let day = format!("w{w:02}-{wd}");
            calendar = calendar.edge(&day, &format!("w{w:02}"));
            days.push(day);
        }
    }
    let calendar = calendar.build().expect("valid calendar");

    let stock_dim = Dimension::classified("stock", by_industry)
        .with_extra_hierarchy(by_rating)
        .expect("aligned leaf sets");
    let schema = Schema::builder("stock market")
        .dimension(stock_dim)
        .dimension(Dimension::classified_temporal("day", calendar))
        .measure(SummaryAttribute::new("price", MeasureKind::ValuePerUnit).with_unit("dollars"))
        .function(SummaryFunction::Avg)
        .measure(SummaryAttribute::new("volume", MeasureKind::Flow).with_unit("shares"))
        .function(SummaryFunction::Sum)
        .build()
        .expect("valid schema");

    let mut object = StatisticalObject::empty(schema);
    let mut prices: Vec<f64> = (0..cfg.stocks).map(|_| rng.random_range(10.0..200.0)).collect();
    for d in 0..days.len() as u32 {
        for s in 0..cfg.stocks {
            // Geometric-ish random walk, clamped positive.
            let step: f64 = rng.random_range(-0.03..0.03);
            prices[s] = (prices[s] * (1.0 + step)).max(0.5);
            let volume = rng.random_range(1_000.0..50_000.0f64).round();
            object.insert_ids(&[s as u32, d], &[prices[s], volume]).expect("coords in range");
        }
    }
    Stocks { object, tickers, days }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::error::Error;
    use statcube_core::ops;

    fn small() -> StocksConfig {
        StocksConfig { stocks: 6, industries: 3, weeks: 4, seed: 3 }
    }

    #[test]
    fn calendar_is_weekdays_only() {
        let s = generate(&small());
        assert_eq!(s.days.len(), 20);
        assert!(s.days.iter().all(|d| !d.ends_with("sat") && !d.ends_with("sun")));
        assert_eq!(s.object.cell_count(), 6 * 20);
        assert_eq!(generate(&small()).object, s.object);
    }

    #[test]
    fn weekly_averages_via_rollup() {
        let s = generate(&small());
        let weekly = s.object.roll_up("day", "week").unwrap();
        assert_eq!(weekly.schema().dimension("day").unwrap().cardinality(), 4);
        // Price is Avg: the weekly price is the mean of 5 dailies.
        let daily: Vec<f64> = (0..5)
            .map(|i| s.object.get_measure(&["tk000", &s.days[i]], 0).unwrap().unwrap())
            .collect();
        let week = weekly.get_measure(&["tk000", "w00"], 0).unwrap().unwrap();
        let expected = daily.iter().sum::<f64>() / 5.0;
        assert!((week - expected).abs() < 1e-9);
    }

    #[test]
    fn summing_prices_over_time_is_rejected() {
        // price is ValuePerUnit… but its function is Avg, so aggregation is
        // fine; volume is Flow+Sum, fine too. Build a Sum-of-price variant
        // to check the guard.
        let s = generate(&small());
        // Project over day: volume sums, price averages — allowed.
        assert!(ops::s_project(&s.object, "day").is_ok());
        // But a price object with Sum would be rejected: simulate by
        // checking the violation detector directly.
        let schema = Schema::builder("bad")
            .dimension(Dimension::temporal("day", ["d1", "d2"]))
            .measure(SummaryAttribute::new("price", MeasureKind::ValuePerUnit))
            .build()
            .unwrap();
        let mut bad = StatisticalObject::empty(schema);
        bad.insert(&["d1"], 10.0).unwrap();
        assert!(matches!(ops::s_project(&bad, "day"), Err(Error::Summarizability(_))));
    }

    #[test]
    fn multiple_classifications_work() {
        let s = generate(&small());
        let by_ind =
            ops::s_aggregate_in(&s.object, "stock", Some("by industry"), "industry", true).unwrap();
        assert_eq!(by_ind.schema().dimension("stock").unwrap().cardinality(), 3);
        let by_rating =
            ops::s_aggregate_in(&s.object, "stock", Some("by rating"), "rating", true).unwrap();
        assert!(by_rating.schema().dimension("stock").unwrap().cardinality() <= 4);
        // Volume totals agree regardless of classification used.
        let v1: f64 = by_ind.grand_total(1).unwrap();
        let v2: f64 = by_rating.grand_total(1).unwrap();
        assert!((v1 - v2).abs() < 1e-6);
    }
}
