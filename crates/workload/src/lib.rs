//! # statcube-workload
//!
//! Seeded synthetic datasets standing in for the proprietary data of the
//! paper's application areas (§3; see DESIGN.md substitutions). Each
//! generator reproduces the structural features §3 calls out:
//!
//! * [`census`] — deep geographic hierarchy, low-cardinality
//!   socio-economic attributes, Zipf-skewed county populations (§3.1(i));
//! * [`retail`] — sparse product × store × day cube with ID-dependent
//!   store and calendar hierarchies and Zipf-skewed product sales
//!   (§2.2, §3.2(i));
//! * [`stocks`] — weekday time series, value-per-unit prices, multiple
//!   classifications over the stock dimension (§3.2(ii));
//! * [`hmo`] — a deliberately **non-strict** disease classification, the
//!   paper's double-counting trap (§3.2(iii));
//! * [`resources`] — river monitoring with a station → river → basin
//!   spatial hierarchy and stock-vs-flow measures (§3.1(iii));
//! * [`zipf`] — the skew engine under all of them.

#![warn(missing_docs)]

pub mod census;
pub mod hmo;
pub mod resources;
pub mod retail;
pub mod stocks;
pub mod zipf;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::census::{Census, CensusConfig};
    pub use crate::hmo::{Hmo, HmoConfig};
    pub use crate::resources::{Resources, ResourcesConfig};
    pub use crate::retail::{Retail, RetailConfig};
    pub use crate::stocks::{Stocks, StocksConfig};
    pub use crate::zipf::Zipf;
}
