//! Synthetic HMO (health maintenance organization) data (§3.2(iii)).
//!
//! "They use multi-level disease classifications which are quite complex …
//! the classification structure is not a strict hierarchy: 'lung cancer'
//! belongs under the 'cancer' disease category as well as under the
//! 'respiratory' disease category." The generated disease hierarchy is
//! deliberately **non-strict**, so any additive roll-up over it trips the
//! summarizability checker — the paper's double-counting trap, on tap for
//! tests and experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use statcube_core::dimension::Dimension;
use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::{MeasureKind, SummaryAttribute};
use statcube_core::microdata::MicroTable;
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct HmoConfig {
    /// Number of hospitals.
    pub hospitals: usize,
    /// Number of months.
    pub months: usize,
    /// Number of patient-visit records.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HmoConfig {
    fn default() -> Self {
        Self { hospitals: 8, months: 12, rows: 10_000, seed: 2001 }
    }
}

/// Diseases with their categories; `lung cancer` is in two — the paper's
/// example of a non-strict structure.
pub const DISEASES: [(&str, &[&str]); 7] = [
    ("lung cancer", &["cancer", "respiratory"]),
    ("breast cancer", &["cancer"]),
    ("skin cancer", &["cancer"]),
    ("asthma", &["respiratory"]),
    ("influenza", &["respiratory"]),
    ("arthritis", &["musculoskeletal"]),
    ("fracture", &["musculoskeletal"]),
];

/// A generated HMO dataset.
#[derive(Debug)]
pub struct Hmo {
    /// Visit records: `disease, hospital, month` × `cost`.
    pub micro: MicroTable,
    /// `cost` by disease × hospital × month (Sum of visit costs).
    pub object: StatisticalObject,
    /// The (non-strict) disease → category hierarchy.
    pub disease_hierarchy: Hierarchy,
}

/// Generates an HMO dataset.
pub fn generate(cfg: &HmoConfig) -> Hmo {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut builder =
        Hierarchy::builder("disease classification").level("disease").level("category");
    for (d, cats) in DISEASES {
        for cat in cats {
            builder = builder.edge(d, cat);
        }
    }
    let disease_hierarchy = builder.build().expect("valid disease hierarchy");

    let hospitals: Vec<String> = (0..cfg.hospitals).map(|h| format!("h{h:02}")).collect();
    let months: Vec<String> = (0..cfg.months).map(|m| format!("m{m:02}")).collect();

    let schema = Schema::builder("cost per visit")
        .dimension(Dimension::classified("disease", disease_hierarchy.clone()))
        .dimension(Dimension::categorical("hospital", hospitals.iter().map(String::as_str)))
        .dimension(Dimension::temporal("month", months.iter().map(String::as_str)))
        .measure(SummaryAttribute::new("cost", MeasureKind::Flow).with_unit("dollars"))
        .build()
        .expect("valid schema");

    let mut micro = MicroTable::new(&["disease", "hospital", "month"], &["cost"]);
    let mut object = StatisticalObject::empty(schema);
    for _ in 0..cfg.rows {
        let d = rng.random_range(0..DISEASES.len());
        let h = rng.random_range(0..cfg.hospitals);
        let m = rng.random_range(0..cfg.months);
        let base: f64 = match DISEASES[d].1[0] {
            "cancer" => 8_000.0,
            "respiratory" => 900.0,
            _ => 2_000.0,
        };
        let cost = (base * rng.random_range(0.5..2.0f64)).round();
        micro.push(&[DISEASES[d].0, &hospitals[h], &months[m]], &[cost]).expect("schema matches");
        object.insert_ids(&[d as u32, h as u32, m as u32], &[cost]).expect("coords in range");
    }
    Hmo { micro, object, disease_hierarchy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::error::Error;
    use statcube_core::ops;

    fn small() -> HmoConfig {
        HmoConfig { hospitals: 3, months: 4, rows: 500, seed: 11 }
    }

    #[test]
    fn hierarchy_is_non_strict() {
        let hmo = generate(&small());
        assert!(!hmo.disease_hierarchy.is_strict());
        let lung = hmo.disease_hierarchy.leaf().members().id_of("lung cancer").unwrap();
        assert_eq!(hmo.disease_hierarchy.parents(0, lung).len(), 2);
    }

    #[test]
    fn additive_rollup_is_rejected_and_forced_rollup_double_counts() {
        let hmo = generate(&small());
        assert!(matches!(
            ops::s_aggregate(&hmo.object, "disease", "category"),
            Err(Error::Summarizability(_))
        ));
        let forced = ops::s_aggregate_in(&hmo.object, "disease", None, "category", false).unwrap();
        let true_total = hmo.object.grand_total(0).unwrap();
        let forced_total = forced.grand_total(0).unwrap();
        // Lung-cancer costs are counted twice.
        assert!(forced_total > true_total);
    }

    #[test]
    fn micro_and_object_agree() {
        let hmo = generate(&small());
        assert_eq!(hmo.micro.len(), 500);
        let micro_total: f64 =
            (0..hmo.micro.len()).map(|r| hmo.micro.num_value("cost", r).unwrap()).sum();
        assert!((hmo.object.grand_total(0).unwrap() - micro_total).abs() < 1e-6);
        assert_eq!(generate(&small()).object, hmo.object);
    }

    #[test]
    fn costs_reflect_disease_severity() {
        let hmo = generate(&HmoConfig::default());
        let by_disease = hmo.object.project("hospital").unwrap().project("month").unwrap();
        let cancer_avg = {
            let coords = by_disease.schema().coords_of(&["breast cancer"]).unwrap();
            let s = by_disease.states_at(&coords).unwrap()[0];
            s.sum / s.count as f64
        };
        let flu_avg = {
            let coords = by_disease.schema().coords_of(&["influenza"]).unwrap();
            let s = by_disease.states_at(&coords).unwrap()[0];
            s.sum / s.count as f64
        };
        assert!(cancer_avg > 3.0 * flu_avg);
    }
}
