//! Synthetic retail transactions (§2.2, §3.2(i)).
//!
//! The paper's data-cube example: `quantity sold` by product, store
//! location (city → store, ID-dependent), and day (year → month → day,
//! ID-dependent). Product popularity is Zipf-skewed, so the resulting cube
//! is sparse with clustered structure — the regime every §6 technique
//! targets. A configurable `density` knob drives the MOLAP/ROLAP crossover
//! sweep (E18).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use statcube_core::dimension::Dimension;
use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::{MeasureKind, SummaryAttribute};
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;

use crate::zipf::Zipf;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct RetailConfig {
    /// Number of products.
    pub products: usize,
    /// Number of product categories (products hash into them).
    pub categories: usize,
    /// Number of cities.
    pub cities: usize,
    /// Stores per city.
    pub stores_per_city: usize,
    /// Number of days (grouped into 30-day months).
    pub days: usize,
    /// Number of sale transactions.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RetailConfig {
    fn default() -> Self {
        Self {
            products: 200,
            categories: 12,
            cities: 5,
            stores_per_city: 4,
            days: 60,
            rows: 30_000,
            seed: 1996,
        }
    }
}

/// A generated retail dataset, already shaped as a statistical object.
#[derive(Debug)]
pub struct Retail {
    /// `quantity sold` by product × store × day, function `Sum`.
    pub object: StatisticalObject,
    /// Product names, id-ordered.
    pub products: Vec<String>,
    /// Store names, id-ordered (`"<city>/s<k>"`).
    pub stores: Vec<String>,
    /// Day names, id-ordered (`"d<k>"`).
    pub days: Vec<String>,
}

/// Generates a retail dataset.
pub fn generate(cfg: &RetailConfig) -> Retail {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let products: Vec<String> = (0..cfg.products).map(|p| format!("p{p:04}")).collect();
    let mut product_hier =
        Hierarchy::builder("product category").level("product").level("category");
    for (p, name) in products.iter().enumerate() {
        product_hier = product_hier.edge(name, &format!("cat{:02}", p % cfg.categories));
    }
    let product_hier = product_hier.build().expect("valid product hierarchy");

    let mut stores = Vec::with_capacity(cfg.cities * cfg.stores_per_city);
    let mut location =
        Hierarchy::builder("store location").level("store").id_dependent().level("city");
    for city in 0..cfg.cities {
        let city_name = format!("city{city:02}");
        for s in 0..cfg.stores_per_city {
            let store = format!("{city_name}/s{s}");
            location = location.edge(&store, &city_name);
            stores.push(store);
        }
    }
    let location = location.build().expect("valid location hierarchy");

    let days: Vec<String> = (0..cfg.days).map(|d| format!("d{d:03}")).collect();
    let mut time = Hierarchy::builder("calendar").level("day").id_dependent().level("month");
    for (d, name) in days.iter().enumerate() {
        time = time.edge(name, &format!("m{:02}", d / 30));
    }
    let time = time.build().expect("valid calendar");

    let schema = Schema::builder("Quantity Sold")
        .dimension(Dimension::classified("product", product_hier))
        .dimension(Dimension::classified("store", location))
        .dimension(Dimension::classified_temporal("day", time))
        .measure(SummaryAttribute::new("quantity sold", MeasureKind::Flow).with_unit("dollars"))
        .build()
        .expect("valid schema");

    let product_zipf = Zipf::new(cfg.products, 1.0);
    let mut object = StatisticalObject::empty(schema);
    for _ in 0..cfg.rows {
        let p = product_zipf.sample(&mut rng) as u32;
        let s = rng.random_range(0..stores.len()) as u32;
        let d = rng.random_range(0..cfg.days) as u32;
        let amount = rng.random_range(1.0..200.0f64).round();
        object.insert_ids(&[p, s, d], &[amount]).expect("coords in range");
    }
    Retail { object, products, stores, days }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RetailConfig {
        RetailConfig {
            products: 20,
            categories: 4,
            cities: 2,
            stores_per_city: 2,
            days: 35,
            rows: 2_000,
            seed: 5,
        }
    }

    #[test]
    fn deterministic_and_shaped() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.object, b.object);
        assert_eq!(a.object.schema().cardinalities(), vec![20, 4, 35]);
        assert_eq!(a.stores.len(), 4);
        // 2000 transactions merged into ≤ 2800 cells.
        assert!(a.object.cell_count() <= 2_000);
        assert!(a.object.cell_count() > 100);
    }

    #[test]
    fn rolls_up_all_three_hierarchies() {
        let r = generate(&small());
        let by_cat = r.object.roll_up("product", "category").unwrap();
        assert_eq!(by_cat.schema().dimension("product").unwrap().cardinality(), 4);
        let by_city = by_cat.roll_up("store", "city").unwrap();
        assert_eq!(by_city.schema().dimension("store").unwrap().cardinality(), 2);
        let by_month = by_city.roll_up("day", "month").unwrap();
        assert_eq!(by_month.schema().dimension("day").unwrap().cardinality(), 2);
        // Totals survive every roll-up.
        assert_eq!(by_month.grand_total(0), r.object.grand_total(0));
    }

    #[test]
    fn product_sales_are_skewed() {
        let r = generate(&RetailConfig::default());
        let by_product = r.object.project("store").unwrap().project("day").unwrap();
        let mut sums: Vec<f64> =
            r.products.iter().filter_map(|p| by_product.get(&[p]).unwrap()).collect();
        sums.sort_by(f64::total_cmp);
        let top = sums.last().copied().unwrap();
        let median = sums[sums.len() / 2];
        assert!(top > 3.0 * median, "top {top} vs median {median}");
    }

    #[test]
    fn density_tracks_rows_vs_space() {
        let sparse = generate(&RetailConfig { rows: 500, ..RetailConfig::default() });
        let dense = generate(&RetailConfig { rows: 200_000, ..RetailConfig::default() });
        assert!(sparse.object.density() < dense.object.density());
    }
}
