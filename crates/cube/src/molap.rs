//! MOLAP cube computation: array-based simultaneous aggregation (§6.6,
//! \[ZDN97\]).
//!
//! The multidimensional engine never hashes: each cuboid is a dense
//! linearized array, the base cuboid is filled by offset arithmetic, and
//! every coarser cuboid is swept out of its smallest dense parent. On dense
//! inputs this wins big — no hash probes, perfect locality; on sparse
//! inputs the arrays are mostly empty cells and the relational engines
//! ([`crate::rolap`], [`crate::cube_op::compute_shared`]) win. Experiment
//! E18 locates that crossover.

use std::collections::HashMap;
use std::time::Instant;

use statcube_core::error::{Error, Result};
use statcube_core::measure::AggState;

use crate::cube_op::{CubeResult, CuboidStats, DerivationSource};
use crate::groupby::Cuboid;
use crate::input::FactInput;

/// Guard against accidentally allocating absurd dense cubes.
const MAX_TOTAL_CELLS: usize = 1 << 27;

/// One dense cuboid: kept-dimension cardinalities plus parallel sum/count
/// arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCuboid {
    dims: Vec<usize>,
    sum: Vec<f64>,
    count: Vec<u64>,
}

impl DenseCuboid {
    fn new(dims: Vec<usize>) -> Self {
        let n: usize = dims.iter().product::<usize>().max(1);
        Self { dims, sum: vec![0.0; n], count: vec![0u64; n] }
    }

    fn offset(&self, key: &[u32]) -> usize {
        let mut off = 0;
        for (d, &k) in key.iter().enumerate() {
            off = off * self.dims[d] + k as usize;
        }
        off
    }

    /// Kept-dimension cardinalities.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// `(sum, count)` of the cell at `key` (kept coordinates in dimension
    /// order); `None` if never touched.
    pub fn get(&self, key: &[u32]) -> Option<(f64, u64)> {
        if key.len() != self.dims.len()
            || key.iter().zip(&self.dims).any(|(&k, &d)| k as usize >= d)
        {
            return None;
        }
        let off = self.offset(key);
        if self.count[off] == 0 {
            None
        } else {
            Some((self.sum[off], self.count[off]))
        }
    }

    /// Number of populated cells.
    pub fn populated(&self) -> usize {
        self.count.iter().filter(|&&c| c > 0).count()
    }

    /// Allocated cells (the dense footprint).
    pub fn allocated(&self) -> usize {
        self.sum.len()
    }
}

/// A fully computed MOLAP cube: one dense cuboid per mask.
///
/// Equality compares cardinalities and cuboids; `stats` is timing
/// metadata and is excluded.
#[derive(Debug, Clone)]
pub struct MolapCube {
    cards: Vec<usize>,
    cuboids: HashMap<u32, DenseCuboid>,
    stats: Vec<CuboidStats>,
}

impl PartialEq for MolapCube {
    fn eq(&self, other: &Self) -> bool {
        self.cards == other.cards && self.cuboids == other.cuboids
    }
}

impl MolapCube {
    /// The cuboid for `mask`.
    pub fn cuboid(&self, mask: u32) -> Option<&DenseCuboid> {
        self.cuboids.get(&mask)
    }

    /// Per-cuboid computation telemetry (rows scanned = fact rows for the
    /// base pass, parent *allocated* cells for an array sweep).
    pub fn stats(&self) -> &[CuboidStats] {
        &self.stats
    }

    /// `(sum, count)` lookup with full coordinates and `None` = `ALL`.
    pub fn get_all(&self, pattern: &[Option<u32>]) -> Option<(f64, u64)> {
        let mut mask = 0u32;
        let mut key = Vec::new();
        for (d, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                mask |= 1 << d;
                key.push(*c);
            }
        }
        self.cuboids.get(&mask)?.get(&key)
    }

    /// Total allocated cells across all cuboids (the MOLAP memory bill).
    pub fn allocated_cells(&self) -> usize {
        self.cuboids.values().map(DenseCuboid::allocated).sum()
    }

    /// Converts to the hash-based [`CubeResult`] for cross-engine equality
    /// tests. Order statistics are not tracked by the dense engine, so the
    /// states carry sum/count only.
    pub fn to_cube_result(&self) -> CubeResult {
        let mut cuboids: HashMap<u32, Cuboid> = HashMap::with_capacity(self.cuboids.len());
        for (&mask, dense) in &self.cuboids {
            let mut c: Cuboid = HashMap::with_capacity(dense.populated());
            let n_dims = dense.dims.len();
            let mut key = vec![0u32; n_dims];
            for off in 0..dense.sum.len() {
                if dense.count[off] == 0 {
                    continue;
                }
                let mut rem = off;
                for d in (0..n_dims).rev() {
                    key[d] = (rem % dense.dims[d]) as u32;
                    rem /= dense.dims[d];
                }
                c.insert(
                    key.clone().into_boxed_slice(),
                    AggState::from_sum_count(dense.sum[off], dense.count[off]),
                );
            }
            cuboids.insert(mask, c);
        }
        CubeResult::from_parts(self.cards.len(), cuboids, self.stats.clone())
    }
}

/// Computes the full cube with dense arrays.
#[allow(clippy::needless_range_loop)] // offset arithmetic over parallel arrays
pub fn compute_molap(input: &FactInput) -> Result<MolapCube> {
    let n = input.dim_count();
    let cards = input.cards().to_vec();
    // Pre-flight the allocation bill.
    let mut total_cells = 0usize;
    for mask in 0..(1u32 << n) {
        let mut prod = 1usize;
        for (d, &card) in cards.iter().enumerate() {
            if mask & (1 << d) != 0 {
                prod = prod.saturating_mul(card);
            }
        }
        total_cells = total_cells.saturating_add(prod);
    }
    if total_cells > MAX_TOTAL_CELLS {
        return Err(Error::InvalidSchema(format!(
            "MOLAP cube would allocate {total_cells} cells (limit {MAX_TOTAL_CELLS})"
        )));
    }

    let full = (1u32 << n) - 1;
    let mut cuboids: HashMap<u32, DenseCuboid> = HashMap::with_capacity(1 << n);
    let mut stats: Vec<CuboidStats> = Vec::with_capacity(1 << n);

    // Base pass: offset arithmetic, no hashing.
    let t0 = Instant::now();
    let mut base = DenseCuboid::new(cards.clone());
    for row in 0..input.len() {
        let mut off = 0usize;
        for d in 0..n {
            off = off * cards[d] + input.dim(d)[row] as usize;
        }
        base.sum[off] += input.measure()[row];
        base.count[off] += 1;
    }
    stats.push(CuboidStats {
        mask: full,
        rows_scanned: input.len() as u64,
        cells: base.populated() as u64,
        wall: t0.elapsed(),
        source: DerivationSource::BaseFacts { partitions: 1 },
    });
    cuboids.insert(full, base);

    // Derive each coarser cuboid from its smallest computed parent by a
    // single array sweep.
    let mut masks: Vec<u32> = (0..full).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        let mut best: Option<(u32, usize)> = None;
        for d in 0..n {
            let bit = 1u32 << d;
            if mask & bit != 0 {
                continue;
            }
            let parent = mask | bit;
            if let Some(p) = cuboids.get(&parent) {
                let size = p.allocated();
                if best.map(|(_, s)| size < s).unwrap_or(true) {
                    best = Some((parent, size));
                }
            }
        }
        let (pmask, _) = best.expect("ancestor exists");
        let t = Instant::now();
        let child_dims: Vec<usize> = (0..n)
            .filter(|d| mask & (1 << d) != 0)
            .map(|d| cards[d])
            .collect();
        let mut child = DenseCuboid::new(child_dims);
        {
            let parent = &cuboids[&pmask];
            // For each parent axis, whether the child keeps it.
            let kept: Vec<bool> = (0..n)
                .filter(|d| pmask & (1 << d) != 0)
                .map(|d| mask & (1 << d) != 0)
                .collect();
            let pdims = parent.dims.clone();
            let mut pcoords = vec![0usize; pdims.len()];
            for poff in 0..parent.sum.len() {
                if parent.count[poff] != 0 {
                    let mut coff = 0usize;
                    let mut ci = 0;
                    for (d, &keep) in kept.iter().enumerate() {
                        if keep {
                            coff = coff * child.dims[ci] + pcoords[d];
                            ci += 1;
                        }
                    }
                    child.sum[coff] += parent.sum[poff];
                    child.count[coff] += parent.count[poff];
                }
                // Odometer-increment parent coordinates.
                for d in (0..pdims.len()).rev() {
                    pcoords[d] += 1;
                    if pcoords[d] < pdims[d] {
                        break;
                    }
                    pcoords[d] = 0;
                }
            }
        }
        stats.push(CuboidStats {
            mask,
            rows_scanned: cuboids[&pmask].allocated() as u64,
            cells: child.populated() as u64,
            wall: t.elapsed(),
            source: DerivationSource::Ancestor { parent: pmask },
        });
        cuboids.insert(mask, child);
    }
    stats.sort_by_key(|s| s.mask);
    Ok(MolapCube { cards, cuboids, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_op;

    fn input(cards: &[usize], rows: usize, seed: u64) -> FactInput {
        let mut f = FactInput::new(cards).unwrap();
        let mut x = seed.max(1);
        for _ in 0..rows {
            let coords: Vec<u32> = cards
                .iter()
                .map(|&c| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % c as u64) as u32
                })
                .collect();
            f.push(&coords, (x % 100) as f64).unwrap();
        }
        f
    }

    #[test]
    fn molap_matches_hash_cube() {
        let f = input(&[4, 5, 3], 200, 7);
        let molap = compute_molap(&f).unwrap();
        let hash = cube_op::compute_shared(&f);
        let converted = molap.to_cube_result();
        assert_eq!(converted.masks(), hash.masks());
        for mask in hash.masks() {
            let hc = hash.cuboid(mask).unwrap();
            let mc = converted.cuboid(mask).unwrap();
            assert_eq!(hc.len(), mc.len(), "mask {mask:b}");
            for (key, state) in hc {
                let m = &mc[key];
                assert!((state.sum - m.sum).abs() < 1e-9);
                assert_eq!(state.count, m.count);
            }
        }
    }

    #[test]
    fn dense_lookup() {
        let mut f = FactInput::new(&[2, 2]).unwrap();
        f.push(&[0, 1], 3.0).unwrap();
        f.push(&[1, 0], 4.0).unwrap();
        f.push(&[1, 0], 5.0).unwrap();
        let m = compute_molap(&f).unwrap();
        assert_eq!(m.get_all(&[Some(1), Some(0)]), Some((9.0, 2)));
        assert_eq!(m.get_all(&[Some(0), Some(0)]), None);
        assert_eq!(m.get_all(&[None, None]), Some((12.0, 3)));
        assert_eq!(m.get_all(&[None, Some(0)]), Some((9.0, 2)));
        // Out-of-range key.
        assert_eq!(m.cuboid(0b11).unwrap().get(&[5, 0]), None);
    }

    #[test]
    fn allocation_bill_is_product_sum() {
        let f = input(&[3, 4], 10, 1);
        let m = compute_molap(&f).unwrap();
        // 12 + 3 + 4 + 1 = 20 cells.
        assert_eq!(m.allocated_cells(), 20);
    }

    #[test]
    fn allocation_guard_trips() {
        let f = FactInput::new(&[2048, 2048, 64]).unwrap();
        assert!(compute_molap(&f).is_err());
    }

    #[test]
    fn empty_input_yields_empty_cuboids() {
        let f = FactInput::new(&[2, 2]).unwrap();
        let m = compute_molap(&f).unwrap();
        assert_eq!(m.cuboid(0b11).unwrap().populated(), 0);
        assert_eq!(m.get_all(&[None, None]), None);
    }
}
