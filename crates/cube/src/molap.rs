//! MOLAP cube computation: array-based simultaneous aggregation (§6.6,
//! \[ZDN97\]).
//!
//! The multidimensional engine never hashes: each cuboid is a dense
//! linearized array, the base cuboid is filled by offset arithmetic, and
//! every coarser cuboid is swept out of its smallest dense parent. On dense
//! inputs this wins big — no hash probes, perfect locality; on sparse
//! inputs the arrays are mostly empty cells and the relational engines
//! ([`crate::rolap`], [`crate::cube_op::compute_shared`]) win. Experiment
//! E18 locates that crossover.

use std::collections::HashMap;
use std::time::Instant;

use statcube_core::error::{Error, Result};
use statcube_core::measure::AggState;
use statcube_storage::verify::{ChecksumManifest, ScrubReport, Scrubbable};

use crate::cube_op::{CubeResult, CuboidStats, Degradation, DerivationSource, VerifiedCell};
use crate::groupby::Cuboid;
use crate::input::FactInput;

/// Guard against accidentally allocating absurd dense cubes.
const MAX_TOTAL_CELLS: usize = 1 << 27;

/// One dense cuboid: kept-dimension cardinalities plus parallel sum/count
/// arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCuboid {
    dims: Vec<usize>,
    sum: Vec<f64>,
    count: Vec<u64>,
}

impl DenseCuboid {
    fn new(dims: Vec<usize>) -> Self {
        let n: usize = dims.iter().product::<usize>().max(1);
        Self { dims, sum: vec![0.0; n], count: vec![0u64; n] }
    }

    fn offset(&self, key: &[u32]) -> usize {
        let mut off = 0;
        for (d, &k) in key.iter().enumerate() {
            off = off * self.dims[d] + k as usize;
        }
        off
    }

    /// Kept-dimension cardinalities.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// `(sum, count)` of the cell at `key` (kept coordinates in dimension
    /// order); `None` if never touched.
    pub fn get(&self, key: &[u32]) -> Option<(f64, u64)> {
        if key.len() != self.dims.len()
            || key.iter().zip(&self.dims).any(|(&k, &d)| k as usize >= d)
        {
            return None;
        }
        let off = self.offset(key);
        if self.count[off] == 0 {
            None
        } else {
            Some((self.sum[off], self.count[off]))
        }
    }

    /// Number of populated cells.
    pub fn populated(&self) -> usize {
        self.count.iter().filter(|&&c| c > 0).count()
    }

    /// Allocated cells (the dense footprint).
    pub fn allocated(&self) -> usize {
        self.sum.len()
    }
}

impl Scrubbable for DenseCuboid {
    fn object_name(&self) -> String {
        format!("DenseCuboid{:?}", self.dims)
    }

    fn content_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * self.dims.len() + 16 * self.sum.len());
        for &d in &self.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &s in &self.sum {
            out.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        for &c in &self.count {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    fn inject_bitflip(&mut self, bit: u64) {
        if self.sum.is_empty() {
            return;
        }
        let b = bit % (self.sum.len() as u64 * 64);
        let v = &mut self.sum[(b / 64) as usize];
        *v = f64::from_bits(v.to_bits() ^ (1u64 << (b % 64)));
    }
}

/// Sums the one cell of cuboid `mask` at `key` out of a healthy ancestor —
/// the single-cell form of the array sweep.
fn cell_from_parent(
    parent: &DenseCuboid,
    pmask: u32,
    mask: u32,
    key: &[u32],
) -> Option<(f64, u64)> {
    // For each requested dimension: its position within the parent's
    // coordinates and the wanted member.
    let mut want: Vec<(usize, u32)> = Vec::new();
    let mut ki = 0;
    let mut pos = 0;
    for d in 0..32 {
        if pmask & (1 << d) != 0 {
            if mask & (1 << d) != 0 {
                want.push((pos, key[ki]));
                ki += 1;
            }
            pos += 1;
        }
    }
    let mut sum = 0.0;
    let mut count = 0u64;
    let mut pcoords = vec![0u32; parent.dims.len()];
    for off in 0..parent.sum.len() {
        if parent.count[off] > 0 && want.iter().all(|&(p, w)| pcoords[p] == w) {
            sum += parent.sum[off];
            count += parent.count[off];
        }
        for d in (0..parent.dims.len()).rev() {
            pcoords[d] += 1;
            if (pcoords[d] as usize) < parent.dims[d] {
                break;
            }
            pcoords[d] = 0;
        }
    }
    if count == 0 {
        None
    } else {
        Some((sum, count))
    }
}

/// A fully computed MOLAP cube: one dense cuboid per mask.
///
/// Equality compares cardinalities and cuboids; `stats` is timing
/// metadata and is excluded.
#[derive(Debug, Clone)]
pub struct MolapCube {
    cards: Vec<usize>,
    cuboids: HashMap<u32, DenseCuboid>,
    stats: Vec<CuboidStats>,
    /// Per-mask checksum manifests; empty until [`MolapCube::seal`].
    seals: HashMap<u32, ChecksumManifest>,
}

impl PartialEq for MolapCube {
    fn eq(&self, other: &Self) -> bool {
        self.cards == other.cards && self.cuboids == other.cuboids
    }
}

impl MolapCube {
    /// The cuboid for `mask`.
    pub fn cuboid(&self, mask: u32) -> Option<&DenseCuboid> {
        self.cuboids.get(&mask)
    }

    /// Per-cuboid computation telemetry (rows scanned = fact rows for the
    /// base pass, parent *allocated* cells for an array sweep).
    pub fn stats(&self) -> &[CuboidStats] {
        &self.stats
    }

    /// `(sum, count)` lookup with full coordinates and `None` = `ALL`.
    pub fn get_all(&self, pattern: &[Option<u32>]) -> Option<(f64, u64)> {
        let mut mask = 0u32;
        let mut key = Vec::new();
        for (d, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                mask |= 1 << d;
                key.push(*c);
            }
        }
        self.cuboids.get(&mask)?.get(&key)
    }

    /// Total allocated cells across all cuboids (the MOLAP memory bill).
    pub fn allocated_cells(&self) -> usize {
        self.cuboids.values().map(DenseCuboid::allocated).sum()
    }

    /// Seals every cuboid under a per-mask checksum manifest; verified
    /// lookups ([`MolapCube::get_all_verified`]) check against these.
    pub fn seal(&mut self) {
        self.seals = self.cuboids.iter().map(|(&m, c)| (m, ChecksumManifest::seal(c))).collect();
    }

    /// Test/chaos hook: flips one stored bit of cuboid `mask`'s sum array.
    pub fn corrupt(&mut self, mask: u32, bit: u64) -> Result<()> {
        self.cuboids
            .get_mut(&mask)
            .ok_or_else(|| Error::InvalidSchema(format!("no cuboid for mask {mask:b}")))?
            .inject_bitflip(bit);
        Ok(())
    }

    /// Verifies cuboid `mask` against its seal. Unsealed cuboids pass (the
    /// seal is opt-in); a sealed cuboid whose content changed fails with
    /// [`Error::ChecksumMismatch`] naming the mask.
    pub fn verify(&self, mask: u32) -> Result<()> {
        let c = self
            .cuboids
            .get(&mask)
            .ok_or_else(|| Error::InvalidSchema(format!("no cuboid for mask {mask:b}")))?;
        if let Some(seal) = self.seals.get(&mask) {
            seal.verify_all(c, None).map_err(|e| match e {
                Error::ChecksumMismatch { page, .. } => {
                    Error::ChecksumMismatch { object: format!("molap cuboid {mask:#b}"), page }
                }
                other => other,
            })?;
        }
        Ok(())
    }

    /// Scrubs every sealed cuboid and reports all failing pages.
    pub fn scrub(&self) -> ScrubReport {
        let mut masks: Vec<u32> = self.seals.keys().copied().collect();
        masks.sort_unstable();
        let mut report = ScrubReport::default();
        for m in masks {
            report.merge(self.seals[&m].scrub(&self.cuboids[&m], None));
        }
        report
    }

    /// [`MolapCube::scrub`], converted to a typed error on first failure.
    pub fn verify_all(&self) -> Result<ScrubReport> {
        self.scrub().into_result()
    }

    /// [`MolapCube::get_all`] through verification: the preferred (exactly
    /// matching or smallest covering) cuboid is checksum-verified before its
    /// cells are trusted; on failure the cell is recomputed from the next
    /// smallest healthy ancestor, with the detour recorded as a
    /// [`Degradation`]. Every covering cuboid corrupt ⇒
    /// [`Error::NoHealthySource`].
    pub fn get_all_verified(&self, pattern: &[Option<u32>]) -> Result<VerifiedCell> {
        if pattern.len() != self.cards.len() {
            return Err(Error::ArityMismatch { expected: self.cards.len(), got: pattern.len() });
        }
        let mut mask = 0u32;
        let mut key = Vec::new();
        for (d, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                mask |= 1 << d;
                key.push(*c);
            }
        }
        // Covering cuboids in ascending sweep-cost (allocated cells) order.
        let mut candidates: Vec<(u32, u64)> = self
            .cuboids
            .iter()
            .filter(|(&v, _)| mask & !v == 0)
            .map(|(&v, c)| (v, c.allocated() as u64))
            .collect();
        candidates.sort_unstable_by_key(|&(v, cost)| (cost, v));
        if candidates.is_empty() {
            return Err(Error::InvalidSchema(format!("no cuboid covers mask {mask:b}")));
        }
        let first_choice_cost = candidates[0].1;
        let mut failed: Vec<(u32, Error)> = Vec::new();
        for &(v, cost) in &candidates {
            match self.verify(v) {
                Ok(()) => {
                    let cell = if v == mask {
                        self.cuboids[&v].get(&key)
                    } else {
                        cell_from_parent(&self.cuboids[&v], v, mask, &key)
                    };
                    let degraded = if failed.is_empty() {
                        None
                    } else {
                        Some(Degradation {
                            requested: mask,
                            served_from: v,
                            failed,
                            extra_cells: cost.saturating_sub(first_choice_cost),
                        })
                    };
                    return Ok((cell, degraded));
                }
                Err(e) => failed.push((v, e)),
            }
        }
        Err(Error::NoHealthySource { requested: mask, tried: failed.len() })
    }

    /// Converts to the hash-based [`CubeResult`] for cross-engine equality
    /// tests. Order statistics are not tracked by the dense engine, so the
    /// states carry sum/count only.
    pub fn to_cube_result(&self) -> CubeResult {
        let mut cuboids: HashMap<u32, Cuboid> = HashMap::with_capacity(self.cuboids.len());
        for (&mask, dense) in &self.cuboids {
            let mut c: Cuboid = HashMap::with_capacity(dense.populated());
            let n_dims = dense.dims.len();
            let mut key = vec![0u32; n_dims];
            for off in 0..dense.sum.len() {
                if dense.count[off] == 0 {
                    continue;
                }
                let mut rem = off;
                for d in (0..n_dims).rev() {
                    key[d] = (rem % dense.dims[d]) as u32;
                    rem /= dense.dims[d];
                }
                c.insert(
                    key.clone().into_boxed_slice(),
                    AggState::from_sum_count(dense.sum[off], dense.count[off]),
                );
            }
            cuboids.insert(mask, c);
        }
        CubeResult::from_parts(self.cards.len(), cuboids, self.stats.clone())
    }
}

/// Computes the full cube with dense arrays.
#[allow(clippy::needless_range_loop)] // offset arithmetic over parallel arrays
pub fn compute_molap(input: &FactInput) -> Result<MolapCube> {
    let n = input.dim_count();
    let cards = input.cards().to_vec();
    // Pre-flight the allocation bill.
    let mut total_cells = 0usize;
    for mask in 0..(1u32 << n) {
        let mut prod = 1usize;
        for (d, &card) in cards.iter().enumerate() {
            if mask & (1 << d) != 0 {
                prod = prod.saturating_mul(card);
            }
        }
        total_cells = total_cells.saturating_add(prod);
    }
    if total_cells > MAX_TOTAL_CELLS {
        return Err(Error::InvalidSchema(format!(
            "MOLAP cube would allocate {total_cells} cells (limit {MAX_TOTAL_CELLS})"
        )));
    }

    let full = (1u32 << n) - 1;
    let mut cuboids: HashMap<u32, DenseCuboid> = HashMap::with_capacity(1 << n);
    let mut stats: Vec<CuboidStats> = Vec::with_capacity(1 << n);

    // Base pass: offset arithmetic, no hashing.
    let t0 = Instant::now();
    let mut base = DenseCuboid::new(cards.clone());
    for row in 0..input.len() {
        let mut off = 0usize;
        for d in 0..n {
            off = off * cards[d] + input.dim(d)[row] as usize;
        }
        base.sum[off] += input.measure()[row];
        base.count[off] += 1;
    }
    stats.push(CuboidStats {
        mask: full,
        rows_scanned: input.len() as u64,
        cells: base.populated() as u64,
        wall: t0.elapsed(),
        source: DerivationSource::BaseFacts { partitions: 1 },
    });
    cuboids.insert(full, base);

    // Derive each coarser cuboid from its smallest computed parent by a
    // single array sweep.
    let mut masks: Vec<u32> = (0..full).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        let mut best: Option<(u32, usize)> = None;
        for d in 0..n {
            let bit = 1u32 << d;
            if mask & bit != 0 {
                continue;
            }
            let parent = mask | bit;
            if let Some(p) = cuboids.get(&parent) {
                let size = p.allocated();
                if best.map(|(_, s)| size < s).unwrap_or(true) {
                    best = Some((parent, size));
                }
            }
        }
        // A direct parent always exists in descending-popcount order; the
        // base cuboid is a correct fallback if that invariant ever broke.
        let pmask = best.map_or(full, |(p, _)| p);
        let t = Instant::now();
        let child_dims: Vec<usize> =
            (0..n).filter(|d| mask & (1 << d) != 0).map(|d| cards[d]).collect();
        let mut child = DenseCuboid::new(child_dims);
        {
            let parent = &cuboids[&pmask];
            // For each parent axis, whether the child keeps it.
            let kept: Vec<bool> =
                (0..n).filter(|d| pmask & (1 << d) != 0).map(|d| mask & (1 << d) != 0).collect();
            let pdims = parent.dims.clone();
            let mut pcoords = vec![0usize; pdims.len()];
            for poff in 0..parent.sum.len() {
                if parent.count[poff] != 0 {
                    let mut coff = 0usize;
                    let mut ci = 0;
                    for (d, &keep) in kept.iter().enumerate() {
                        if keep {
                            coff = coff * child.dims[ci] + pcoords[d];
                            ci += 1;
                        }
                    }
                    child.sum[coff] += parent.sum[poff];
                    child.count[coff] += parent.count[poff];
                }
                // Odometer-increment parent coordinates.
                for d in (0..pdims.len()).rev() {
                    pcoords[d] += 1;
                    if pcoords[d] < pdims[d] {
                        break;
                    }
                    pcoords[d] = 0;
                }
            }
        }
        stats.push(CuboidStats {
            mask,
            rows_scanned: cuboids[&pmask].allocated() as u64,
            cells: child.populated() as u64,
            wall: t.elapsed(),
            source: DerivationSource::Ancestor { parent: pmask },
        });
        cuboids.insert(mask, child);
    }
    stats.sort_by_key(|s| s.mask);
    Ok(MolapCube { cards, cuboids, stats, seals: HashMap::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_op;

    fn input(cards: &[usize], rows: usize, seed: u64) -> FactInput {
        let mut f = FactInput::new(cards).unwrap();
        let mut x = seed.max(1);
        for _ in 0..rows {
            let coords: Vec<u32> = cards
                .iter()
                .map(|&c| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % c as u64) as u32
                })
                .collect();
            f.push(&coords, (x % 100) as f64).unwrap();
        }
        f
    }

    #[test]
    fn molap_matches_hash_cube() {
        let f = input(&[4, 5, 3], 200, 7);
        let molap = compute_molap(&f).unwrap();
        let hash = cube_op::compute_shared(&f);
        let converted = molap.to_cube_result();
        assert_eq!(converted.masks(), hash.masks());
        for mask in hash.masks() {
            let hc = hash.cuboid(mask).unwrap();
            let mc = converted.cuboid(mask).unwrap();
            assert_eq!(hc.len(), mc.len(), "mask {mask:b}");
            for (key, state) in hc {
                let m = &mc[key];
                assert!((state.sum - m.sum).abs() < 1e-9);
                assert_eq!(state.count, m.count);
            }
        }
    }

    #[test]
    fn dense_lookup() {
        let mut f = FactInput::new(&[2, 2]).unwrap();
        f.push(&[0, 1], 3.0).unwrap();
        f.push(&[1, 0], 4.0).unwrap();
        f.push(&[1, 0], 5.0).unwrap();
        let m = compute_molap(&f).unwrap();
        assert_eq!(m.get_all(&[Some(1), Some(0)]), Some((9.0, 2)));
        assert_eq!(m.get_all(&[Some(0), Some(0)]), None);
        assert_eq!(m.get_all(&[None, None]), Some((12.0, 3)));
        assert_eq!(m.get_all(&[None, Some(0)]), Some((9.0, 2)));
        // Out-of-range key.
        assert_eq!(m.cuboid(0b11).unwrap().get(&[5, 0]), None);
    }

    #[test]
    fn allocation_bill_is_product_sum() {
        let f = input(&[3, 4], 10, 1);
        let m = compute_molap(&f).unwrap();
        // 12 + 3 + 4 + 1 = 20 cells.
        assert_eq!(m.allocated_cells(), 20);
    }

    #[test]
    fn allocation_guard_trips() {
        let f = FactInput::new(&[2048, 2048, 64]).unwrap();
        assert!(compute_molap(&f).is_err());
    }

    #[test]
    fn empty_input_yields_empty_cuboids() {
        let f = FactInput::new(&[2, 2]).unwrap();
        let m = compute_molap(&f).unwrap();
        assert_eq!(m.cuboid(0b11).unwrap().populated(), 0);
        assert_eq!(m.get_all(&[None, None]), None);
    }

    #[test]
    fn verified_lookup_falls_back_across_the_lattice() {
        let f = input(&[4, 5, 3], 200, 7);
        let mut m = compute_molap(&f).unwrap();
        m.seal();
        assert!(m.verify_all().is_ok());
        // Corrupt the {d0} cuboid — the preferred source for (Some(x), ALL,
        // ALL) lookups.
        m.corrupt(0b001, 13).unwrap();
        assert!(m.verify(0b001).is_err());
        assert!(m.verify(0b111).is_ok());
        assert_eq!(m.scrub().failures.len(), 1);
        for x in 0..4u32 {
            let pattern = [Some(x), None, None];
            let (cell, degraded) = m.get_all_verified(&pattern).unwrap();
            // Exact despite the corruption: recomputed from a healthy
            // ancestor (oracle = the untouched base cuboid).
            let oracle = cell_from_parent(m.cuboid(0b111).unwrap(), 0b111, 0b001, &[x]);
            assert_eq!(cell, oracle);
            let d = degraded.expect("detour must be recorded");
            assert_eq!(d.requested, 0b001);
            assert_ne!(d.served_from, 0b001);
            assert!(d.failed.iter().any(|(mask, _)| *mask == 0b001));
            assert!(d.extra_cells > 0);
        }
        // A lookup not covered by the corrupt cuboid stays clean.
        let (_, degraded) = m.get_all_verified(&[None, Some(1), None]).unwrap();
        assert!(degraded.is_none());
    }

    #[test]
    fn all_covering_cuboids_corrupt_is_typed() {
        let f = input(&[3, 3], 50, 2);
        let mut m = compute_molap(&f).unwrap();
        m.seal();
        for mask in [0b00, 0b01, 0b10, 0b11] {
            m.corrupt(mask, 1).unwrap();
        }
        match m.get_all_verified(&[None, None]) {
            Err(Error::NoHealthySource { requested, tried }) => {
                assert_eq!(requested, 0);
                assert_eq!(tried, 4);
            }
            other => panic!("expected NoHealthySource, got {other:?}"),
        }
        // Unsealed cubes skip verification entirely.
        let mut unsealed = compute_molap(&f).unwrap();
        unsealed.corrupt(0b11, 1).unwrap();
        assert!(unsealed.get_all_verified(&[None, None]).is_ok());
    }
}
