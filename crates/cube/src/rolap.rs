//! ROLAP cube computation: sort-based aggregation over tuples (§6.6).
//!
//! The relational engine works on `(key, sum, count)` tuples: the base
//! cuboid is produced by sorting the fact tuples and merging equal-key
//! runs; every coarser cuboid is derived from its smallest computed parent
//! by projecting keys, re-sorting, and merging runs. No dense allocation —
//! cost scales with *populated* cells, which is why ROLAP wins on sparse
//! cubes and loses to [`crate::molap`] on dense ones.

use std::collections::HashMap;
use std::time::Instant;

use statcube_core::measure::AggState;

use crate::cube_op::{CubeResult, CuboidStats, DerivationSource};
use crate::groupby::Cuboid;
use crate::input::FactInput;

/// One sorted cuboid: `(key, sum, count)` tuples in ascending key order.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedCuboid {
    rows: Vec<(Box<[u32]>, f64, u64)>,
}

impl SortedCuboid {
    /// The sorted tuples.
    pub fn rows(&self) -> &[(Box<[u32]>, f64, u64)] {
        &self.rows
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Binary-search lookup.
    pub fn get(&self, key: &[u32]) -> Option<(f64, u64)> {
        self.rows
            .binary_search_by(|(k, _, _)| (**k).cmp(key))
            .ok()
            .map(|i| (self.rows[i].1, self.rows[i].2))
    }

    fn from_unsorted(mut rows: Vec<(Box<[u32]>, f64, u64)>) -> Self {
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(Box<[u32]>, f64, u64)> = Vec::with_capacity(rows.len());
        for (key, sum, count) in rows {
            match merged.last_mut() {
                Some((k, s, c)) if **k == *key => {
                    *s += sum;
                    *c += count;
                }
                _ => merged.push((key, sum, count)),
            }
        }
        Self { rows: merged }
    }
}

/// A fully computed sort-based ROLAP cube.
///
/// Equality compares dimensions and cuboids; `stats` is timing metadata
/// and is excluded.
#[derive(Debug, Clone)]
pub struct RolapCube {
    n_dims: usize,
    cuboids: HashMap<u32, SortedCuboid>,
    stats: Vec<CuboidStats>,
}

impl PartialEq for RolapCube {
    fn eq(&self, other: &Self) -> bool {
        self.n_dims == other.n_dims && self.cuboids == other.cuboids
    }
}

impl RolapCube {
    /// The cuboid for `mask`.
    pub fn cuboid(&self, mask: u32) -> Option<&SortedCuboid> {
        self.cuboids.get(&mask)
    }

    /// Per-cuboid computation telemetry (rows scanned = fact rows for the
    /// base sort, parent populated cells for a projection).
    pub fn stats(&self) -> &[CuboidStats] {
        &self.stats
    }

    /// `(sum, count)` lookup with full coordinates and `None` = `ALL`.
    pub fn get_all(&self, pattern: &[Option<u32>]) -> Option<(f64, u64)> {
        let mut mask = 0u32;
        let mut key = Vec::new();
        for (d, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                mask |= 1 << d;
                key.push(*c);
            }
        }
        self.cuboids.get(&mask)?.get(&key)
    }

    /// Total populated cells across all cuboids.
    pub fn total_cells(&self) -> usize {
        self.cuboids.values().map(SortedCuboid::len).sum()
    }

    /// Converts to the hash-based [`CubeResult`] for cross-engine equality
    /// tests (sum/count states).
    pub fn to_cube_result(&self) -> CubeResult {
        let mut out: HashMap<u32, Cuboid> = HashMap::with_capacity(self.cuboids.len());
        for (&mask, cuboid) in &self.cuboids {
            let mut c: Cuboid = HashMap::with_capacity(cuboid.len());
            for (key, sum, count) in &cuboid.rows {
                c.insert(key.clone(), AggState::from_sum_count(*sum, *count));
            }
            out.insert(mask, c);
        }
        CubeResult::from_parts(self.n_dims, out, self.stats.clone())
    }
}

/// Computes the full cube sort-based.
pub fn compute_rolap(input: &FactInput) -> RolapCube {
    let n = input.dim_count();
    let full = (1u32 << n) - 1;
    let mut cuboids: HashMap<u32, SortedCuboid> = HashMap::with_capacity(1 << n);
    let mut stats: Vec<CuboidStats> = Vec::with_capacity(1 << n);

    // Base cuboid: sort the raw facts.
    let t0 = Instant::now();
    let base_rows: Vec<(Box<[u32]>, f64, u64)> = (0..input.len())
        .map(|row| (input.coords(row).into_boxed_slice(), input.measure()[row], 1u64))
        .collect();
    let base = SortedCuboid::from_unsorted(base_rows);
    stats.push(CuboidStats {
        mask: full,
        rows_scanned: input.len() as u64,
        cells: base.len() as u64,
        wall: t0.elapsed(),
        source: DerivationSource::BaseFacts { partitions: 1 },
    });
    cuboids.insert(full, base);

    let mut masks: Vec<u32> = (0..full).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        let mut best: Option<(u32, usize)> = None;
        for d in 0..n {
            let bit = 1u32 << d;
            if mask & bit != 0 {
                continue;
            }
            let parent = mask | bit;
            if let Some(p) = cuboids.get(&parent) {
                if best.map(|(_, s)| p.len() < s).unwrap_or(true) {
                    best = Some((parent, p.len()));
                }
            }
        }
        let (pmask, _) = best.expect("ancestor exists");
        let t = Instant::now();
        let parent = &cuboids[&pmask];
        // Positions within the parent key that the child keeps.
        let mut keep = Vec::new();
        let mut pos = 0;
        for d in 0..n {
            if pmask & (1 << d) != 0 {
                if mask & (1 << d) != 0 {
                    keep.push(pos);
                }
                pos += 1;
            }
        }
        let projected: Vec<(Box<[u32]>, f64, u64)> = parent
            .rows
            .iter()
            .map(|(k, s, c)| {
                let key: Box<[u32]> = keep.iter().map(|&p| k[p]).collect();
                (key, *s, *c)
            })
            .collect();
        let child = SortedCuboid::from_unsorted(projected);
        stats.push(CuboidStats {
            mask,
            rows_scanned: cuboids[&pmask].len() as u64,
            cells: child.len() as u64,
            wall: t.elapsed(),
            source: DerivationSource::Ancestor { parent: pmask },
        });
        cuboids.insert(mask, child);
    }
    stats.sort_by_key(|s| s.mask);
    RolapCube { n_dims: n, cuboids, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_op;

    fn input(cards: &[usize], rows: usize, seed: u64) -> FactInput {
        let mut f = FactInput::new(cards).unwrap();
        let mut x = seed.max(1);
        for _ in 0..rows {
            let coords: Vec<u32> = cards
                .iter()
                .map(|&c| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % c as u64) as u32
                })
                .collect();
            f.push(&coords, (x % 100) as f64).unwrap();
        }
        f
    }

    #[test]
    fn rolap_matches_hash_cube() {
        let f = input(&[5, 3, 4], 300, 11);
        let rolap = compute_rolap(&f).to_cube_result();
        let hash = cube_op::compute_shared(&f);
        assert_eq!(rolap.masks(), hash.masks());
        for mask in hash.masks() {
            let hc = hash.cuboid(mask).unwrap();
            let rc = rolap.cuboid(mask).unwrap();
            assert_eq!(hc.len(), rc.len(), "mask {mask:b}");
            for (key, state) in hc {
                let r = &rc[key];
                assert!((state.sum - r.sum).abs() < 1e-9);
                assert_eq!(state.count, r.count);
            }
        }
    }

    #[test]
    fn sorted_lookup() {
        let mut f = FactInput::new(&[2, 3]).unwrap();
        f.push(&[1, 2], 5.0).unwrap();
        f.push(&[1, 2], 6.0).unwrap();
        f.push(&[0, 0], 1.0).unwrap();
        let r = compute_rolap(&f);
        assert_eq!(r.get_all(&[Some(1), Some(2)]), Some((11.0, 2)));
        assert_eq!(r.get_all(&[Some(0), Some(2)]), None);
        assert_eq!(r.get_all(&[None, None]), Some((12.0, 3)));
        let base = r.cuboid(0b11).unwrap();
        assert_eq!(base.len(), 2);
        // Rows come out key-sorted.
        assert!(base.rows()[0].0 < base.rows()[1].0);
    }

    #[test]
    fn cells_scale_with_population_not_cross_product() {
        // Huge cross product, 50 facts: ROLAP touches ~50·2^n tuples.
        let f = input(&[1000, 1000, 1000], 50, 3);
        let r = compute_rolap(&f);
        assert!(r.total_cells() <= 50 * 8);
        assert!(!r.cuboid(0).unwrap().is_empty());
    }

    #[test]
    fn empty_input() {
        let f = FactInput::new(&[2, 2]).unwrap();
        let r = compute_rolap(&f);
        assert_eq!(r.total_cells(), 0);
        assert_eq!(r.get_all(&[None, None]), None);
    }
}
