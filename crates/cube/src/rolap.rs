//! ROLAP cube computation: sort-based aggregation over tuples (§6.6).
//!
//! The relational engine works on `(key, sum, count)` tuples: the base
//! cuboid is produced by sorting the fact tuples and merging equal-key
//! runs; every coarser cuboid is derived from its smallest computed parent
//! by projecting keys, re-sorting, and merging runs. No dense allocation —
//! cost scales with *populated* cells, which is why ROLAP wins on sparse
//! cubes and loses to [`crate::molap`] on dense ones.

use std::collections::HashMap;
use std::time::Instant;

use statcube_core::error::{Error, Result};
use statcube_core::measure::AggState;
use statcube_storage::verify::{ChecksumManifest, ScrubReport, Scrubbable};

use crate::cube_op::{CubeResult, CuboidStats, Degradation, DerivationSource, VerifiedCell};
use crate::groupby::Cuboid;
use crate::input::FactInput;

/// One sorted cuboid: `(key, sum, count)` tuples in ascending key order.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedCuboid {
    rows: Vec<(Box<[u32]>, f64, u64)>,
}

impl SortedCuboid {
    /// The sorted tuples.
    pub fn rows(&self) -> &[(Box<[u32]>, f64, u64)] {
        &self.rows
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Binary-search lookup.
    pub fn get(&self, key: &[u32]) -> Option<(f64, u64)> {
        self.rows
            .binary_search_by(|(k, _, _)| (**k).cmp(key))
            .ok()
            .map(|i| (self.rows[i].1, self.rows[i].2))
    }

    fn from_unsorted(mut rows: Vec<(Box<[u32]>, f64, u64)>) -> Self {
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(Box<[u32]>, f64, u64)> = Vec::with_capacity(rows.len());
        for (key, sum, count) in rows {
            match merged.last_mut() {
                Some((k, s, c)) if **k == *key => {
                    *s += sum;
                    *c += count;
                }
                _ => merged.push((key, sum, count)),
            }
        }
        Self { rows: merged }
    }
}

impl Scrubbable for SortedCuboid {
    fn object_name(&self) -> String {
        format!("SortedCuboid({} rows)", self.rows.len())
    }

    fn content_bytes(&self) -> Vec<u8> {
        let key_len = self.rows.first().map_or(0, |(k, _, _)| k.len());
        let mut out = Vec::with_capacity(16 + self.rows.len() * (key_len * 4 + 16));
        out.extend_from_slice(&(self.rows.len() as u64).to_le_bytes());
        out.extend_from_slice(&(key_len as u64).to_le_bytes());
        for (key, sum, count) in &self.rows {
            for &k in key.iter() {
                out.extend_from_slice(&k.to_le_bytes());
            }
            out.extend_from_slice(&sum.to_bits().to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out
    }

    fn inject_bitflip(&mut self, bit: u64) {
        if self.rows.is_empty() {
            return;
        }
        let b = bit % (self.rows.len() as u64 * 64);
        let row = &mut self.rows[(b / 64) as usize];
        row.1 = f64::from_bits(row.1.to_bits() ^ (1u64 << (b % 64)));
    }
}

/// Sums the one cell of cuboid `mask` at `key` out of a healthy ancestor —
/// the single-cell form of the projection.
fn cell_from_parent(
    parent: &SortedCuboid,
    pmask: u32,
    mask: u32,
    key: &[u32],
) -> Option<(f64, u64)> {
    // For each requested dimension: its position within the parent key and
    // the wanted member.
    let mut want: Vec<(usize, u32)> = Vec::new();
    let mut ki = 0;
    let mut pos = 0;
    for d in 0..32 {
        if pmask & (1 << d) != 0 {
            if mask & (1 << d) != 0 {
                want.push((pos, key[ki]));
                ki += 1;
            }
            pos += 1;
        }
    }
    let mut sum = 0.0;
    let mut count = 0u64;
    for (k, s, c) in &parent.rows {
        if want.iter().all(|&(p, w)| k[p] == w) {
            sum += s;
            count += c;
        }
    }
    if count == 0 {
        None
    } else {
        Some((sum, count))
    }
}

/// A fully computed sort-based ROLAP cube.
///
/// Equality compares dimensions and cuboids; `stats` is timing metadata
/// and is excluded.
#[derive(Debug, Clone)]
pub struct RolapCube {
    n_dims: usize,
    cuboids: HashMap<u32, SortedCuboid>,
    stats: Vec<CuboidStats>,
    /// Per-mask checksum manifests; empty until [`RolapCube::seal`].
    seals: HashMap<u32, ChecksumManifest>,
}

impl PartialEq for RolapCube {
    fn eq(&self, other: &Self) -> bool {
        self.n_dims == other.n_dims && self.cuboids == other.cuboids
    }
}

impl RolapCube {
    /// The cuboid for `mask`.
    pub fn cuboid(&self, mask: u32) -> Option<&SortedCuboid> {
        self.cuboids.get(&mask)
    }

    /// Per-cuboid computation telemetry (rows scanned = fact rows for the
    /// base sort, parent populated cells for a projection).
    pub fn stats(&self) -> &[CuboidStats] {
        &self.stats
    }

    /// `(sum, count)` lookup with full coordinates and `None` = `ALL`.
    pub fn get_all(&self, pattern: &[Option<u32>]) -> Option<(f64, u64)> {
        let mut mask = 0u32;
        let mut key = Vec::new();
        for (d, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                mask |= 1 << d;
                key.push(*c);
            }
        }
        self.cuboids.get(&mask)?.get(&key)
    }

    /// Total populated cells across all cuboids.
    pub fn total_cells(&self) -> usize {
        self.cuboids.values().map(SortedCuboid::len).sum()
    }

    /// Seals every cuboid under a per-mask checksum manifest; verified
    /// lookups ([`RolapCube::get_all_verified`]) check against these.
    pub fn seal(&mut self) {
        self.seals = self.cuboids.iter().map(|(&m, c)| (m, ChecksumManifest::seal(c))).collect();
    }

    /// Test/chaos hook: flips one stored bit of cuboid `mask`'s sums.
    pub fn corrupt(&mut self, mask: u32, bit: u64) -> Result<()> {
        self.cuboids
            .get_mut(&mask)
            .ok_or_else(|| Error::InvalidSchema(format!("no cuboid for mask {mask:b}")))?
            .inject_bitflip(bit);
        Ok(())
    }

    /// Verifies cuboid `mask` against its seal. Unsealed cuboids pass (the
    /// seal is opt-in); a sealed cuboid whose content changed fails with
    /// [`Error::ChecksumMismatch`] naming the mask.
    pub fn verify(&self, mask: u32) -> Result<()> {
        let c = self
            .cuboids
            .get(&mask)
            .ok_or_else(|| Error::InvalidSchema(format!("no cuboid for mask {mask:b}")))?;
        if let Some(seal) = self.seals.get(&mask) {
            seal.verify_all(c, None).map_err(|e| match e {
                Error::ChecksumMismatch { page, .. } => {
                    Error::ChecksumMismatch { object: format!("rolap cuboid {mask:#b}"), page }
                }
                other => other,
            })?;
        }
        Ok(())
    }

    /// Scrubs every sealed cuboid and reports all failing pages.
    pub fn scrub(&self) -> ScrubReport {
        let mut masks: Vec<u32> = self.seals.keys().copied().collect();
        masks.sort_unstable();
        let mut report = ScrubReport::default();
        for m in masks {
            report.merge(self.seals[&m].scrub(&self.cuboids[&m], None));
        }
        report
    }

    /// [`RolapCube::scrub`], converted to a typed error on first failure.
    pub fn verify_all(&self) -> Result<ScrubReport> {
        self.scrub().into_result()
    }

    /// [`RolapCube::get_all`] through verification: the preferred (exactly
    /// matching or smallest covering) cuboid is checksum-verified before its
    /// tuples are trusted; on failure the cell is recomputed from the next
    /// smallest healthy ancestor, with the detour recorded as a
    /// [`Degradation`]. Every covering cuboid corrupt ⇒
    /// [`Error::NoHealthySource`].
    pub fn get_all_verified(&self, pattern: &[Option<u32>]) -> Result<VerifiedCell> {
        if pattern.len() != self.n_dims {
            return Err(Error::ArityMismatch { expected: self.n_dims, got: pattern.len() });
        }
        let mut mask = 0u32;
        let mut key = Vec::new();
        for (d, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                mask |= 1 << d;
                key.push(*c);
            }
        }
        // Covering cuboids in ascending scan-cost (populated cells) order.
        let mut candidates: Vec<(u32, u64)> = self
            .cuboids
            .iter()
            .filter(|(&v, _)| mask & !v == 0)
            .map(|(&v, c)| (v, c.len() as u64))
            .collect();
        candidates.sort_unstable_by_key(|&(v, cost)| (cost, v));
        if candidates.is_empty() {
            return Err(Error::InvalidSchema(format!("no cuboid covers mask {mask:b}")));
        }
        let first_choice_cost = candidates[0].1;
        let mut failed: Vec<(u32, Error)> = Vec::new();
        for &(v, cost) in &candidates {
            match self.verify(v) {
                Ok(()) => {
                    let cell = if v == mask {
                        self.cuboids[&v].get(&key)
                    } else {
                        cell_from_parent(&self.cuboids[&v], v, mask, &key)
                    };
                    let degraded = if failed.is_empty() {
                        None
                    } else {
                        Some(Degradation {
                            requested: mask,
                            served_from: v,
                            failed,
                            extra_cells: cost.saturating_sub(first_choice_cost),
                        })
                    };
                    return Ok((cell, degraded));
                }
                Err(e) => failed.push((v, e)),
            }
        }
        Err(Error::NoHealthySource { requested: mask, tried: failed.len() })
    }

    /// Converts to the hash-based [`CubeResult`] for cross-engine equality
    /// tests (sum/count states).
    pub fn to_cube_result(&self) -> CubeResult {
        let mut out: HashMap<u32, Cuboid> = HashMap::with_capacity(self.cuboids.len());
        for (&mask, cuboid) in &self.cuboids {
            let mut c: Cuboid = HashMap::with_capacity(cuboid.len());
            for (key, sum, count) in &cuboid.rows {
                c.insert(key.clone(), AggState::from_sum_count(*sum, *count));
            }
            out.insert(mask, c);
        }
        CubeResult::from_parts(self.n_dims, out, self.stats.clone())
    }
}

/// Computes the full cube sort-based.
pub fn compute_rolap(input: &FactInput) -> RolapCube {
    let n = input.dim_count();
    let full = (1u32 << n) - 1;
    let mut cuboids: HashMap<u32, SortedCuboid> = HashMap::with_capacity(1 << n);
    let mut stats: Vec<CuboidStats> = Vec::with_capacity(1 << n);

    // Base cuboid: sort the raw facts.
    let t0 = Instant::now();
    let base_rows: Vec<(Box<[u32]>, f64, u64)> = (0..input.len())
        .map(|row| (input.coords(row).into_boxed_slice(), input.measure()[row], 1u64))
        .collect();
    let base = SortedCuboid::from_unsorted(base_rows);
    stats.push(CuboidStats {
        mask: full,
        rows_scanned: input.len() as u64,
        cells: base.len() as u64,
        wall: t0.elapsed(),
        source: DerivationSource::BaseFacts { partitions: 1 },
    });
    cuboids.insert(full, base);

    let mut masks: Vec<u32> = (0..full).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        let mut best: Option<(u32, usize)> = None;
        for d in 0..n {
            let bit = 1u32 << d;
            if mask & bit != 0 {
                continue;
            }
            let parent = mask | bit;
            if let Some(p) = cuboids.get(&parent) {
                if best.map(|(_, s)| p.len() < s).unwrap_or(true) {
                    best = Some((parent, p.len()));
                }
            }
        }
        // A direct parent always exists in descending-popcount order; the
        // base cuboid is a correct fallback if that invariant ever broke.
        let pmask = best.map_or(full, |(p, _)| p);
        let t = Instant::now();
        let parent = &cuboids[&pmask];
        // Positions within the parent key that the child keeps.
        let mut keep = Vec::new();
        let mut pos = 0;
        for d in 0..n {
            if pmask & (1 << d) != 0 {
                if mask & (1 << d) != 0 {
                    keep.push(pos);
                }
                pos += 1;
            }
        }
        let projected: Vec<(Box<[u32]>, f64, u64)> = parent
            .rows
            .iter()
            .map(|(k, s, c)| {
                let key: Box<[u32]> = keep.iter().map(|&p| k[p]).collect();
                (key, *s, *c)
            })
            .collect();
        let child = SortedCuboid::from_unsorted(projected);
        stats.push(CuboidStats {
            mask,
            rows_scanned: cuboids[&pmask].len() as u64,
            cells: child.len() as u64,
            wall: t.elapsed(),
            source: DerivationSource::Ancestor { parent: pmask },
        });
        cuboids.insert(mask, child);
    }
    stats.sort_by_key(|s| s.mask);
    RolapCube { n_dims: n, cuboids, stats, seals: HashMap::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_op;

    fn input(cards: &[usize], rows: usize, seed: u64) -> FactInput {
        let mut f = FactInput::new(cards).unwrap();
        let mut x = seed.max(1);
        for _ in 0..rows {
            let coords: Vec<u32> = cards
                .iter()
                .map(|&c| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % c as u64) as u32
                })
                .collect();
            f.push(&coords, (x % 100) as f64).unwrap();
        }
        f
    }

    #[test]
    fn rolap_matches_hash_cube() {
        let f = input(&[5, 3, 4], 300, 11);
        let rolap = compute_rolap(&f).to_cube_result();
        let hash = cube_op::compute_shared(&f);
        assert_eq!(rolap.masks(), hash.masks());
        for mask in hash.masks() {
            let hc = hash.cuboid(mask).unwrap();
            let rc = rolap.cuboid(mask).unwrap();
            assert_eq!(hc.len(), rc.len(), "mask {mask:b}");
            for (key, state) in hc {
                let r = &rc[key];
                assert!((state.sum - r.sum).abs() < 1e-9);
                assert_eq!(state.count, r.count);
            }
        }
    }

    #[test]
    fn sorted_lookup() {
        let mut f = FactInput::new(&[2, 3]).unwrap();
        f.push(&[1, 2], 5.0).unwrap();
        f.push(&[1, 2], 6.0).unwrap();
        f.push(&[0, 0], 1.0).unwrap();
        let r = compute_rolap(&f);
        assert_eq!(r.get_all(&[Some(1), Some(2)]), Some((11.0, 2)));
        assert_eq!(r.get_all(&[Some(0), Some(2)]), None);
        assert_eq!(r.get_all(&[None, None]), Some((12.0, 3)));
        let base = r.cuboid(0b11).unwrap();
        assert_eq!(base.len(), 2);
        // Rows come out key-sorted.
        assert!(base.rows()[0].0 < base.rows()[1].0);
    }

    #[test]
    fn cells_scale_with_population_not_cross_product() {
        // Huge cross product, 50 facts: ROLAP touches ~50·2^n tuples.
        let f = input(&[1000, 1000, 1000], 50, 3);
        let r = compute_rolap(&f);
        assert!(r.total_cells() <= 50 * 8);
        assert!(!r.cuboid(0).unwrap().is_empty());
    }

    #[test]
    fn empty_input() {
        let f = FactInput::new(&[2, 2]).unwrap();
        let r = compute_rolap(&f);
        assert_eq!(r.total_cells(), 0);
        assert_eq!(r.get_all(&[None, None]), None);
    }

    #[test]
    fn verified_lookup_falls_back_across_the_lattice() {
        let f = input(&[5, 3, 4], 300, 11);
        let mut r = compute_rolap(&f);
        r.seal();
        assert!(r.verify_all().is_ok());
        // Corrupt the apex {} — the preferred source for the grand total.
        r.corrupt(0b000, 3).unwrap();
        assert!(r.verify(0b000).is_err());
        assert_eq!(r.scrub().failures.len(), 1);
        let (cell, degraded) = r.get_all_verified(&[None, None, None]).unwrap();
        // Oracle from the untouched base cuboid.
        let oracle = cell_from_parent(r.cuboid(0b111).unwrap(), 0b111, 0, &[]);
        assert_eq!(cell, oracle);
        let d = degraded.expect("detour must be recorded");
        assert_eq!(d.requested, 0);
        assert!(d
            .failed
            .iter()
            .any(|(m, e)| { *m == 0 && matches!(e, Error::ChecksumMismatch { .. }) }));
        // A lookup served by a healthy cuboid stays clean.
        let (_, clean) = r.get_all_verified(&[Some(1), None, None]).unwrap();
        assert!(clean.is_none());
    }

    #[test]
    fn all_covering_cuboids_corrupt_is_typed() {
        let f = input(&[3, 3], 60, 4);
        let mut r = compute_rolap(&f);
        r.seal();
        for mask in [0b00, 0b01, 0b10, 0b11] {
            r.corrupt(mask, 0).unwrap();
        }
        match r.get_all_verified(&[None, None]) {
            Err(Error::NoHealthySource { requested, tried }) => {
                assert_eq!(requested, 0);
                assert_eq!(tried, 4);
            }
            other => panic!("expected NoHealthySource, got {other:?}"),
        }
        // Re-sealing over the current (corrupt) state declares it the new
        // truth — verification is relative to the seal.
        r.seal();
        assert!(r.get_all_verified(&[None, None]).is_ok());
    }
}
