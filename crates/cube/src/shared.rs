//! The concurrent serving layer: epoch-published [`ViewStore`] snapshots,
//! fronted by the cost-aware [`AnswerCache`], shared across reader threads
//! by cheap clone.
//!
//! [`ViewStore`] turned the lattice into a *query* path; this module turns
//! it into a *serving* path. A [`SharedViewStore`] is `Clone + Send +
//! Sync`: hand one clone per reader thread and every `answer`/`answer_cell`
//! call pins a [`StoreSnapshot`] — an `Arc` to the currently published
//! store, cloned out under a read lock held only for the clone itself —
//! and runs entirely on that snapshot: cache first, then (on a miss) the
//! verified page-store path, admitting the result for the next caller.
//!
//! **Writers never block readers.** [`SharedViewStore::apply_delta`] folds
//! the batch into a *successor* store off-lock ([`ViewStore::fold_delta`]:
//! one base aggregation, propagated down the lattice by the AggState
//! monoid) while readers keep serving the current snapshot, then publishes
//! with one pointer swap under the write lock — the "short epoch bump".
//! Readers mid-query keep their pinned snapshot; the store they see is
//! always entirely before or entirely after a maintenance batch, never
//! half-applied. Afterwards only cache entries whose (cuboid, cell)
//! intersects the batch's touched keys drop
//! ([`AnswerCache::invalidate_delta`]); the rest — provided their epoch
//! shows they came from the snapshot the fold consumed, not a reader racing
//! in from an even older one — are re-pinned and keep hitting.
//!
//! Consistency with the fault model:
//!
//! * **degraded answers are never cached** — a lattice-fallback detour is
//!   served but not admitted, so the detour is retried (and the preferred
//!   source used again) as soon as the store heals;
//! * **cache entries pin their source's epoch** — any mutation of a sealed
//!   view (delta reseal, corruption, a persisted injected fault) moves the
//!   file's epoch and orphans dependent entries at the next probe. A
//!   successor store's epochs *continue* its predecessor's sequence, so an
//!   entry admitted by a reader still on the old snapshot can never
//!   falsely match the new store;
//! * **scrub failures evict eagerly** — [`SharedViewStore::scrub`] maps
//!   failing files back to view masks and drops dependent entries at once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use statcube_core::error::{Error, Result};
use statcube_core::measure::AggState;
use statcube_core::plan::{CellBlock, PlanSource, PlannerConfig, PrivacyPolicy, SourceBlock};
use statcube_core::trace;
use statcube_storage::page_store::{FaultPlan, FaultStats};
use statcube_storage::verify::ScrubReport;
use statcube_storage::wal::{
    CrashInjector, CrashPoint, DeltaJournal, Manifest, ManifestCell, RecordKind,
};

use crate::cache::{
    block_bytes, cuboid_bytes, AnswerCache, CacheConfig, CacheKey, CacheStats, CachedValue,
    CELL_BYTES,
};
use crate::cube_op::Degradation;
use crate::durable::{self, RecoveryReport};
use crate::groupby::Cuboid;
use crate::input::FactInput;
use crate::query::{mask_of_view_file, DeltaReport, ViewStore};

/// A cuboid answer from the serving path. On a cache hit the cuboid is the
/// shared resident copy and `cells_scanned` is 0 — nothing was scanned.
#[derive(Debug)]
pub struct SharedAnswer {
    /// The cells of the requested cuboid (shared, do not mutate).
    pub cuboid: Arc<Cuboid>,
    /// The materialized view the answer was (originally) derived from.
    pub source: u32,
    /// Cells scanned to produce this answer; 0 on a cache hit.
    pub cells_scanned: u64,
    /// Whether the answer came from the cache.
    pub cache_hit: bool,
    /// Present when the store had to detour around failed sources; such
    /// answers are never admitted to the cache.
    pub degraded: Option<Degradation>,
}

/// A point/slice answer: one cell's aggregate state (`None` when the cell
/// is empty — itself a cacheable answer).
#[derive(Debug, Clone, Copy)]
pub struct CellAnswer {
    /// The cell's aggregate state, if the cell is populated.
    pub state: Option<AggState>,
    /// Whether the answer came from the cache.
    pub cache_hit: bool,
    /// Whether the backing cuboid answer was degraded (not cached if so).
    pub degraded: bool,
}

/// The simulated durable devices of one durable store: the write-ahead
/// delta journal, the commit-point manifest, and the crash injector that
/// can kill the writer between any two protocol steps.
///
/// The parts are `Arc`-shared handles — clone them out before "killing the
/// process" (dropping the [`SharedViewStore`]) and hand them to
/// [`SharedViewStore::recover`], exactly as a restarted process re-opens
/// the journal and manifest files its predecessor left on disk.
#[derive(Debug, Clone, Default)]
pub struct DurableParts {
    journal: Arc<DeltaJournal>,
    manifest: Arc<ManifestCell>,
    crash: Arc<CrashInjector>,
}

impl DurableParts {
    /// Fresh, empty devices (a new database directory).
    pub fn new() -> Self {
        Self::default()
    }

    /// Devices over an existing journal image (what recovery found on
    /// "disk"); the manifest starts empty — recovery falls back to a full
    /// journal scan.
    pub fn from_journal_image(bytes: Vec<u8>) -> Self {
        Self { journal: Arc::new(DeltaJournal::from_bytes(bytes)), ..Self::default() }
    }

    /// The write-ahead delta journal.
    pub fn journal(&self) -> &DeltaJournal {
        &self.journal
    }

    /// The atomically-swapped commit-point manifest.
    pub fn manifest(&self) -> &ManifestCell {
        &self.manifest
    }

    /// The kill-point injector ([`CrashPoint`]); arming one makes the next
    /// write path panic at that step, exactly once.
    pub fn crash(&self) -> &CrashInjector {
        &self.crash
    }
}

/// Holds the writer mutex and *heals* it on the way out: if the fold
/// panics (an injected crash, or a genuine bug) the guard's drop during
/// unwind poisons the mutex, and without clearing it every future writer
/// would find the lock poisoned forever. The lock guards no data — it only
/// serializes writers — so clearing the poison is sound: the published
/// snapshot is untouched by a failed fold (publication is the last step).
struct WriterLease<'a> {
    lock: &'a Mutex<()>,
    guard: Option<MutexGuard<'a, ()>>,
}

impl<'a> WriterLease<'a> {
    fn acquire(lock: &'a Mutex<()>) -> Self {
        let guard = lock.lock().unwrap_or_else(|p| p.into_inner());
        Self { lock, guard: Some(guard) }
    }
}

impl Drop for WriterLease<'_> {
    fn drop(&mut self) {
        // Drop the inner guard first (this is what poisons the mutex when
        // unwinding), then clear the poison it may have just set.
        self.guard.take();
        self.lock.clear_poison();
    }
}

#[derive(Debug)]
struct Inner {
    /// The published store. Readers clone the `Arc` out (the read lock is
    /// held for the clone only) and run whole queries on the pinned
    /// snapshot; a writer swaps in a successor under the write lock.
    current: RwLock<Arc<ViewStore>>,
    /// Publication counter, bumped inside the write lock so a snapshot's
    /// `(store, generation)` pair is always consistent.
    generation: AtomicU64,
    /// Serializes writers (delta folds, rebuilds). Readers never touch it.
    writer: Mutex<()>,
    cache: AnswerCache,
    /// The durable devices, when this store was built with
    /// [`SharedViewStore::build_durable`] / recovered. `None` keeps the
    /// purely in-memory PR 6 behavior.
    durability: Option<DurableParts>,
}

/// A pinned, immutable view of the store at one publication generation,
/// from [`SharedViewStore::snapshot`]. Holding one blocks nothing: a
/// concurrent delta publishes a *successor* store and this snapshot simply
/// keeps answering from the generation it pinned.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    store: Arc<ViewStore>,
    generation: u64,
}

impl StoreSnapshot {
    /// The publication generation this snapshot pinned (0 before any
    /// delta/rebuild has published).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The pinned store, with the full read-only [`ViewStore`] API.
    pub fn store(&self) -> &ViewStore {
        &self.store
    }
}

/// A sealed view store shared across reader threads, fronted by the
/// cost-aware answer cache. Clones are cheap (`Arc`) and all address the
/// same store and cache.
#[derive(Debug, Clone)]
pub struct SharedViewStore {
    inner: Arc<Inner>,
}

impl SharedViewStore {
    /// Wraps an already built [`ViewStore`] with a cache sized by `config`.
    pub fn new(store: ViewStore, config: CacheConfig) -> Self {
        Self::assemble(store, config, None)
    }

    fn assemble(store: ViewStore, config: CacheConfig, durability: Option<DurableParts>) -> Self {
        Self {
            inner: Arc::new(Inner {
                current: RwLock::new(Arc::new(store)),
                generation: AtomicU64::new(0),
                writer: Mutex::new(()),
                cache: AnswerCache::new(config),
                durability,
            }),
        }
    }

    /// Materializes `selected` (plus the base cuboid) from `input` and
    /// wraps the sealed store; see [`ViewStore::build`].
    pub fn build(input: &FactInput, selected: &[u32], config: CacheConfig) -> Result<Self> {
        Ok(Self::new(ViewStore::build(input, selected)?, config))
    }

    /// [`SharedViewStore::build`] with the crash-consistent durability
    /// layer underneath: fresh devices are created, the built store is
    /// written to the journal as the initial snapshot record, and the
    /// manifest's commit point is installed. Every later
    /// [`SharedViewStore::apply_delta`] journals the batch before folding
    /// it; [`SharedViewStore::recover`] rebuilds the store after a crash.
    pub fn build_durable(input: &FactInput, selected: &[u32], config: CacheConfig) -> Result<Self> {
        Self::build_durable_on(input, selected, config, DurableParts::new())
    }

    /// [`SharedViewStore::build_durable`] over caller-supplied devices
    /// (tests keep the parts to simulate process death and recovery).
    pub fn build_durable_on(
        input: &FactInput,
        selected: &[u32],
        config: CacheConfig,
        parts: DurableParts,
    ) -> Result<Self> {
        let store = ViewStore::build(input, selected)?;
        Self::write_snapshot_record(&parts, &store, 0)?;
        Ok(Self::assemble(store, config, Some(parts)))
    }

    /// Rebuilds a durable store from the journal + manifest a dead process
    /// left behind: restart from the newest intact snapshot, replay the
    /// intact journal tail through the ordinary fold path (idempotent via
    /// record sequence numbers), truncate the torn tail, and resume over
    /// the same devices. See [`crate::durable::recover_replay`] for the
    /// state machine and [`RecoveryReport`] for what happened.
    pub fn recover(parts: &DurableParts, config: CacheConfig) -> Result<(Self, RecoveryReport)> {
        let (store, report) = durable::recover_replay(parts.journal(), parts.manifest())?;
        Ok((Self::assemble(store, config, Some(parts.clone())), report))
    }

    /// The durable devices, when this store has them (`Arc`-shared handles;
    /// cloning is how a test keeps the "disk" across a simulated crash).
    pub fn durable_parts(&self) -> Option<DurableParts> {
        self.inner.durability.clone()
    }

    /// Appends a fresh snapshot record of the currently published store and
    /// moves the manifest's commit point past it, so recovery replays from
    /// here instead of the journal's origin. Errors when the store has no
    /// durability layer.
    pub fn checkpoint(&self) -> Result<()> {
        let _writer = WriterLease::acquire(&self.inner.writer);
        let d = self
            .inner
            .durability
            .as_ref()
            .ok_or_else(|| Error::InvalidSchema("store has no durability layer".into()))?;
        let snap = self.snapshot();
        Self::write_snapshot_record(d, snap.store(), snap.generation())
    }

    fn write_snapshot_record(
        parts: &DurableParts,
        store: &ViewStore,
        generation: u64,
    ) -> Result<()> {
        let payload = durable::encode_snapshot(store);
        let info = parts.journal.append(RecordKind::Snapshot, generation, &payload)?;
        parts.manifest.install(&Manifest {
            snapshot_epoch: generation,
            snapshot_offset: info.offset,
            committed_seq: info.seq,
            committed_offset: info.end_offset,
        });
        Ok(())
    }

    /// Pins the currently published store. The read lock is held only for
    /// the `Arc` clone — microseconds — so readers never wait on a fold in
    /// progress, and holding the snapshot never blocks the next publish.
    pub fn snapshot(&self) -> StoreSnapshot {
        // The lock guards a plain pointer; recover poison rather than
        // spread it.
        let guard = self.inner.current.read().unwrap_or_else(|p| p.into_inner());
        let store = Arc::clone(&guard);
        // Read inside the lock: the writer bumps it while holding the write
        // lock, so (store, generation) is consistent here.
        let generation = self.inner.generation.load(Ordering::Acquire);
        StoreSnapshot { store, generation }
    }

    /// How many maintenance publications (delta folds, rebuilds) have
    /// happened since construction.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    fn publish(&self, store: ViewStore) {
        let mut guard = self.inner.current.write().unwrap_or_else(|p| p.into_inner());
        *guard = Arc::new(store);
        self.inner.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Answers the query for cuboid `mask`: cache first, then the verified
    /// page-store path, admitting non-degraded results (cost-weighted; see
    /// [`crate::cache`]). Many threads may call this concurrently.
    pub fn answer(&self, mask: u32) -> Result<SharedAnswer> {
        let snap = self.snapshot();
        self.answer_on(snap.store(), mask, &PrivacyPolicy::none(), PlannerConfig::default())
    }

    /// [`SharedViewStore::answer`] under an explicit privacy policy and
    /// planner configuration. Cache entries are keyed by the policy's
    /// fingerprint, so an answer enforced under one policy can never be
    /// served to a query running under another — and the same mask cached
    /// under two policies yields two independent entries.
    pub fn answer_with_policy(
        &self,
        mask: u32,
        policy: &PrivacyPolicy,
        config: PlannerConfig,
    ) -> Result<SharedAnswer> {
        let snap = self.snapshot();
        self.answer_on(snap.store(), mask, policy, config)
    }

    fn answer_on(
        &self,
        store: &ViewStore,
        mask: u32,
        policy: &PrivacyPolicy,
        config: PlannerConfig,
    ) -> Result<SharedAnswer> {
        let mut sp = trace::span("cube.cache");
        sp.record("mask", mask as u64);
        let key = CacheKey::Cuboid(mask, policy.fingerprint());
        if let Some((CachedValue::Cuboid(cuboid), source)) =
            self.inner.cache.get(&key, |s| store.view_epoch(s))
        {
            sp.record("hit", 1);
            return Ok(SharedAnswer {
                cuboid,
                source,
                cells_scanned: 0,
                cache_hit: true,
                degraded: None,
            });
        }
        sp.record("hit", 0);
        let ans = store.answer_with_policy(mask, policy, config)?;
        let cuboid = Arc::new(ans.cuboid);
        match (&ans.degraded, store.view_epoch(ans.source)) {
            (None, Some(epoch)) => {
                // Cost = cells scanned × lattice distance travelled: what a
                // repeat derivation would pay, the HRU linear model's unit.
                let distance = u64::from(ans.source.count_ones() - mask.count_ones());
                let cost = ans.cells_scanned.saturating_mul(distance + 1).max(1);
                self.inner.cache.insert(
                    key,
                    CachedValue::Cuboid(Arc::clone(&cuboid)),
                    cuboid_bytes(&cuboid),
                    cost,
                    ans.source,
                    epoch,
                );
            }
            (Some(_), _) => self.inner.cache.note_degraded_skip(),
            (None, None) => {}
        }
        Ok(SharedAnswer {
            cuboid,
            source: ans.source,
            cells_scanned: ans.cells_scanned,
            cache_hit: false,
            degraded: ans.degraded,
        })
    }

    /// Answers a point/slice query: `pattern` has one entry per dimension,
    /// `Some(coord)` fixing a dimension and `None` aggregating it away (the
    /// [`crate::cube_op::CubeResult::get_all`] convention). The cell is
    /// served from the cell cache, the cached cuboid, or the store, in that
    /// order of preference.
    pub fn answer_cell(&self, pattern: &[Option<u32>]) -> Result<CellAnswer> {
        let snap = self.snapshot();
        let store = snap.store();
        let n = store.lattice().dim_count();
        if pattern.len() != n {
            return Err(Error::ArityMismatch { expected: n, got: pattern.len() });
        }
        let mask =
            pattern
                .iter()
                .enumerate()
                .fold(0u32, |m, (i, c)| if c.is_some() { m | (1 << i) } else { m });
        let coords: Box<[u32]> = pattern.iter().flatten().copied().collect();
        let mut sp = trace::span("cube.cache.cell");
        sp.record("mask", mask as u64);
        let key = CacheKey::Cell(mask, 0, coords.clone());
        if let Some((CachedValue::Cell(state), _)) =
            self.inner.cache.get(&key, |s| store.view_epoch(s))
        {
            sp.record("hit", 1);
            return Ok(CellAnswer { state, cache_hit: true, degraded: false });
        }
        sp.record("hit", 0);
        let ans = self.answer_on(store, mask, &PrivacyPolicy::none(), PlannerConfig::default())?;
        let state = ans.cuboid.get(&coords).copied();
        if ans.degraded.is_none() {
            if let Some(epoch) = store.view_epoch(ans.source) {
                // A cell from a resident cuboid is nearly free to rederive;
                // one computed through the store carries that scan cost.
                let cost = ans.cells_scanned.max(1);
                self.inner.cache.insert(
                    key,
                    CachedValue::Cell(state),
                    CELL_BYTES + coords.len() * 4,
                    cost,
                    ans.source,
                    epoch,
                );
            }
        } else {
            self.inner.cache.note_degraded_skip();
        }
        Ok(CellAnswer { state, cache_hit: false, degraded: ans.degraded.is_some() })
    }

    /// Applies an append batch **incrementally and without blocking
    /// readers**: the fold — one base aggregation, lattice propagation,
    /// epoch-continuous resealing — runs entirely off-lock on a pinned
    /// snapshot ([`ViewStore::fold_delta`]) while readers keep serving;
    /// publication is a single pointer swap under the write lock. Then only
    /// cache entries the batch touched are dropped; survivors whose epoch
    /// proves they were derived from the pre-fold snapshot are re-pinned to
    /// the resealed files' epochs and keep hitting (entries raced in from
    /// an older snapshot drop as stale — see
    /// [`AnswerCache::invalidate_delta`]). A batch that fails validation
    /// publishes nothing and drops nothing.
    ///
    /// **Durable stores** run the crash-consistent protocol around the same
    /// fold: validate (so a rejected batch never reaches the log), append
    /// the serialized batch to the write-ahead journal and sync it, fold,
    /// publish, then stamp a commit record and swap the manifest's commit
    /// point. A crash at *any* step — the armed [`CrashPoint`]s bracket all
    /// of them, and a torn journal append surfaces as a typed error with
    /// the batch unacknowledged — leaves a journal from which
    /// [`SharedViewStore::recover`] rebuilds bit-for-bit the pre-delta or
    /// post-delta store, never a hybrid: the batch is acknowledged only
    /// once it is durably replayable.
    pub fn apply_delta(&self, delta: &FactInput) -> Result<DeltaReport> {
        let _writer = WriterLease::acquire(&self.inner.writer);
        let snap = self.snapshot();
        let durable = self.inner.durability.as_ref();
        let mut appended = None;
        if let Some(d) = durable {
            d.crash.hit(CrashPoint::PreAppend);
            snap.store().validate_delta(delta)?;
            let payload = durable::encode_fact_input(delta);
            let info = d.journal.append(RecordKind::Delta, snap.generation() + 1, &payload)?;
            appended = Some(info);
            d.crash.hit(CrashPoint::PostAppend);
        }
        let folded = match durable {
            Some(d) => {
                snap.store().fold_delta_observed(delta, &mut || d.crash.hit(CrashPoint::MidSeal))
            }
            None => snap.store().fold_delta(delta),
        };
        let (next, report) = match folded {
            Ok(ok) => ok,
            Err(e) => {
                // The fold refused a batch that was already journaled
                // (validation covers every refusal in practice, so this is
                // belt-and-braces): rewind the log so recovery can never
                // replay a batch this store rejected.
                if let (Some(d), Some(info)) = (durable, appended) {
                    d.journal.truncate_image(info.offset);
                }
                return Err(e);
            }
        };
        if let Some(d) = durable {
            d.crash.hit(CrashPoint::PrePublish);
        }
        self.publish(next);
        let fresh = self.snapshot();
        self.inner.cache.invalidate_delta(
            &report.touched_base,
            |s| snap.store().view_epoch(s),
            |s| fresh.store().view_epoch(s),
        );
        if let (Some(d), Some(info)) = (durable, appended) {
            d.crash.hit(CrashPoint::PreCommitRecord);
            let end = d.journal.append(
                RecordKind::Commit,
                fresh.generation(),
                &info.seq.to_le_bytes(),
            )?;
            let prev = d.manifest.load().ok().flatten().unwrap_or_default();
            d.manifest.install(&Manifest {
                committed_seq: info.seq,
                committed_offset: end.end_offset,
                ..prev
            });
        }
        Ok(report)
    }

    /// Recomputes every materialized view from `facts` and swaps the result
    /// in wholesale, dropping the whole cache — the pre-incremental
    /// maintenance path, kept for full re-materializations and as the
    /// baseline exp27 measures [`SharedViewStore::apply_delta`] against.
    /// The successor's file epochs continue the current store's, so entries
    /// admitted by readers mid-swap can never falsely match it. On a durable
    /// store the rebuilt content is checkpointed — a fresh snapshot record
    /// and manifest — since no journaled delta could re-derive it.
    pub fn rebuild(&self, facts: &FactInput) -> Result<()> {
        let _writer = WriterLease::acquire(&self.inner.writer);
        let snap = self.snapshot();
        let next = ViewStore::build(facts, &snap.store().materialized())?;
        next.succeed(snap.store());
        self.publish(next);
        self.inner.cache.clear();
        if let Some(d) = self.inner.durability.as_ref() {
            let fresh = self.snapshot();
            Self::write_snapshot_record(d, fresh.store(), fresh.generation())?;
        }
        Ok(())
    }

    /// Chaos hook: corrupts view `mask`'s sealed file and eagerly evicts
    /// every cache entry derived from it (the epoch bump would catch them
    /// lazily; scrub/corrupt paths evict at once).
    pub fn corrupt_view(&self, mask: u32, bit: u64) -> Result<()> {
        self.snapshot().store().corrupt_view(mask, bit)?;
        self.inner.cache.invalidate_source(mask);
        Ok(())
    }

    /// Maintenance scrub: verifies every sealed page and evicts cache
    /// entries whose source view failed, so later probes re-derive (and
    /// detour) instead of serving results pinned to a corrupt file.
    pub fn scrub(&self) -> ScrubReport {
        let snap = self.snapshot();
        let report = snap.store().scrub();
        for failure in &report.failures {
            if let Some(mask) = mask_of_view_file(&failure.object) {
                self.inner.cache.invalidate_source(mask);
            }
        }
        report
    }

    /// [`SharedViewStore::scrub`], converted to a typed error on first
    /// failure (dependent cache entries are still evicted).
    pub fn verify_all(&self) -> Result<ScrubReport> {
        self.scrub().into_result()
    }

    /// Arms fault injection on the published store. A later delta fold
    /// transplants the armed injector (and its RNG position) into the
    /// successor, so the plan survives publications.
    pub fn arm_faults(&self, plan: FaultPlan) {
        self.snapshot().store().arm_faults(plan);
    }

    /// Disarms fault injection (persistent corruption, if any, remains).
    pub fn disarm_faults(&self) {
        self.snapshot().store().disarm_faults();
    }

    /// Fault counters accumulated by the published store (carried across
    /// publications by the transplant).
    pub fn fault_stats(&self) -> FaultStats {
        self.snapshot().store().fault_stats()
    }

    /// Cache counters plus current residency.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// The materialized masks of the published store.
    pub fn materialized(&self) -> Vec<u32> {
        self.snapshot().store().materialized()
    }

    /// Dimension count of the published lattice.
    pub fn dim_count(&self) -> usize {
        self.snapshot().store().lattice().dim_count()
    }

    /// Top (base-cuboid) mask of the published lattice.
    pub fn top(&self) -> u32 {
        self.snapshot().store().lattice().top()
    }

    /// A [`PlanSource`] over this store for the shared executor: pins a
    /// snapshot for its lifetime (one consistent store per query — and no
    /// lock held, so a concurrent delta neither blocks it nor is blocked
    /// by it), loads through the verified pages, and fronts the answer
    /// cache with **pre-enforcement** entries under fingerprint 0. Raw
    /// entries are safe to share across policies because the executor's
    /// mandatory privacy pass runs *after* every probe — cached and freshly
    /// derived answers cross the same enforcement barrier.
    pub fn plan_source(&self) -> SharedPlanSource<'_> {
        SharedPlanSource { store: self.snapshot().store, cache: &self.inner.cache }
    }
}

/// See [`SharedViewStore::plan_source`].
pub struct SharedPlanSource<'a> {
    store: Arc<ViewStore>,
    cache: &'a AnswerCache,
}

impl SharedPlanSource<'_> {
    /// Dimension count of the locked store's lattice.
    pub fn dim_count(&self) -> usize {
        self.store.lattice().dim_count()
    }

    /// The locked store's materialized catalog (for
    /// [`statcube_core::plan::PlannedQuery::retarget`]).
    pub fn catalog(&self) -> Vec<statcube_core::plan::CatalogEntry> {
        self.store.catalog()
    }
}

impl PlanSource for SharedPlanSource<'_> {
    fn load(&self, source: u32) -> Result<SourceBlock> {
        PlanSource::load(&*self.store, source)
    }

    fn load_derived(
        &self,
        source: u32,
        target: u32,
        filters: &[(usize, Vec<u32>)],
    ) -> Option<Result<SourceBlock>> {
        // Delegate so cold sealed-page scans stream through the chunked
        // kernels here too, not just on the bare-store path.
        PlanSource::load_derived(&*self.store, source, target, filters)
    }

    fn probes(&self) -> bool {
        true
    }

    /// Probe for a derived target block. Block entries are shared by `Arc`,
    /// so a hit hands the executor the cached columnar block with no
    /// per-cell conversion at all — the enforcement pass copies on write
    /// only if the policy actually suppresses something.
    fn probe(&self, target: u32) -> Option<(Arc<CellBlock>, u32)> {
        let key = CacheKey::Block(target);
        match self.cache.get(&key, |s| self.store.view_epoch(s)) {
            Some((CachedValue::Block(block), source)) => Some((block, source)),
            _ => None,
        }
    }

    fn admit(
        &self,
        target: u32,
        source: u32,
        cells_scanned: u64,
        cells: &Arc<CellBlock>,
        degraded: bool,
    ) {
        if degraded {
            self.cache.note_degraded_skip();
            return;
        }
        let Some(epoch) = self.store.view_epoch(source) else { return };
        let distance = u64::from(source.count_ones().saturating_sub(target.count_ones()));
        let cost = cells_scanned.saturating_mul(distance + 1).max(1);
        let bytes = block_bytes(cells);
        self.cache.insert(
            CacheKey::Block(target),
            CachedValue::Block(Arc::clone(cells)),
            bytes,
            cost,
            source,
            epoch,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groupby;

    fn input() -> FactInput {
        let mut f = FactInput::new(&[8, 4, 2]).unwrap();
        let mut x = 7u64;
        for _ in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            f.push(
                &[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32],
                (x % 10) as f64,
            )
            .unwrap();
        }
        f
    }

    #[test]
    fn repeat_answers_hit_and_stay_exact() {
        let f = input();
        let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();
        for mask in 0..8u32 {
            let first = store.answer(mask).unwrap();
            assert!(!first.cache_hit);
            assert!(first.cells_scanned > 0);
            let second = store.answer(mask).unwrap();
            assert!(second.cache_hit, "mask {mask:03b} should hit");
            assert_eq!(second.cells_scanned, 0);
            assert_eq!(second.source, first.source);
            assert_eq!(*second.cuboid, groupby::from_facts(&f, mask), "mask {mask:03b}");
        }
        let s = store.cache_stats();
        assert_eq!(s.hits, 8);
        assert_eq!(s.misses, 8);
        assert_eq!(s.insertions, 8);
    }

    #[test]
    fn cell_answers_cache_and_match_cuboids() {
        let f = input();
        let store = SharedViewStore::build(&f, &[], CacheConfig::default()).unwrap();
        let cell = store.answer_cell(&[Some(2), None, None]).unwrap();
        assert!(!cell.cache_hit);
        let again = store.answer_cell(&[Some(2), None, None]).unwrap();
        assert!(again.cache_hit);
        let direct = groupby::from_facts(&f, 0b001);
        let key: Box<[u32]> = vec![2u32].into_boxed_slice();
        match (cell.state, direct.get(&key)) {
            (Some(a), Some(b)) => assert_eq!(a.sum.to_bits(), b.sum.to_bits()),
            (None, None) => {}
            other => panic!("cell/direct disagree: {other:?}"),
        }
        // An absent cell is a cacheable answer too.
        let empty = store.answer_cell(&[Some(7), Some(3), Some(1)]);
        if let Ok(ans) = empty {
            let again = store.answer_cell(&[Some(7), Some(3), Some(1)]).unwrap();
            assert_eq!(ans.state.is_none(), again.state.is_none());
        }
        // Wrong arity is a typed error.
        assert!(store.answer_cell(&[None, None]).is_err());
    }

    #[test]
    fn delta_invalidates_and_serves_fresh_totals() {
        let f = input();
        let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();
        let before = store.answer(0b000).unwrap();
        assert!(store.answer(0b000).unwrap().cache_hit);
        let mut delta = FactInput::new(f.cards()).unwrap();
        delta.push(&[1, 1, 1], 1000.0).unwrap();
        store.apply_delta(&delta).unwrap();
        let after = store.answer(0b000).unwrap();
        assert!(!after.cache_hit, "delta must invalidate the cached total");
        let key: Box<[u32]> = Vec::new().into_boxed_slice();
        let (a, b) = (before.cuboid[&key].sum, after.cuboid[&key].sum);
        assert!((b - a - 1000.0).abs() < 1e-9, "total must include the delta");
    }

    #[test]
    fn corruption_evicts_and_degraded_answers_are_not_cached() {
        let f = input();
        let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();
        // Prime the cache from the small view.
        let primed = store.answer(0b001).unwrap();
        assert_eq!(primed.source, 0b011);
        // Corrupt the view: the dependent entry is eagerly evicted.
        store.corrupt_view(0b011, 37).unwrap();
        let detour = store.answer(0b001).unwrap();
        assert!(!detour.cache_hit, "stale entry must not serve");
        assert_eq!(detour.source, 0b111);
        assert!(detour.degraded.is_some());
        assert_eq!(*detour.cuboid, groupby::from_facts(&f, 0b001), "detour stays exact");
        // The degraded answer was not admitted: the next probe recomputes.
        let again = store.answer(0b001).unwrap();
        assert!(!again.cache_hit);
        assert!(store.cache_stats().degraded_skips >= 2);
        // Healing (delta rewrite) restores the preferred source.
        store.apply_delta(&FactInput::new(f.cards()).unwrap()).unwrap();
        let healed = store.answer(0b001).unwrap();
        assert_eq!(healed.source, 0b011);
        assert!(healed.degraded.is_none());
        assert!(store.answer(0b001).unwrap().cache_hit, "healthy answers cache again");
    }

    #[test]
    fn scrub_maps_failures_back_to_cached_entries() {
        let f = input();
        let store = SharedViewStore::build(&f, &[0b011, 0b101], CacheConfig::default()).unwrap();
        for mask in 0..8u32 {
            store.answer(mask).unwrap();
        }
        let resident = store.cache_stats().entries;
        assert!(resident > 0);
        // Corrupt through the *inner* store so the shared layer only learns
        // about it from the scrub.
        store.snapshot().store().corrupt_view(0b011, 9).unwrap();
        let report = store.scrub();
        assert!(!report.is_clean());
        assert!(store.cache_stats().invalidations > 0, "scrub must evict dependents");
        // Entries derived from 0b011 are gone; the rest remain.
        assert!(store.cache_stats().entries < resident);
        assert!(store.verify_all().is_err());
    }

    #[test]
    fn cache_is_keyed_on_the_active_privacy_policy() {
        let f = input();
        let store = SharedViewStore::build(&f, &[0b011], CacheConfig::default()).unwrap();
        // Warm the cache under the permissive policy.
        let permissive = store.answer(0b011).unwrap();
        assert!(!permissive.cuboid.is_empty());
        assert!(store.answer(0b011).unwrap().cache_hit);
        // Every cell has 0 < count < 10_000, so this policy suppresses all
        // of them — a maximally visible policy difference.
        let strict = PrivacyPolicy::suppress(10_000);
        let first = store.answer_with_policy(0b011, &strict, PlannerConfig::default()).unwrap();
        assert!(
            !first.cache_hit,
            "the permissive entry must not serve a suppressing policy (the old bypass)"
        );
        assert!(first.cuboid.is_empty(), "all cells suppressed under k=10000");
        // The strict answer caches under its own fingerprint...
        let again = store.answer_with_policy(0b011, &strict, PlannerConfig::default()).unwrap();
        assert!(again.cache_hit);
        assert!(again.cuboid.is_empty(), "cached == uncached under the same policy");
        // ...and the permissive entry is still intact and unsuppressed.
        let back = store.answer(0b011).unwrap();
        assert!(back.cache_hit);
        assert_eq!(*back.cuboid, *permissive.cuboid);
    }

    #[test]
    fn eight_reader_threads_share_one_store() {
        let f = input();
        let store = SharedViewStore::build(&f, &[0b011, 0b110], CacheConfig::default()).unwrap();
        let oracle: Vec<Cuboid> = (0..8u32).map(|m| groupby::from_facts(&f, m)).collect();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let store = store.clone();
                let oracle = &oracle;
                s.spawn(move || {
                    for i in 0..64usize {
                        let mask = ((i + t) % 8) as u32;
                        let ans = store.answer(mask).unwrap();
                        assert_eq!(*ans.cuboid, oracle[mask as usize], "thread {t} mask {mask}");
                    }
                });
            }
        });
        let s = store.cache_stats();
        assert_eq!(s.hits + s.misses, 8 * 64);
        assert!(s.hits > 8 * 32, "most probes should hit a warm cache");
    }
}
