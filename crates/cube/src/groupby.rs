//! The hash group-by engine: one cuboid at a time.
//!
//! A *cuboid* is identified by a bitmask over dimensions — bit set means
//! the dimension is grouped (kept), bit clear means it is summarized to
//! `ALL`. This module computes a single cuboid, either from base facts or
//! from a previously computed (smaller) ancestor cuboid; [`crate::cube_op`]
//! orchestrates all `2^n`.

use std::collections::HashMap;

use statcube_core::measure::AggState;

use crate::input::FactInput;

/// The cells of one cuboid: kept-dimension coordinates (in dimension
/// order) → aggregation state.
pub type Cuboid = HashMap<Box<[u32]>, AggState>;

/// Extracts the kept coordinates of `coords` under `mask`.
pub fn project_key(coords: &[u32], mask: u32) -> Box<[u32]> {
    coords.iter().enumerate().filter(|(d, _)| mask & (1 << d) != 0).map(|(_, &c)| c).collect()
}

/// Computes cuboid `mask` directly from the base facts (one full scan).
pub fn from_facts(input: &FactInput, mask: u32) -> Cuboid {
    from_facts_range(input, mask, 0..input.len())
}

/// Computes the *partial* cuboid `mask` over the fact rows in `rows` only.
///
/// A partial cuboid over a row range is itself a well-formed cuboid; the
/// cuboid over the union of disjoint ranges is the key-wise
/// [`AggState::merge`] of the partials (see [`merge_into`]) — the identity
/// the partition-parallel engine is built on.
pub fn from_facts_range(input: &FactInput, mask: u32, rows: std::ops::Range<usize>) -> Cuboid {
    debug_assert!(rows.end <= input.len(), "row range out of bounds");
    let kept: Vec<usize> = (0..input.dim_count()).filter(|d| mask & (1 << d) != 0).collect();
    let mut out: Cuboid = HashMap::new();
    let mut key = vec![0u32; kept.len()];
    for row in rows {
        for (i, &d) in kept.iter().enumerate() {
            key[i] = input.dim(d)[row];
        }
        out.entry(key.clone().into_boxed_slice())
            .or_insert(AggState::EMPTY)
            .merge(&AggState::from_value(input.measure()[row]));
    }
    out
}

/// Merges a partial cuboid into an accumulator, key-wise via
/// [`AggState::merge`]. Consumes `src` so keys move rather than clone.
pub fn merge_into(dst: &mut Cuboid, src: Cuboid) {
    if dst.is_empty() {
        *dst = src;
        return;
    }
    dst.reserve(src.len());
    for (key, state) in src {
        dst.entry(key).or_insert(AggState::EMPTY).merge(&state);
    }
}

/// Computes cuboid `child_mask` from its already-computed ancestor
/// `parent_mask` (`child_mask` must be a subset of `parent_mask`) — the
/// lattice-derivation sharing that makes the CUBE operator cheaper than
/// `2^n` independent scans.
pub fn from_parent(parent: &Cuboid, parent_mask: u32, child_mask: u32) -> Cuboid {
    debug_assert_eq!(child_mask & !parent_mask, 0, "child must be subset of parent");
    // Positions (within the parent's key) of dimensions the child keeps.
    let mut keep_positions = Vec::new();
    let mut pos = 0;
    for d in 0..32 {
        if parent_mask & (1 << d) != 0 {
            if child_mask & (1 << d) != 0 {
                keep_positions.push(pos);
            }
            pos += 1;
        }
    }
    let mut out: Cuboid = HashMap::new();
    let mut key = vec![0u32; keep_positions.len()];
    for (pkey, state) in parent {
        for (i, &p) in keep_positions.iter().enumerate() {
            key[i] = pkey[p];
        }
        out.entry(key.clone().into_boxed_slice()).or_insert(AggState::EMPTY).merge(state);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::measure::SummaryFunction;

    fn input() -> FactInput {
        let mut f = FactInput::new(&[2, 3]).unwrap();
        f.push(&[0, 0], 1.0).unwrap();
        f.push(&[0, 1], 2.0).unwrap();
        f.push(&[1, 1], 4.0).unwrap();
        f.push(&[1, 1], 8.0).unwrap();
        f.push(&[1, 2], 16.0).unwrap();
        f
    }

    #[test]
    fn full_mask_groups_by_everything() {
        let c = from_facts(&input(), 0b11);
        assert_eq!(c.len(), 4);
        assert_eq!(c[&vec![1u32, 1].into_boxed_slice()].sum, 12.0);
        assert_eq!(c[&vec![1u32, 1].into_boxed_slice()].count, 2);
    }

    #[test]
    fn empty_mask_is_grand_total() {
        let c = from_facts(&input(), 0);
        assert_eq!(c.len(), 1);
        let total = &c[&Vec::new().into_boxed_slice()];
        assert_eq!(total.sum, 31.0);
        assert_eq!(total.value(SummaryFunction::Count), Some(5.0));
    }

    #[test]
    fn single_dimension_masks() {
        let c0 = from_facts(&input(), 0b01); // group by dim 0
        assert_eq!(c0[&vec![0u32].into_boxed_slice()].sum, 3.0);
        assert_eq!(c0[&vec![1u32].into_boxed_slice()].sum, 28.0);
        let c1 = from_facts(&input(), 0b10); // group by dim 1
        assert_eq!(c1[&vec![1u32].into_boxed_slice()].sum, 14.0);
    }

    #[test]
    fn from_parent_equals_from_facts() {
        let f = input();
        let full = from_facts(&f, 0b11);
        for child in [0b01u32, 0b10, 0b00] {
            let derived = from_parent(&full, 0b11, child);
            let direct = from_facts(&f, child);
            assert_eq!(derived, direct, "mask {child:02b}");
        }
        // Two-step derivation also agrees.
        let via_d0 = from_parent(&from_parent(&full, 0b11, 0b01), 0b01, 0b00);
        assert_eq!(via_d0, from_facts(&f, 0b00));
    }

    #[test]
    fn range_partials_merge_to_full_scan() {
        let f = input();
        for mask in 0..4u32 {
            let full = from_facts(&f, mask);
            // Any split point yields partials that merge back to the whole.
            for split in 0..=f.len() {
                let mut merged = from_facts_range(&f, mask, 0..split);
                merge_into(&mut merged, from_facts_range(&f, mask, split..f.len()));
                assert_eq!(merged, full, "mask {mask:02b} split {split}");
            }
        }
    }

    #[test]
    fn merge_into_empty_and_overlapping() {
        let f = input();
        let mut acc = Cuboid::new();
        merge_into(&mut acc, from_facts(&f, 0b11));
        assert_eq!(acc, from_facts(&f, 0b11));
        // Merging the same cuboid again doubles sums and counts.
        merge_into(&mut acc, from_facts(&f, 0b11));
        for (key, state) in &from_facts(&f, 0b11) {
            assert_eq!(acc[key].sum, 2.0 * state.sum);
            assert_eq!(acc[key].count, 2 * state.count);
            assert_eq!(acc[key].min, state.min);
            assert_eq!(acc[key].max, state.max);
        }
    }

    #[test]
    fn project_key_keeps_dimension_order() {
        assert_eq!(&*project_key(&[7, 8, 9], 0b101), &[7, 9][..]);
        assert_eq!(&*project_key(&[7, 8, 9], 0), &[] as &[u32]);
        assert_eq!(&*project_key(&[7, 8, 9], 0b111), &[7, 8, 9][..]);
    }
}
