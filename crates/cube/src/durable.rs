//! Payload codecs and the recovery state machine of the durable write
//! path.
//!
//! The storage layer's [`DeltaJournal`] is deliberately payload-agnostic:
//! it frames, checksums, sequences, and truncates byte records. This module
//! owns what the bytes *mean* for cube maintenance:
//!
//! * a **delta payload** is a serialized [`FactInput`] — the validated
//!   batch, journaled before [`crate::query::ViewStore::fold_delta`] runs;
//! * a **snapshot payload** is a full sealed-store image (cards, base row
//!   count, every materialized view in the deterministic
//!   `serialize_cuboid` format the page files already use);
//! * [`recover_replay`] is the recovery state machine: find the newest
//!   intact snapshot (the manifest's pointer is the fast path, a full
//!   journal scan the fallback when the manifest is missing or corrupt),
//!   reconstitute the store with [`ViewStore::from_views`], then replay
//!   every intact delta record with a *higher sequence number* through the
//!   ordinary fold path. The differential maintenance suite proves
//!   fold ≡ rebuild bit-for-bit, so replay correctness composes; sequence
//!   numbers make replay idempotent (a duplicated tail re-presents old
//!   sequence numbers and is skipped, never applied twice).
//!
//! Both decoders treat every declared count as untrusted — checked
//! arithmetic, length validation before allocation — because the fuzz
//! suite (and a real torn disk) can hand them arbitrary bytes. A record
//! whose CRC verifies but whose payload does not decode marks the end of
//! the usable journal: replay stops there (reported, never a panic) rather
//! than guessing at what the writer meant.

use std::collections::HashMap;

use statcube_core::error::{Error, Result};
use statcube_storage::wal::{DeltaJournal, ManifestCell, RecordKind};

use crate::groupby::Cuboid;
use crate::input::FactInput;
use crate::query::{deserialize_cuboid, serialize_cuboid, ViewStore};

/// What one [`recover_replay`] pass did, for observability and the chaos
/// suite's acknowledgement oracle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Store epoch (publication generation) recorded on the snapshot
    /// record replay started from.
    pub snapshot_epoch: u64,
    /// Sequence number of the snapshot record replay started from.
    pub snapshot_seq: u64,
    /// Intact delta records replayed through the fold path.
    pub replayed_deltas: u64,
    /// Fact rows re-applied across all replayed deltas.
    pub replayed_rows: u64,
    /// Records skipped because their sequence number was already applied
    /// (duplicated tails; the idempotence counter).
    pub skipped_duplicates: u64,
    /// Torn bytes truncated off the journal tail.
    pub truncated_bytes: u64,
    /// Highest commit-stamped sequence number observed (commit records plus
    /// the manifest), if any.
    pub committed_seq: Option<u64>,
    /// Highest delta sequence number actually applied (`snapshot_seq` when
    /// no delta replayed).
    pub applied_seq: u64,
    /// Whether an intact manifest guided recovery (`false`: full journal
    /// scan fallback).
    pub manifest_used: bool,
    /// Set when a CRC-intact record carried an undecodable payload; replay
    /// stopped at that record's sequence number.
    pub stopped_at_undecodable: Option<u64>,
}

fn read_u64(bytes: &[u8], at: usize) -> Result<u64> {
    bytes
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| Error::InvalidSchema("truncated durable payload".into()))
}

fn read_u32(bytes: &[u8], at: usize) -> Result<u32> {
    bytes
        .get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| Error::InvalidSchema("truncated durable payload".into()))
}

/// Serializes a delta batch for journaling: dimension count, cardinalities,
/// row count, the dimension columns, then the measure column (bit-exact
/// f64).
pub fn encode_fact_input(input: &FactInput) -> Vec<u8> {
    let dims = input.dim_count();
    let rows = input.len();
    let mut out = Vec::with_capacity(16 + dims * 8 + rows * (dims * 4 + 8));
    out.extend_from_slice(&(dims as u64).to_le_bytes());
    for &card in input.cards() {
        out.extend_from_slice(&(card as u64).to_le_bytes());
    }
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    for d in 0..dims {
        for &code in input.dim(d) {
            out.extend_from_slice(&code.to_le_bytes());
        }
    }
    for &m in input.measure() {
        out.extend_from_slice(&m.to_bits().to_le_bytes());
    }
    out
}

/// Inverse of [`encode_fact_input`]. Every count is validated against the
/// actual byte length (checked arithmetic — declared sizes cannot
/// over-allocate or overflow) and every row goes through
/// [`FactInput::push`]'s own range validation, so a crafted payload yields
/// a typed error, never a panic and never an out-of-range fact.
pub fn decode_fact_input(bytes: &[u8]) -> Result<FactInput> {
    let malformed = || Error::InvalidSchema("malformed delta payload".into());
    let dims = read_u64(bytes, 0)? as usize;
    if dims == 0 || dims > 16 {
        return Err(malformed());
    }
    let mut cards = Vec::with_capacity(dims);
    for d in 0..dims {
        cards.push(read_u64(bytes, 8 + d * 8)? as usize);
    }
    let rows_at = 8 + dims * 8;
    let rows = read_u64(bytes, rows_at)? as usize;
    let expected = (rows as u64)
        .checked_mul(dims as u64 * 4 + 8)
        .and_then(|b| b.checked_add(rows_at as u64 + 8));
    if expected != Some(bytes.len() as u64) {
        return Err(malformed());
    }
    let mut input = FactInput::new(&cards)?;
    let cols_at = rows_at + 8;
    let measures_at = cols_at + rows * dims * 4;
    let mut coords = vec![0u32; dims];
    for row in 0..rows {
        for (d, c) in coords.iter_mut().enumerate() {
            *c = read_u32(bytes, cols_at + (d * rows + row) * 4)?;
        }
        let measure = f64::from_bits(read_u64(bytes, measures_at + row * 8)?);
        input.push(&coords, measure)?;
    }
    Ok(input)
}

/// Serializes a full sealed-store image for a snapshot record: cards, base
/// row count, then every materialized view (mask, byte length, the same
/// deterministic cuboid serialization the page files hold).
pub fn encode_snapshot(store: &ViewStore) -> Vec<u8> {
    let lattice = store.lattice();
    let cards = lattice.cards();
    let masks = store.materialized();
    let mut out = Vec::new();
    out.extend_from_slice(&(cards.len() as u64).to_le_bytes());
    for card in cards {
        out.extend_from_slice(&(card as u64).to_le_bytes());
    }
    out.extend_from_slice(&lattice.base_rows().to_le_bytes());
    out.extend_from_slice(&(masks.len() as u64).to_le_bytes());
    for mask in masks {
        // `materialized()` lists exactly the keys of the view map.
        let Some(view) = store.view(mask) else { continue };
        let bytes = serialize_cuboid(view, mask.count_ones() as usize);
        out.extend_from_slice(&mask.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Inverse of [`encode_snapshot`]: reconstitutes the exact store the
/// snapshot captured via [`ViewStore::from_views`]. Untrusted-input rules
/// as [`decode_fact_input`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<ViewStore> {
    let malformed = || Error::InvalidSchema("malformed snapshot payload".into());
    let dims = read_u64(bytes, 0)? as usize;
    if dims == 0 || dims > 16 {
        return Err(malformed());
    }
    let mut cards = Vec::with_capacity(dims);
    for d in 0..dims {
        cards.push(read_u64(bytes, 8 + d * 8)? as usize);
    }
    let mut at = 8 + dims * 8;
    let base_rows = read_u64(bytes, at)?;
    let n_views = read_u64(bytes, at + 8)? as usize;
    at += 16;
    if n_views > bytes.len() {
        // Each view costs ≥ 12 header bytes; a count past the byte length
        // is garbage (guards the loop, not an allocation — the map grows
        // per decoded view).
        return Err(malformed());
    }
    let mut views: HashMap<u32, Cuboid> = HashMap::new();
    for _ in 0..n_views {
        let mask = read_u32(bytes, at)?;
        let len = read_u64(bytes, at + 4)? as usize;
        let start = at + 12;
        let view_bytes = bytes
            .get(start..start.checked_add(len).ok_or_else(malformed)?)
            .ok_or_else(malformed)?;
        views.insert(mask, deserialize_cuboid(view_bytes, "snapshot")?);
        at = start + len;
    }
    if at != bytes.len() {
        return Err(malformed());
    }
    ViewStore::from_views(&cards, base_rows, views)
}

/// The recovery state machine: rebuilds a [`ViewStore`] from the journal
/// and manifest a crashed (or cleanly stopped) process left behind.
///
/// 1. Decode every intact record, truncating the torn tail in place
///    (truncate-and-continue — the journal is immediately appendable).
/// 2. Locate the snapshot to restart from: the manifest's
///    `snapshot_offset` when the manifest is intact and points at an
///    intact snapshot record, else the journal is scanned and the *last*
///    intact snapshot wins. No snapshot at all is a typed error.
/// 3. Replay forward: each intact delta record with `seq` greater than the
///    last applied sequence number goes through
///    [`ViewStore::apply_delta`] — the ordinary fold path. Lower or equal
///    sequence numbers (duplicated tails) are counted and skipped. A later
///    snapshot record (a checkpoint whose manifest swap never happened)
///    supersedes the store wholesale.
///
/// The outcome contract the chaos suite pins: the returned store is
/// bit-for-bit the pre-delta or the post-delta image for whichever batch
/// the crash interrupted, and every commit-stamped batch is in the
/// post-delta image (its delta record was durable before its commit record
/// existed).
pub fn recover_replay(
    journal: &DeltaJournal,
    manifest: &ManifestCell,
) -> Result<(ViewStore, RecoveryReport)> {
    let (records, tail) = journal.recover_records();
    let mut report = RecoveryReport { truncated_bytes: tail.torn_bytes, ..Default::default() };
    let loaded = manifest.load().ok().flatten();
    report.manifest_used = loaded.is_some();
    if let Some(m) = &loaded {
        report.committed_seq = Some(m.committed_seq);
    }
    // The manifest's snapshot pointer is a fast path: start scanning there.
    // When it is missing, corrupt, or points at torn bytes, scan from 0 —
    // dead reckoning over the whole journal.
    let start = loaded
        .and_then(|m| {
            records
                .iter()
                .position(|r| r.offset == m.snapshot_offset && r.kind == RecordKind::Snapshot)
        })
        .unwrap_or(0);
    let mut store: Option<ViewStore> = None;
    let mut applied = 0u64;
    for rec in &records[start..] {
        match rec.kind {
            RecordKind::Snapshot => match decode_snapshot(&rec.payload) {
                Ok(s) => {
                    store = Some(s);
                    applied = rec.seq;
                    report.snapshot_epoch = rec.epoch;
                    report.snapshot_seq = rec.seq;
                    report.replayed_deltas = 0;
                    report.replayed_rows = 0;
                }
                Err(_) => {
                    report.stopped_at_undecodable = Some(rec.seq);
                    break;
                }
            },
            RecordKind::Delta => {
                let Some(current) = store.as_mut() else { continue };
                if rec.seq <= applied {
                    report.skipped_duplicates += 1;
                    continue;
                }
                let Ok(delta) = decode_fact_input(&rec.payload) else {
                    report.stopped_at_undecodable = Some(rec.seq);
                    break;
                };
                match current.apply_delta(&delta) {
                    Ok(r) => {
                        applied = rec.seq;
                        report.replayed_deltas += 1;
                        report.replayed_rows += r.rows;
                    }
                    Err(_) => {
                        // A batch the fold refuses could only have been
                        // journaled by a foreign writer (validation runs
                        // pre-append); stop cleanly rather than skip —
                        // later records may depend on it.
                        report.stopped_at_undecodable = Some(rec.seq);
                        break;
                    }
                }
            }
            RecordKind::Commit => {
                if rec.payload.len() == 8 {
                    let seq = u64::from_le_bytes(rec.payload[..8].try_into().unwrap_or([0u8; 8]));
                    report.committed_seq = Some(report.committed_seq.map_or(seq, |c| c.max(seq)));
                }
            }
        }
    }
    report.applied_seq = applied;
    let store = store.ok_or_else(|| {
        Error::InvalidSchema("journal holds no intact snapshot record to recover from".into())
    })?;
    Ok((store, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_storage::wal::Manifest;

    fn facts(rows: u64, seed: u64) -> FactInput {
        let mut f = FactInput::new(&[6, 4, 3]).unwrap();
        let mut x = seed | 1;
        for _ in 0..rows {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            f.push(
                &[(x % 6) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 3) as u32],
                ((x % 100) as f64) / 4.0,
            )
            .unwrap();
        }
        f
    }

    #[test]
    fn fact_input_codec_round_trips_bit_exact() {
        let f = facts(150, 9);
        let decoded = decode_fact_input(&encode_fact_input(&f)).unwrap();
        assert_eq!(decoded.cards(), f.cards());
        assert_eq!(decoded.len(), f.len());
        for row in 0..f.len() {
            assert_eq!(decoded.coords(row), f.coords(row));
            assert_eq!(decoded.measure()[row].to_bits(), f.measure()[row].to_bits());
        }
        // Empty batch round-trips too.
        let empty = FactInput::new(&[2, 2]).unwrap();
        let d = decode_fact_input(&encode_fact_input(&empty)).unwrap();
        assert_eq!(d.len(), 0);
        assert_eq!(d.cards(), &[2, 2]);
    }

    #[test]
    fn fact_input_decoder_rejects_garbage_without_panicking() {
        assert!(decode_fact_input(&[]).is_err());
        assert!(decode_fact_input(&[0xFF; 7]).is_err());
        assert!(decode_fact_input(&[0xFF; 64]).is_err());
        // A huge declared row count must fail the length check, not
        // allocate or overflow.
        let mut evil = Vec::new();
        evil.extend_from_slice(&2u64.to_le_bytes());
        evil.extend_from_slice(&4u64.to_le_bytes());
        evil.extend_from_slice(&4u64.to_le_bytes());
        evil.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_fact_input(&evil).is_err());
        // Truncated real payload.
        let good = encode_fact_input(&facts(20, 3));
        assert!(decode_fact_input(&good[..good.len() - 3]).is_err());
        // Out-of-range coordinate: flip a dimension code past its card.
        let f = facts(5, 3);
        let mut bytes = encode_fact_input(&f);
        let cols_at = 8 + 3 * 8 + 8;
        bytes[cols_at..cols_at + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(decode_fact_input(&bytes).is_err());
    }

    #[test]
    fn snapshot_codec_round_trips_the_store() {
        let f = facts(300, 5);
        let store = ViewStore::build(&f, &[0b011, 0b100]).unwrap();
        let restored = decode_snapshot(&encode_snapshot(&store)).unwrap();
        assert_eq!(restored.materialized(), store.materialized());
        assert_eq!(restored.lattice().cards(), store.lattice().cards());
        assert_eq!(restored.lattice().base_rows(), store.lattice().base_rows());
        for mask in restored.materialized() {
            assert_eq!(restored.view(mask), store.view(mask), "mask {mask:b}");
        }
        // The restored store answers queries through fresh seals.
        for mask in 0..8u32 {
            let a = restored.answer(mask).unwrap();
            let b = store.answer(mask).unwrap();
            assert_eq!(a.cuboid, b.cuboid);
        }
        assert!(decode_snapshot(&[]).is_err());
        assert!(decode_snapshot(&[9u8; 40]).is_err());
    }

    #[test]
    fn recover_replays_the_journal_tail() {
        let f = facts(200, 1);
        let store = ViewStore::build(&f, &[0b011]).unwrap();
        let journal = DeltaJournal::new();
        let manifest = ManifestCell::new();
        let snap = journal.append(RecordKind::Snapshot, 0, &encode_snapshot(&store)).unwrap();
        manifest.install(&Manifest {
            snapshot_epoch: 0,
            snapshot_offset: snap.offset,
            committed_seq: snap.seq,
            committed_offset: snap.end_offset,
        });
        // Journal two deltas; commit-stamp only the first.
        let d1 = facts(30, 2);
        let d2 = facts(30, 4);
        let a1 = journal.append(RecordKind::Delta, 1, &encode_fact_input(&d1)).unwrap();
        journal.append(RecordKind::Commit, 1, &a1.seq.to_le_bytes()).unwrap();
        journal.append(RecordKind::Delta, 2, &encode_fact_input(&d2)).unwrap();
        let (recovered, report) = recover_replay(&journal, &manifest).unwrap();
        assert_eq!(report.replayed_deltas, 2, "uncommitted-but-intact deltas replay too");
        assert_eq!(report.replayed_rows, 60);
        assert_eq!(report.committed_seq, Some(a1.seq));
        assert!(report.manifest_used);
        assert_eq!(report.skipped_duplicates, 0);
        // Oracle: fold both deltas onto a fresh copy of the same store.
        let mut oracle = ViewStore::build(&f, &[0b011]).unwrap();
        oracle.apply_delta(&d1).unwrap();
        oracle.apply_delta(&d2).unwrap();
        for mask in recovered.materialized() {
            let a = recovered.view(mask).unwrap();
            let b = oracle.view(mask).unwrap();
            assert_eq!(a.len(), b.len());
            for (k, s) in b {
                assert_eq!(a[k].sum.to_bits(), s.sum.to_bits(), "mask {mask:b}");
                assert_eq!(a[k].count, s.count);
            }
        }
    }

    #[test]
    fn recovery_without_manifest_scans_and_later_snapshot_supersedes() {
        let f = facts(120, 7);
        let store = ViewStore::build(&f, &[]).unwrap();
        let journal = DeltaJournal::new();
        journal.append(RecordKind::Snapshot, 0, &encode_snapshot(&store)).unwrap();
        let d1 = facts(25, 11);
        journal.append(RecordKind::Delta, 1, &encode_fact_input(&d1)).unwrap();
        // A checkpoint whose manifest swap never happened.
        let mut advanced = ViewStore::build(&f, &[]).unwrap();
        advanced.apply_delta(&d1).unwrap();
        journal.append(RecordKind::Snapshot, 1, &encode_snapshot(&advanced)).unwrap();
        let d2 = facts(25, 13);
        journal.append(RecordKind::Delta, 2, &encode_fact_input(&d2)).unwrap();
        let manifest = ManifestCell::new(); // never installed
        let (recovered, report) = recover_replay(&journal, &manifest).unwrap();
        assert!(!report.manifest_used);
        assert_eq!(report.snapshot_seq, 2, "the later snapshot wins");
        assert_eq!(report.replayed_deltas, 1, "only the post-checkpoint delta replays");
        let mut oracle = advanced;
        oracle.apply_delta(&d2).unwrap();
        let top = recovered.lattice().top();
        assert_eq!(recovered.view(top), oracle.view(top));
        // An empty journal is a typed error.
        let empty = DeltaJournal::new();
        assert!(recover_replay(&empty, &manifest).is_err());
    }

    #[test]
    fn duplicated_tail_is_skipped_not_replayed_twice() {
        let f = facts(100, 21);
        let store = ViewStore::build(&f, &[]).unwrap();
        let journal = DeltaJournal::new();
        let manifest = ManifestCell::new();
        journal.append(RecordKind::Snapshot, 0, &encode_snapshot(&store)).unwrap();
        let d = facts(40, 23);
        let before = journal.len();
        journal.append(RecordKind::Delta, 1, &encode_fact_input(&d)).unwrap();
        // Duplicate the delta record's bytes (a retried write landing
        // twice).
        let image = journal.image();
        let mut doubled = image.clone();
        doubled.extend_from_slice(&image[before as usize..]);
        let resumed = DeltaJournal::from_bytes(doubled);
        let (recovered, report) = recover_replay(&resumed, &manifest).unwrap();
        assert_eq!(report.replayed_deltas, 1, "idempotence: the duplicate must not re-apply");
        assert_eq!(report.skipped_duplicates, 1);
        let mut oracle = ViewStore::build(&f, &[]).unwrap();
        oracle.apply_delta(&d).unwrap();
        let top = recovered.lattice().top();
        assert_eq!(recovered.view(top), oracle.view(top));
    }
}
