//! # statcube-cube
//!
//! The OLAP computation layer of the reproduction: the CUBE operator of
//! \[GB+96\] (§5.4, Fig 15), the cuboid lattice and greedy view
//! materialization of \[HUR96\] (§6.3, Fig 22), query answering from
//! materialized views, and the two cube-computation engines whose contest
//! §6.6 describes — dense-array MOLAP (\[ZDN97\]) and sort-based ROLAP.
//!
//! * [`input`] — the shared dictionary-encoded fact table;
//! * [`groupby`] — single-cuboid hash aggregation and lattice derivation;
//! * [`cube_op`] — `CUBE` (naive and shared) and `ROLLUP`, with `ALL` rows;
//! * [`lattice`] — the `2^n` cuboid lattice with size estimation;
//! * [`materialize`] — the HRU greedy view-selection algorithm;
//! * [`query`] — smallest-materialized-ancestor query answering;
//! * [`cache`] / [`shared`] — the serving layer: a cost-aware answer
//!   cache fronting a concurrently shared view store;
//! * [`molap`] / [`rolap`] — the §6.6 contestants.

#![warn(missing_docs)]

pub mod cache;
pub mod cube_op;
pub mod durable;
pub mod groupby;
pub mod input;
pub mod lattice;
pub mod materialize;
pub mod molap;
pub mod query;
pub mod rolap;
pub mod sharded;
pub mod shared;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::cache::{CacheConfig, CacheStats};
    pub use crate::cube_op::{compute_naive, compute_rollup, compute_shared, CubeResult};
    pub use crate::durable::RecoveryReport;
    pub use crate::input::FactInput;
    pub use crate::lattice::Lattice;
    pub use crate::materialize::{greedy_select, GreedySelection};
    pub use crate::molap::{compute_molap, MolapCube};
    pub use crate::query::ViewStore;
    pub use crate::rolap::{compute_rolap, RolapCube};
    pub use crate::sharded::{
        ShardAnswer, ShardNode, ShardRouter, ShardedDeltaReport, ShardedViewStore,
    };
    pub use crate::shared::{DurableParts, SharedViewStore};
}
