//! Greedy view materialization (§6.3, \[HUR96\]).
//!
//! Marginals "are usually not included in the database if they can be
//! derived … it is generally not efficient to compute the marginals for
//! very large datasets" — so which of the `2^n − 1` summarizations should
//! be pre-computed, given limited space and no knowledge of access patterns
//! (all queries equally likely)? \[HUR96\]'s greedy algorithm picks, at each
//! step, the view whose materialization most reduces total query cost; it
//! is guaranteed to reach at least `(1 − 1/e)` of the optimal benefit.

use statcube_core::error::{Error, Result};

use crate::lattice::Lattice;

/// The outcome of a greedy selection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedySelection {
    /// Views selected, in selection order (the base cuboid is always
    /// materialized first and is *not* listed here).
    pub selected: Vec<u32>,
    /// The benefit each step realized (same order as `selected`).
    pub benefits: Vec<u64>,
}

/// Cost of answering the query for cuboid `mask` given the materialized set
/// `views` (which must contain the base cuboid): the size of the smallest
/// materialized ancestor — the linear-cost model of \[HUR96\].
pub fn query_cost(lattice: &Lattice, mask: u32, views: &[u32]) -> u64 {
    views
        .iter()
        .filter(|&&v| lattice.derivable_from(mask, v))
        .map(|&v| lattice.size(v))
        .min()
        .unwrap_or(u64::MAX)
}

/// Total cost of answering every cuboid's query once under the uniform
/// workload assumption.
pub fn total_cost(lattice: &Lattice, views: &[u32]) -> u64 {
    (0..lattice.cuboid_count() as u32).map(|m| query_cost(lattice, m, views)).sum()
}

/// The benefit of materializing `candidate` on top of `views`: the total
/// cost reduction over all queries.
pub fn benefit(lattice: &Lattice, candidate: u32, views: &[u32]) -> u64 {
    lattice
        .descendants(candidate)
        .into_iter()
        .map(|w| {
            let current = query_cost(lattice, w, views);
            current.saturating_sub(lattice.size(candidate))
        })
        .sum()
}

/// Runs the greedy algorithm: starting from the (always materialized) base
/// cuboid, selects `k` additional views, each maximizing benefit.
pub fn greedy_select(lattice: &Lattice, k: usize) -> Result<GreedySelection> {
    let top = lattice.top();
    let candidates: Vec<u32> = (0..lattice.cuboid_count() as u32).filter(|&m| m != top).collect();
    if k > candidates.len() {
        return Err(Error::InvalidSchema(format!(
            "cannot select {k} views from {} candidates",
            candidates.len()
        )));
    }
    let mut views = vec![top];
    let mut selected = Vec::with_capacity(k);
    let mut benefits = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(u32, u64)> = None;
        for &c in &candidates {
            if views.contains(&c) {
                continue;
            }
            let b = benefit(lattice, c, &views);
            // Deterministic tie-break: smaller view first, then lower mask.
            let better = match best {
                None => true,
                Some((bc, bb)) => {
                    b > bb
                        || (b == bb && lattice.size(c) < lattice.size(bc))
                        || (b == bb && lattice.size(c) == lattice.size(bc) && c < bc)
                }
            };
            if better {
                best = Some((c, b));
            }
        }
        let Some((choice, b)) = best else {
            // Unreachable given the k <= candidates.len() guard above, but
            // a typed error beats a panic if the guard ever drifts.
            return Err(Error::InvalidSchema("greedy selection ran out of candidates".into()));
        };
        views.push(choice);
        selected.push(choice);
        benefits.push(b);
    }
    Ok(GreedySelection { selected, benefits })
}

/// Space used by a view set (sum of view sizes).
pub fn space_used(lattice: &Lattice, views: &[u32]) -> u64 {
    views.iter().map(|&v| lattice.size(v)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of \[HUR96\] §3 (the a/b/c lattice), sizes chosen
    /// so the greedy choices are unambiguous.
    fn lattice() -> Lattice {
        // dims a, b, c with cards 100, 50, 10 and 1M base rows, then
        // override with explicit sizes.
        Lattice::new(&[100, 50, 10], 100_000_000).unwrap().with_measured_sizes(&[
            (0b111, 100), // abc (base)
            (0b011, 50),  // ab
            (0b101, 75),  // ac
            (0b110, 20),  // bc
            (0b001, 30),  // a
            (0b010, 1),   // b
            (0b100, 10),  // c
            (0b000, 1),   // apex
        ])
    }

    #[test]
    fn query_cost_uses_smallest_ancestor() {
        let l = lattice();
        let views = vec![l.top()];
        // With only the base view, every query costs 100.
        for m in 0..8u32 {
            assert_eq!(query_cost(&l, m, &views), 100);
        }
        let views = vec![l.top(), 0b011];
        assert_eq!(query_cost(&l, 0b001, &views), 50); // a from ab
        assert_eq!(query_cost(&l, 0b100, &views), 100); // c still from base
        assert_eq!(query_cost(&l, 0b011, &views), 50);
    }

    #[test]
    fn benefit_counts_all_descendants() {
        let l = lattice();
        let views = vec![l.top()];
        // Materializing ab (size 50) helps ab, a, b, apex: 4 × (100-50).
        assert_eq!(benefit(&l, 0b011, &views), 4 * 50);
        // Materializing bc (size 20) helps bc, b, c, apex: 4 × 80.
        assert_eq!(benefit(&l, 0b110, &views), 4 * 80);
    }

    #[test]
    fn greedy_first_choice_maximizes_benefit() {
        let l = lattice();
        let g = greedy_select(&l, 3).unwrap();
        // bc's benefit (320) beats ab's (200), ac's (4×25=100), a (70),
        // b (99), c (90), apex (99).
        assert_eq!(g.selected[0], 0b110);
        assert_eq!(g.benefits[0], 320);
        // Benefits are non-increasing (diminishing returns of the greedy).
        for w in g.benefits.windows(2) {
            assert!(w[0] >= w[1], "benefits {:?}", g.benefits);
        }
        // Total cost must improve monotonically as views are added.
        let mut views = vec![l.top()];
        let mut prev = total_cost(&l, &views);
        for &v in &g.selected {
            views.push(v);
            let now = total_cost(&l, &views);
            assert!(now <= prev);
            prev = now;
        }
    }

    #[test]
    fn full_materialization_is_lower_bound() {
        let l = lattice();
        let all: Vec<u32> = (0..8).collect();
        let full = total_cost(&l, &all);
        let g = greedy_select(&l, 7).unwrap();
        let mut views = vec![l.top()];
        views.extend(&g.selected);
        // Selecting everything reaches the full-materialization cost.
        assert_eq!(total_cost(&l, &views), full);
        // And the greedy guarantee: ≥ (1 - 1/e) of the possible benefit at
        // every prefix (check k = 2).
        let g2 = greedy_select(&l, 2).unwrap();
        let mut v2 = vec![l.top()];
        v2.extend(&g2.selected);
        let base_cost = total_cost(&l, &[l.top()]);
        let achieved = base_cost - total_cost(&l, &v2);
        // Optimal 2-view benefit can't exceed total possible benefit.
        let possible = base_cost - full;
        assert!(
            achieved as f64
                >= 0.63 * possible as f64 * {
                    // The bound is vs. optimal-k, which ≤ possible; this check is
                    // conservative but should hold on this lattice.
                    1.0
                } - 1.0
        );
    }

    #[test]
    fn space_accounting() {
        let l = lattice();
        assert_eq!(space_used(&l, &[l.top(), 0b110, 0b010]), 100 + 20 + 1);
    }

    #[test]
    fn greedy_k_bounds() {
        let l = lattice();
        assert!(greedy_select(&l, 8).is_err());
        let g = greedy_select(&l, 0).unwrap();
        assert!(g.selected.is_empty());
        let g7 = greedy_select(&l, 7).unwrap();
        assert_eq!(g7.selected.len(), 7);
    }

    #[test]
    fn unreachable_query_cost_is_infinite() {
        let l = lattice();
        // No base view in the set: the full-mask query has no ancestor.
        assert_eq!(query_cost(&l, 0b111, &[0b011]), u64::MAX);
    }

    /// Builds a lattice with pseudo-random measured sizes (monotone down
    /// the derivability order, as real cuboid sizes are).
    fn random_lattice(n: usize, seed: u64) -> Lattice {
        let cards = vec![64usize; n];
        let base = Lattice::new(&cards, 1_000_000).unwrap();
        let mut x = seed.max(1);
        let mut sizes: Vec<(u32, u64)> = Vec::new();
        for mask in 0..(1u32 << n) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Sizes grow with the popcount so children never out-size
            // parents: [1, 10^popcount] scaled by a random factor.
            let scale = 10u64.pow(mask.count_ones());
            sizes.push((mask, 1 + x % scale.max(1)));
        }
        base.with_measured_sizes(&sizes)
    }

    /// The greedy invariants the selection must uphold on *any* lattice:
    /// step benefits are non-increasing, total cost never increases as
    /// views are added, and every query stays answerable because the base
    /// cuboid is always in the view set.
    #[test]
    fn greedy_invariants_hold_on_random_lattices() {
        for n in 2..=4usize {
            for seed in [3u64, 17, 99, 1234] {
                let l = random_lattice(n, seed);
                let k_max = (1usize << n) - 1;
                let g = greedy_select(&l, k_max).unwrap();
                assert_eq!(g.selected.len(), k_max);
                assert_eq!(g.benefits.len(), k_max);

                // 1. Diminishing returns: benefits are non-increasing.
                for w in g.benefits.windows(2) {
                    assert!(w[0] >= w[1], "n={n} seed={seed} benefits {:?}", g.benefits);
                }

                // 2. Monotone cost: adding a view never makes queries
                //    slower, and each step's cost drop equals its benefit.
                let mut views = vec![l.top()];
                let mut prev = total_cost(&l, &views);
                for (&v, &b) in g.selected.iter().zip(&g.benefits) {
                    views.push(v);
                    let now = total_cost(&l, &views);
                    assert!(now <= prev, "n={n} seed={seed} view {v:b}");
                    assert_eq!(prev - now, b, "n={n} seed={seed} view {v:b}");
                    prev = now;
                }

                // 3. The base cuboid answers everything: no query cost is
                //    ever the unanswerable sentinel, at any prefix.
                let mut views = vec![l.top()];
                for step in 0..=k_max {
                    for m in 0..(1u32 << n) {
                        assert_ne!(
                            query_cost(&l, m, &views),
                            u64::MAX,
                            "n={n} seed={seed} step={step} mask {m:b}"
                        );
                    }
                    if step < k_max {
                        views.push(g.selected[step]);
                    }
                }

                // 4. No duplicates, base never re-selected.
                let mut sel = g.selected.clone();
                sel.sort_unstable();
                sel.dedup();
                assert_eq!(sel.len(), k_max);
                assert!(!g.selected.contains(&l.top()));
            }
        }
    }
}
