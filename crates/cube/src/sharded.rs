//! Scatter-gather sharded execution: the fact table hash- or
//! range-partitioned on one dimension into N independent
//! [`SharedViewStore`] shards, one physical plan per shard, and a monoid
//! merge stage gathering the partial answers.
//!
//! The layering deliberately mirrors a distributed statistical database
//! front end (the paper's §4 "summary data server" sits in front of many
//! base holdings): every shard is a complete serving stack — its own
//! sealed page store, epochs, answer cache, and (optionally) write-ahead
//! journal — and the coordinator here owns only the routing policy and the
//! merge. Three invariants anchor the design:
//!
//! 1. **Partition is a disjoint cover.** [`ShardRouter::route`] is a pure
//!    function of one dimension's coordinate, so every fact row lives on
//!    exactly one shard and the per-shard cuboids of any mask sum to the
//!    unsharded cuboid — cell-by-cell, because [`AggState`] is a
//!    commutative monoid and the merge runs in fixed shard order
//!    (deterministic float association, hence bit-for-bit reproducible).
//! 2. **Merge before enforce.** Shards run
//!    [`statcube_core::plan::execute_partial`] — derivation only, *no*
//!    privacy pass — and [`statcube_core::plan::merge_partials`] enforces
//!    the policy exactly once on the merged blocks. A suppression
//!    threshold applied per shard would both over-suppress (a cell with 2
//!    units on each of 3 shards is a 6-unit cell) and leak (complementary
//!    suppression chosen from partial marginals is unsound).
//! 3. **A dead shard degrades the answer, never corrupts it.** When a
//!    shard's every source fails verification, its partial is dropped and
//!    the gathered answer carries the shard in
//!    [`ShardAnswer::missing_shards`]: a typed *partial* answer over the
//!    surviving partitions — never an error while any shard lives, and
//!    never a silently wrong global total.
//!
//! Scatter is `std::thread::scope` fan-out (the in-repo parallelism
//! idiom); everything a remote deployment would need crosses the
//! object-safe [`ShardNode`] boundary, so a process-per-shard transport
//! can replace the threads without touching the coordinator.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use statcube_core::error::{Error, Result};
use statcube_core::measure::AggState;
use statcube_core::plan::{
    self, CatalogEntry, CodedPredicate, PartialExecution, Plan, PlannedQuery, Planner,
    PlannerConfig, PrivacyPolicy, ShardedExecution,
};
use statcube_core::trace;

use crate::cache::{CacheConfig, CacheStats};
use crate::cube_op::Degradation;
use crate::durable::RecoveryReport;
use crate::groupby::Cuboid;
use crate::input::FactInput;
use crate::query::DeltaReport;
use crate::shared::{DurableParts, SharedViewStore};

/// Hard ceiling on shard count: [`ShardAnswer::missing_shards`] is a `u32`
/// bit mask, one bit per shard.
pub const MAX_SHARDS: usize = 32;

/// The partitioning policy: which dimension routes a fact row, and how its
/// coordinate maps to a shard index. Routing is deterministic and
/// stateless, so loads, deltas, and recovery all agree on row ownership
/// without any shared routing table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardRouter {
    /// `shard = mix64(coord) % n`: uniform spread regardless of the
    /// dimension's value skew. The mix is a fixed splitmix64 finalizer, so
    /// the placement is stable across runs and processes.
    Hash {
        /// The routing dimension (index into the fact coordinates).
        dim: usize,
    },
    /// Contiguous coordinate ranges: shard `i` owns
    /// `bounds[i-1] <= coord < bounds[i]` (shard 0 owns everything below
    /// `bounds[0]`, the last shard everything at or above the last bound).
    /// Keeps range-correlated dimensions (time, geography) colocated.
    Range {
        /// The routing dimension (index into the fact coordinates).
        dim: usize,
        /// Strictly ascending split points; `bounds.len() + 1` shards.
        bounds: Vec<u32>,
    },
}

impl ShardRouter {
    /// The dimension this router partitions on.
    pub fn dim(&self) -> usize {
        match self {
            ShardRouter::Hash { dim } | ShardRouter::Range { dim, .. } => *dim,
        }
    }

    /// The shard index owning a row with these coordinates. Total for any
    /// `u32` coordinate: hash wraps by modulus, range clamps coordinates
    /// past the last bound into the last shard (so deltas introducing new
    /// high coordinates still route).
    pub fn route(&self, coords: &[u32], shards: usize) -> usize {
        self.route_coord(coords.get(self.dim()).copied().unwrap_or(0), shards)
    }

    /// [`ShardRouter::route`] given just the routing dimension's
    /// coordinate — what scatter pruning calls per allowed filter value.
    pub fn route_coord(&self, c: u32, shards: usize) -> usize {
        match self {
            ShardRouter::Hash { .. } => (mix64(u64::from(c)) % shards.max(1) as u64) as usize,
            ShardRouter::Range { bounds, .. } => {
                bounds.partition_point(|&b| b <= c).min(shards.saturating_sub(1))
            }
        }
    }

    /// Checks the router against a store shape: the routing dimension must
    /// exist, the shard count must fit the mask width, and a range
    /// router's bounds must be strictly ascending with exactly one split
    /// point between adjacent shards.
    pub fn validate(&self, dim_count: usize, shards: usize) -> Result<()> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(Error::InvalidSchema(format!(
                "shard count {shards} outside 1..={MAX_SHARDS}"
            )));
        }
        if self.dim() >= dim_count {
            return Err(Error::InvalidSchema(format!(
                "routing dimension {} out of range for {dim_count} dimensions",
                self.dim()
            )));
        }
        if let ShardRouter::Range { bounds, .. } = self {
            if bounds.len() + 1 != shards {
                return Err(Error::InvalidSchema(format!(
                    "{} range bounds imply {} shards, store has {shards}",
                    bounds.len(),
                    bounds.len() + 1
                )));
            }
            if bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(Error::InvalidSchema("range bounds must be strictly ascending".into()));
            }
        }
        Ok(())
    }
}

/// splitmix64's finalizer: a fixed, high-quality 64-bit mix so hash
/// routing is uniform even on small sequential coordinate domains.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The process-ready interface one shard exposes to the coordinator.
/// Everything the scatter-gather path needs crosses this object-safe
/// boundary — planning inputs ([`ShardNode::dim_count`],
/// [`ShardNode::catalog`]), pre-enforcement execution
/// ([`ShardNode::partial`]), and the write path — so the thread-backed
/// [`SharedViewStore`] impl here could be swapped for an RPC proxy
/// without touching [`ShardedViewStore`].
pub trait ShardNode: Send + Sync {
    /// Dimension count of the shard's lattice (identical across shards).
    fn dim_count(&self) -> usize;

    /// The shard's publication generation (bumps on every delta/rebuild).
    fn generation(&self) -> u64;

    /// The shard's materialized-view catalog, for per-shard planning.
    fn catalog(&self) -> Vec<CatalogEntry>;

    /// Executes a physical plan on this shard *without* privacy
    /// enforcement — the scatter half of the protocol. Enforcement belongs
    /// to the merge stage, once, on global cells.
    fn partial(&self, planned: &PlannedQuery) -> Result<PartialExecution>;

    /// Validates a routed sub-batch against the shard without applying it.
    fn validate_delta(&self, delta: &FactInput) -> Result<()>;

    /// Applies a routed sub-batch to the shard.
    fn apply_delta(&self, delta: &FactInput) -> Result<DeltaReport>;

    /// Masks of the shard's materialized views.
    fn materialized(&self) -> Vec<u32>;

    /// Chaos hook: flips one stored bit of the shard's view `mask`.
    fn corrupt_view(&self, mask: u32, bit: u64) -> Result<()>;
}

impl ShardNode for SharedViewStore {
    fn dim_count(&self) -> usize {
        SharedViewStore::dim_count(self)
    }

    fn generation(&self) -> u64 {
        SharedViewStore::generation(self)
    }

    fn catalog(&self) -> Vec<CatalogEntry> {
        self.snapshot().store().catalog()
    }

    fn partial(&self, planned: &PlannedQuery) -> Result<PartialExecution> {
        plan::execute_partial(planned, &self.plan_source())
    }

    fn validate_delta(&self, delta: &FactInput) -> Result<()> {
        self.snapshot().store().validate_delta(delta)
    }

    fn apply_delta(&self, delta: &FactInput) -> Result<DeltaReport> {
        SharedViewStore::apply_delta(self, delta)
    }

    fn materialized(&self) -> Vec<u32> {
        SharedViewStore::materialized(self)
    }

    fn corrupt_view(&self, mask: u32, bit: u64) -> Result<()> {
        SharedViewStore::corrupt_view(self, mask, bit)
    }
}

/// A gathered cuboid answer. `cuboid` covers every *surviving* shard;
/// when [`ShardAnswer::is_partial`] the caller knows exactly which
/// partitions are absent — the PR-2 degraded-answer contract generalized
/// from "a worse source served this" to "these partitions are missing".
#[derive(Debug)]
pub struct ShardAnswer {
    /// Merged, privacy-enforced cells (suppressed cells omitted).
    pub cuboid: Cuboid,
    /// Cells scanned across all shards (0 when every shard hit cache).
    pub cells_scanned: u64,
    /// True when every surviving shard answered from its cache.
    pub cache_hit: bool,
    /// How many shards the plan was scattered to.
    pub shard_count: usize,
    /// Bit `i` set ⇔ shard `i` contributed nothing (see
    /// [`ShardedExecution::missing_shards`]).
    pub missing_shards: u32,
    /// Bit `i` set ⇔ shard `i` was *pruned*: a scan filter on the routing
    /// dimension proved it owns no matching row, so it was never
    /// scattered to. Pruned is not missing — the answer is complete.
    pub pruned_shards: u32,
    /// The typed per-shard failures behind the missing bits, in shard
    /// order.
    pub failed: Vec<(usize, Error)>,
    /// Within-shard source degradation (some shard detoured to a worse
    /// source but still answered), when any.
    pub degraded: Option<Degradation>,
}

impl ShardAnswer {
    /// True when at least one shard is missing from the answer.
    pub fn is_partial(&self) -> bool {
        self.missing_shards != 0
    }

    /// Indices of the missing shards, ascending.
    pub fn missing_indices(&self) -> Vec<usize> {
        (0..self.shard_count).filter(|i| self.missing_shards >> i & 1 == 1).collect()
    }
}

/// What a routed delta did, shard by shard.
#[derive(Debug)]
pub struct ShardedDeltaReport {
    /// Fact rows in the batch (across all shards).
    pub rows: u64,
    /// Cells merged across all shards' materialized views.
    pub cells_touched: u64,
    /// Per-shard fold reports, in shard order (empty sub-batches included:
    /// every shard reseals so lattice shapes stay in lockstep).
    pub per_shard: Vec<DeltaReport>,
}

/// N independent [`SharedViewStore`] shards behind one routing policy:
/// the coordinator of the scatter-gather protocol described at module
/// level. Cloning is cheap (each shard is `Arc`-shared) and clones serve
/// concurrently, like [`SharedViewStore`] itself.
#[derive(Debug, Clone)]
pub struct ShardedViewStore {
    router: ShardRouter,
    shards: Vec<SharedViewStore>,
}

impl ShardedViewStore {
    /// Partitions `input` by `router` and builds `shards` independent
    /// stores, each materializing the same `selected` views over its rows
    /// alone. Shards left empty by the partition are built too (an empty
    /// store answers every mask with zero cells), so shard topology never
    /// depends on data skew.
    pub fn build(
        input: &FactInput,
        selected: &[u32],
        router: ShardRouter,
        shards: usize,
        config: CacheConfig,
    ) -> Result<Self> {
        router.validate(input.dim_count(), shards)?;
        let parts = split_facts(input, &router, shards)?;
        let built = parts
            .iter()
            .map(|p| SharedViewStore::build(p, selected, config))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { router, shards: built })
    }

    /// [`ShardedViewStore::build`] with one write-ahead journal *per
    /// shard* (`parts[i]` backs shard `i`), so durability and recovery
    /// stay shard-local and parallel.
    pub fn build_durable_on(
        input: &FactInput,
        selected: &[u32],
        router: ShardRouter,
        config: CacheConfig,
        parts: &[DurableParts],
    ) -> Result<Self> {
        let shards = parts.len();
        router.validate(input.dim_count(), shards)?;
        let split = split_facts(input, &router, shards)?;
        let built = split
            .iter()
            .zip(parts)
            .map(|(p, d)| SharedViewStore::build_durable_on(p, selected, config, d.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { router, shards: built })
    }

    /// Recovers every shard from its own journal + manifest, in parallel
    /// (shard recoveries are independent by construction — no cross-shard
    /// ordering exists to violate). Reports come back in shard order.
    pub fn recover(
        router: ShardRouter,
        parts: &[DurableParts],
        config: CacheConfig,
    ) -> Result<(Self, Vec<RecoveryReport>)> {
        let recovered: Vec<Result<(SharedViewStore, RecoveryReport)>> = thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|d| s.spawn(move || SharedViewStore::recover(d, config)))
                .collect();
            handles.into_iter().map(join_shard).collect()
        });
        let mut shards = Vec::with_capacity(parts.len());
        let mut reports = Vec::with_capacity(parts.len());
        for r in recovered {
            let (store, report) = r?;
            shards.push(store);
            reports.push(report);
        }
        let me = Self { router, shards };
        me.router.validate(me.dim_count(), me.shards.len())?;
        Ok((me, reports))
    }

    /// The routing policy.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to shard `i` (tests, benchmarks, chaos hooks).
    pub fn shard(&self, i: usize) -> Option<&SharedViewStore> {
        self.shards.get(i)
    }

    /// The shards as coordinator-facing nodes, in shard order.
    pub fn nodes(&self) -> Vec<&dyn ShardNode> {
        self.shards.iter().map(|s| s as &dyn ShardNode).collect()
    }

    /// Dimension count (identical across shards; 0 only if shardless,
    /// which construction forbids).
    pub fn dim_count(&self) -> usize {
        self.shards.first().map_or(0, |s| s.dim_count())
    }

    /// The top (base) cuboid mask.
    pub fn top(&self) -> u32 {
        self.shards.first().map_or(0, |s| s.top())
    }

    /// Sum of per-shard publication generations: changes whenever any
    /// shard republishes, so it keys plan caches exactly like
    /// [`SharedViewStore::generation`] does for one store.
    pub fn generation(&self) -> u64 {
        self.shards.iter().map(|s| s.generation()).sum()
    }

    /// Aggregated answer-cache statistics across shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut acc = CacheStats::default();
        for s in &self.shards {
            let st = s.cache_stats();
            acc.hits += st.hits;
            acc.misses += st.misses;
            acc.insertions += st.insertions;
            acc.evictions += st.evictions;
            acc.rejected += st.rejected;
            acc.invalidations += st.invalidations;
            acc.degraded_skips += st.degraded_skips;
            acc.bytes_used += st.bytes_used;
            acc.entries += st.entries;
        }
        acc
    }

    /// Plans one physical query per shard through a caller-supplied
    /// planner (the SQL layer passes a schema-aware one). Plans come back
    /// in shard order, ready for [`ShardedViewStore::execute_planned`].
    /// Planning failure is query-invalidity, not shard death, so the
    /// first failure aborts the whole scatter.
    pub fn plan_each<F>(&self, mut plan_for: F) -> Result<Vec<Arc<PlannedQuery>>>
    where
        F: FnMut(&dyn ShardNode) -> Result<PlannedQuery>,
    {
        self.shards.iter().map(|s| plan_for(s as &dyn ShardNode).map(Arc::new)).collect()
    }

    /// Per-shard physical plans for a logical plan under a policy: the
    /// standard cube-mask planning path, per shard (each shard's catalog
    /// carries its own cell counts, so fallback chains may differ).
    pub fn plan_shards(
        &self,
        logical: &Plan,
        policy: &PrivacyPolicy,
        config: PlannerConfig,
    ) -> Result<Vec<Arc<PlannedQuery>>> {
        self.plan_each(|node| {
            Planner::for_store(node.dim_count(), &node.catalog())
                .with_policy(policy.clone())
                .with_config(config)
                .plan(logical)
        })
    }

    /// The shards that can own a row whose routing-dimension coordinate
    /// is in `allowed` (`None` = unconstrained): routes every allowed
    /// value and collects the distinct owners, ascending. An empty filter
    /// set keeps shard 0, so the scatter still yields one (empty) partial
    /// rather than a vacuous no-answer error.
    fn owned_shards(&self, allowed: Option<&[u32]>) -> Vec<usize> {
        let n = self.shards.len();
        let Some(values) = allowed else { return (0..n).collect() };
        let mut owned: Vec<usize> = values.iter().map(|&v| self.router.route_coord(v, n)).collect();
        owned.sort_unstable();
        owned.dedup();
        if owned.is_empty() {
            owned.push(0);
        }
        owned
    }

    /// The routing-dimension constraint the executor will actually apply,
    /// if any. Pruning reads the compiled plan's *pushed* scan filters —
    /// never the logical query — so a shard is only skipped when the scan
    /// itself would reject every row it owns. (`leaf_predicates` are a
    /// SQL-layer concern the core executor ignores, so they never prune.)
    fn router_filter<'p>(&self, planned: &'p PlannedQuery) -> Option<&'p [u32]> {
        let dim = self.router.dim();
        planned.scan_filters.iter().find(|(d, _)| *d == dim).map(|(_, allowed)| allowed.as_slice())
    }

    /// The scatter-gather core: fans `plans[i]` out to shard `i` on scoped
    /// threads, gathers pre-enforcement partials, merges them in shard
    /// order through the [`statcube_core::plan::merge_blocks`] monoid, and
    /// enforces `policy` once on the merged cells. When the plan carries a
    /// scan filter on the routing dimension, shards that provably own no
    /// matching row are pruned from the scatter entirely (reported in
    /// [`ShardedExecution::pruned_shards`], not as missing). A scattered
    /// shard whose execution errors becomes a missing bit plus its typed
    /// error; only when *every* scattered shard fails does the call error
    /// (with the first shard's error — an invalid query fails identically
    /// everywhere).
    pub fn execute_planned(
        &self,
        plans: &[Arc<PlannedQuery>],
        policy: &PrivacyPolicy,
    ) -> Result<(ShardedExecution, Vec<(usize, Error)>)> {
        if plans.len() != self.shards.len() {
            return Err(Error::InvalidSchema(format!(
                "{} plans for {} shards",
                plans.len(),
                self.shards.len()
            )));
        }
        let owned = self.owned_shards(plans.first().and_then(|p| self.router_filter(p)));
        let subset: Vec<(usize, &Arc<PlannedQuery>)> =
            owned.iter().map(|&i| (i, &plans[i])).collect();
        self.scatter(&subset, policy)
    }

    /// Scatters to exactly the listed `(shard index, plan)` pairs and
    /// gathers/merges as documented on [`ShardedViewStore::execute_planned`].
    /// Shard indices absent from the list come back as pruned bits.
    fn scatter(
        &self,
        subset: &[(usize, &Arc<PlannedQuery>)],
        policy: &PrivacyPolicy,
    ) -> Result<(ShardedExecution, Vec<(usize, Error)>)> {
        let n = self.shards.len();
        let scattered: u32 = subset.iter().fold(0, |m, &(i, _)| m | (1u32 << i));
        let all = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
        let pruned = all & !scattered;
        let mut sp = trace::span("cube.scatter");
        sp.record("shards", n as u64);
        sp.record("pruned", u64::from(pruned.count_ones()));
        let results: Vec<Result<PartialExecution>> = if let [(i, planned)] = *subset {
            // Single-shard fast path: a pruned slice (or N=1) has nothing
            // to overlap, and a per-query thread spawn would cost more
            // than the one shard's scan it fronts. Same panic contract as
            // the scoped worker.
            vec![std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (&self.shards[i] as &dyn ShardNode).partial(planned)
            }))
            .unwrap_or_else(|_| Err(Error::InvalidSchema("shard worker panicked".into())))]
        } else {
            thread::scope(|s| {
                let handles: Vec<_> = subset
                    .iter()
                    .map(|&(i, planned)| {
                        let node: &dyn ShardNode = &self.shards[i];
                        s.spawn(move || node.partial(planned))
                    })
                    .collect();
                handles.into_iter().map(join_shard).collect()
            })
        };
        let mut parts = Vec::with_capacity(results.len());
        let mut failed = Vec::new();
        for (&(i, _), r) in subset.iter().zip(results) {
            match r {
                Ok(p) => parts.push(Some(p)),
                Err(e) => {
                    failed.push((i, e));
                    parts.push(None);
                }
            }
        }
        sp.record("failed", failed.len() as u64);
        drop(sp);
        if parts.iter().all(Option::is_none) {
            // Every scattered shard refused: surface the (shared) cause
            // rather than a vacuous empty answer.
            let (_, e) = failed
                .into_iter()
                .next()
                .ok_or_else(|| Error::InvalidSchema("scatter over zero shards".into()))?;
            return Err(e);
        }
        let mut exec = plan::merge_partials(policy, &parts)?;
        // merge_partials saw the compacted scatter list; re-key its masks
        // to global shard indices and stamp the pruned set.
        let mut missing = 0u32;
        for (j, &(i, _)) in subset.iter().enumerate() {
            if exec.missing_shards >> j & 1 == 1 {
                missing |= 1 << i;
            }
        }
        exec.missing_shards = missing;
        exec.shard_count = n;
        exec.pruned_shards = pruned;
        Ok((exec, failed))
    }

    /// Answers cuboid `mask` with no privacy policy.
    pub fn answer(&self, mask: u32) -> Result<ShardAnswer> {
        self.answer_with_policy(mask, &PrivacyPolicy::none(), PlannerConfig::default())
    }

    /// Answers cuboid `mask` under a policy: plan per shard, scatter,
    /// merge, enforce once, and project the merged block to a [`Cuboid`]
    /// (suppressed cells omitted, as on the unsharded path).
    pub fn answer_with_policy(
        &self,
        mask: u32,
        policy: &PrivacyPolicy,
        config: PlannerConfig,
    ) -> Result<ShardAnswer> {
        self.answer_filtered(mask, &[], policy, config)
    }

    /// Plans, prunes, scatters, and merges a filtered cuboid query,
    /// returning the merged [`ShardedExecution`] (enforced cell blocks)
    /// plus per-shard failures — the block-level serving entry a SQL
    /// session drives directly. [`ShardedViewStore::answer_filtered`]
    /// wraps this and additionally projects the block into a [`Cuboid`]
    /// map for the cube-level API; servers that stream blocks onward
    /// should stay at this layer and skip that projection.
    ///
    /// A filter on the routing dimension prunes the scatter: only shards
    /// that can own a matching row are planned and executed at all, so a
    /// selective slice on the shard key costs one shard's scan, not N
    /// (the subcube-partitioning payoff of §6.4, measured in E30).
    pub fn execute_filtered(
        &self,
        mask: u32,
        filters: &[CodedPredicate],
        policy: &PrivacyPolicy,
        config: PlannerConfig,
    ) -> Result<(ShardedExecution, Vec<(usize, Error)>)> {
        let logical = Plan::scan("cube").aggregate_mask(mask);
        let plan_for = |node: &dyn ShardNode| {
            Planner::for_store(node.dim_count(), &node.catalog())
                .with_policy(policy.clone())
                .with_config(config)
                .with_coded_filters(filters.to_vec())
                .plan(&logical)
        };
        let first = self
            .shards
            .first()
            .map(|s| plan_for(s as &dyn ShardNode).map(Arc::new))
            .transpose()?
            .ok_or_else(|| Error::InvalidSchema("scatter over zero shards".into()))?;
        if !first.leaf_predicates.is_empty() {
            // The core executor applies pushed scan filters only; a plan
            // that parked predicates at the (SQL-layer) leaf would come
            // back silently unfiltered here.
            return Err(Error::InvalidSchema(
                "filtered cuboid answers require predicate pushdown".into(),
            ));
        }
        // One representative plan decides pruning — plans differ across
        // shards only in catalog cell counts, never in filters — so
        // non-owning shards are skipped before they are even planned.
        let owned = self.owned_shards(self.router_filter(&first));
        let mut subset: Vec<(usize, Arc<PlannedQuery>)> = Vec::with_capacity(owned.len());
        for &i in &owned {
            let planned = if i == 0 {
                Arc::clone(&first)
            } else {
                Arc::new(plan_for(&self.shards[i] as &dyn ShardNode)?)
            };
            subset.push((i, planned));
        }
        let borrowed: Vec<(usize, &Arc<PlannedQuery>)> =
            subset.iter().map(|(i, p)| (*i, p)).collect();
        self.scatter(&borrowed, policy)
    }

    /// Answers cuboid `mask` restricted by dimension-coded slice filters —
    /// [`ShardedViewStore::execute_filtered`] plus a projection of the
    /// merged block into a [`Cuboid`] (suppressed cells omitted, as on the
    /// unsharded path).
    pub fn answer_filtered(
        &self,
        mask: u32,
        filters: &[CodedPredicate],
        policy: &PrivacyPolicy,
        config: PlannerConfig,
    ) -> Result<ShardAnswer> {
        let (exec, failed) = self.execute_filtered(mask, filters, policy, config)?;
        let shard_count = exec.shard_count;
        let missing_shards = exec.missing_shards;
        let pruned_shards = exec.pruned_shards;
        let sa = exec
            .execution
            .sets
            .into_iter()
            .next()
            .ok_or_else(|| Error::InvalidSchema("planner produced no grouping set".into()))?;
        let block = &sa.cells;
        let mut cuboid: Cuboid = HashMap::with_capacity(block.len());
        for i in 0..block.len() {
            if block.is_suppressed(i) {
                continue;
            }
            let state =
                if block.measure_count() == 0 { AggState::EMPTY } else { block.state(0, i) };
            cuboid.insert(block.key(i).to_vec().into_boxed_slice(), state);
        }
        let degraded = sa.degraded.map(|d| Degradation {
            requested: d.requested,
            served_from: d.served_from,
            failed: d.failed,
            extra_cells: d.extra_cells,
        });
        Ok(ShardAnswer {
            cuboid,
            cells_scanned: sa.cells_scanned,
            cache_hit: sa.cache_hit,
            shard_count,
            missing_shards,
            pruned_shards,
            failed,
            degraded,
        })
    }

    /// Routes a delta batch to its owning shards and folds them in
    /// parallel. Every shard is validated against its sub-batch *first*
    /// (all-or-nothing admission: a batch any shard would refuse is
    /// refused before any shard journals or folds it), then every shard —
    /// including those with empty sub-batches — applies its part on a
    /// scoped thread, so lattice cardinalities grow in lockstep and
    /// per-shard journals stay independently replayable.
    pub fn apply_delta(&self, delta: &FactInput) -> Result<ShardedDeltaReport> {
        if delta.dim_count() != self.dim_count() {
            return Err(Error::ArityMismatch {
                expected: self.dim_count(),
                got: delta.dim_count(),
            });
        }
        let parts = split_facts(delta, &self.router, self.shards.len())?;
        for (shard, part) in self.shards.iter().zip(&parts) {
            ShardNode::validate_delta(shard, part)?;
        }
        let results: Vec<Result<DeltaReport>> = thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&parts)
                .map(|(shard, part)| {
                    let node: &dyn ShardNode = shard;
                    s.spawn(move || node.apply_delta(part))
                })
                .collect();
            handles.into_iter().map(join_shard).collect()
        });
        let per_shard = results.into_iter().collect::<Result<Vec<_>>>()?;
        let cells_touched = per_shard.iter().map(|r| r.cells_touched).sum();
        Ok(ShardedDeltaReport { rows: delta.len() as u64, cells_touched, per_shard })
    }

    /// Chaos hook: corrupts every materialized view of shard `i`, so its
    /// next scatter finds no healthy source and the gathered answer goes
    /// partial with bit `i` set. Pair with [`ShardedViewStore::heal`] (or
    /// any delta, which reseals every shard) to bring it back.
    pub fn kill_shard(&self, i: usize) -> Result<()> {
        let shard =
            self.shards.get(i).ok_or_else(|| Error::InvalidSchema(format!("no shard {i}")))?;
        for mask in ShardNode::materialized(shard) {
            ShardNode::corrupt_view(shard, mask, 1)?;
        }
        Ok(())
    }

    /// Reseals every shard by applying an empty delta: corrupted sealed
    /// files are rebuilt from resident cuboids, reviving killed shards.
    pub fn heal(&self) -> Result<ShardedDeltaReport> {
        let cards: Vec<usize> = self
            .shards
            .first()
            .map(|s| s.snapshot().store().lattice().cards())
            .ok_or_else(|| Error::InvalidSchema("no shards to heal".into()))?;
        let empty = FactInput::new(&cards)?;
        self.apply_delta(&empty)
    }

    /// Runs every shard's verification scrub, erroring on the first shard
    /// reporting damage.
    pub fn verify_all(&self) -> Result<()> {
        for s in &self.shards {
            s.verify_all()?;
        }
        Ok(())
    }
}

/// Joins a scoped shard worker, converting a panic into a typed error so
/// one poisoned shard can degrade — not sink — the gather.
fn join_shard<T>(h: thread::ScopedJoinHandle<'_, Result<T>>) -> Result<T> {
    h.join().unwrap_or_else(|_| Err(Error::InvalidSchema("shard worker panicked".into())))
}

/// Partitions `facts` into `n` sub-inputs by router, all declaring the
/// parent's cardinalities (so every shard's lattice has the same shape,
/// populated or not).
fn split_facts(facts: &FactInput, router: &ShardRouter, n: usize) -> Result<Vec<FactInput>> {
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        parts.push(FactInput::new(facts.cards())?);
    }
    for row in 0..facts.len() {
        let coords = facts.coords(row);
        let s = router.route(&coords, n);
        if let Some(p) = parts.get_mut(s) {
            p.push(&coords, facts.measure()[row])?;
        }
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(rows: usize, seed: u64) -> FactInput {
        let mut f = FactInput::new(&[16, 6, 4, 3]).unwrap();
        let mut x = seed | 1;
        for _ in 0..rows {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            f.push(
                &[
                    (x % 16) as u32,
                    ((x >> 8) % 6) as u32,
                    ((x >> 16) % 4) as u32,
                    ((x >> 24) % 3) as u32,
                ],
                (x % 100) as f64,
            )
            .unwrap();
        }
        f
    }

    fn bit_identical(a: &Cuboid, b: &Cuboid) -> bool {
        a.len() == b.len()
            && a.iter().all(|(k, s)| {
                b.get(k).is_some_and(|t| {
                    s.sum.to_bits() == t.sum.to_bits()
                        && s.count == t.count
                        && s.min.to_bits() == t.min.to_bits()
                        && s.max.to_bits() == t.max.to_bits()
                })
            })
    }

    #[test]
    fn routers_are_total_and_deterministic() {
        let h = ShardRouter::Hash { dim: 0 };
        let r = ShardRouter::Range { dim: 1, bounds: vec![2, 4] };
        for c in 0..1000u32 {
            let s1 = h.route(&[c, 0], 4);
            assert_eq!(s1, h.route(&[c, 0], 4));
            assert!(s1 < 4);
            let s2 = r.route(&[0, c], 3);
            let expect = if c < 2 {
                0
            } else if c < 4 {
                1
            } else {
                2
            };
            assert_eq!(s2, expect, "coord {c}");
        }
        assert!(r.validate(2, 3).is_ok());
        assert!(r.validate(1, 3).is_err(), "dim out of range");
        assert!(r.validate(2, 4).is_err(), "bounds/shards mismatch");
        assert!(ShardRouter::Range { dim: 0, bounds: vec![4, 2] }.validate(1, 3).is_err());
        assert!(h.validate(1, 0).is_err());
        assert!(h.validate(1, MAX_SHARDS + 1).is_err());
    }

    #[test]
    fn sharded_matches_unsharded_bit_for_bit() {
        let f = facts(1200, 7);
        let unsharded = SharedViewStore::build(&f, &[0b0111], CacheConfig::default()).unwrap();
        for router in
            [ShardRouter::Hash { dim: 0 }, ShardRouter::Range { dim: 0, bounds: vec![4, 8, 12] }]
        {
            let sharded =
                ShardedViewStore::build(&f, &[0b0111], router, 4, CacheConfig::default()).unwrap();
            for mask in [0b0000u32, 0b0001, 0b0101, 0b1111] {
                let a = unsharded.answer(mask).unwrap();
                let b = sharded.answer(mask).unwrap();
                assert!(!b.is_partial());
                assert!(bit_identical(&a.cuboid, &b.cuboid), "mask {mask:04b}");
            }
        }
    }

    #[test]
    fn empty_shards_answer_and_fold_deltas() {
        let f = facts(300, 9);
        // Range bounds past every coordinate: shards 1 and 2 start empty.
        let router = ShardRouter::Range { dim: 0, bounds: vec![100, 200] };
        let sharded = ShardedViewStore::build(&f, &[], router, 3, CacheConfig::default()).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        let whole = sharded.answer(0b0001).unwrap();
        assert!(!whole.is_partial());
        let mut delta = FactInput::new(f.cards()).unwrap();
        delta.push(&[15, 5, 3, 2], 42.0).unwrap();
        let report = sharded.apply_delta(&delta).unwrap();
        assert_eq!(report.rows, 1);
        assert_eq!(report.per_shard.len(), 3);
        let after = sharded.answer(0b0001).unwrap();
        let total: f64 = after.cuboid.values().map(|s| s.sum).sum();
        let before: f64 = whole.cuboid.values().map(|s| s.sum).sum();
        assert_eq!(total, before + 42.0);
    }

    #[test]
    fn dead_shard_is_a_typed_partial_answer() {
        let f = facts(800, 21);
        let sharded = ShardedViewStore::build(
            &f,
            &[0b0011],
            ShardRouter::Hash { dim: 0 },
            4,
            CacheConfig::disabled(),
        )
        .unwrap();
        let whole = sharded.answer(0b0011).unwrap();
        assert!(!whole.is_partial());
        sharded.kill_shard(2).unwrap();
        let partial = sharded.answer(0b0011).unwrap();
        assert!(partial.is_partial());
        assert_eq!(partial.missing_shards, 1 << 2);
        assert_eq!(partial.missing_indices(), vec![2]);
        assert_eq!(partial.failed.len(), 1);
        assert_eq!(partial.failed[0].0, 2);
        // Survivors only: never a silently wrong global total.
        let alive: f64 = partial.cuboid.values().map(|s| s.sum).sum();
        let total: f64 = whole.cuboid.values().map(|s| s.sum).sum();
        assert!(alive < total);
        // Healing reseals the corrupted shard and restores the full answer.
        sharded.heal().unwrap();
        let healed = sharded.answer(0b0011).unwrap();
        assert!(!healed.is_partial());
        assert!(bit_identical(&whole.cuboid, &healed.cuboid));
    }

    #[test]
    fn all_shards_dead_surfaces_the_error() {
        let f = facts(400, 33);
        let sharded = ShardedViewStore::build(
            &f,
            &[],
            ShardRouter::Hash { dim: 0 },
            2,
            CacheConfig::disabled(),
        )
        .unwrap();
        sharded.kill_shard(0).unwrap();
        sharded.kill_shard(1).unwrap();
        assert!(sharded.answer(0b0001).is_err());
    }

    #[test]
    fn merge_then_enforce_differs_from_enforce_per_shard() {
        // A cell with one unit per shard: global count 3 survives k=3
        // suppression, while any per-shard pass would have zeroed it.
        let mut f = FactInput::new(&[4, 2]).unwrap();
        for c in 0..3u32 {
            f.push(&[c, 0], 10.0).unwrap();
        }
        let sharded = ShardedViewStore::build(
            &f,
            &[],
            ShardRouter::Hash { dim: 0 },
            3,
            CacheConfig::default(),
        )
        .unwrap();
        let policy = PrivacyPolicy::suppress(3);
        let ans = sharded.answer_with_policy(0b10, &policy, PlannerConfig::default()).unwrap();
        let cell = ans.cuboid.get(&vec![0u32].into_boxed_slice());
        assert!(cell.is_some(), "globally-large cell must survive suppression");
        assert_eq!(cell.map(|s| s.count), Some(3));
    }

    /// Unsharded filtered oracle: the same coded filters through the
    /// plan layer against one store, projected to a cuboid.
    fn filtered_oracle(store: &SharedViewStore, mask: u32, filters: &[CodedPredicate]) -> Cuboid {
        let catalog = ShardNode::catalog(store);
        let planned = Planner::for_store(store.dim_count(), &catalog)
            .with_coded_filters(filters.to_vec())
            .plan(&Plan::scan("cube").aggregate_mask(mask))
            .unwrap();
        let exec = plan::execute(&planned, &store.plan_source()).unwrap();
        let block = &exec.sets[0].cells;
        let mut out: Cuboid = HashMap::new();
        for i in 0..block.len() {
            if !block.is_suppressed(i) {
                out.insert(block.key(i).to_vec().into_boxed_slice(), block.state(0, i));
            }
        }
        out
    }

    #[test]
    fn router_dim_filter_prunes_the_scatter_and_stays_exact() {
        let f = facts(1500, 11);
        let unsharded = SharedViewStore::build(&f, &[], CacheConfig::disabled()).unwrap();
        for router in
            [ShardRouter::Hash { dim: 0 }, ShardRouter::Range { dim: 0, bounds: vec![4, 8, 12] }]
        {
            let sharded =
                ShardedViewStore::build(&f, &[], router.clone(), 4, CacheConfig::disabled())
                    .unwrap();
            for v in 0..16u32 {
                let filters = vec![CodedPredicate { dim: 0, allowed: vec![v] }];
                for mask in [0b0001u32, 0b0110, 0b1111] {
                    let ans = sharded
                        .answer_filtered(
                            mask,
                            &filters,
                            &PrivacyPolicy::none(),
                            PlannerConfig::default(),
                        )
                        .unwrap();
                    // A single-value slice on the shard key touches
                    // exactly one shard; the rest are pruned, not missing.
                    assert!(!ans.is_partial());
                    let owner = router.route_coord(v, 4);
                    assert_eq!(ans.pruned_shards, 0b1111 & !(1u32 << owner), "value {v}");
                    let oracle = filtered_oracle(&unsharded, mask, &filters);
                    assert!(
                        bit_identical(&oracle, &ans.cuboid),
                        "router {router:?} value {v} mask {mask:04b}"
                    );
                }
            }
            // A filter on a non-routing dimension prunes nothing.
            let off_dim = vec![CodedPredicate { dim: 1, allowed: vec![2] }];
            let ans = sharded
                .answer_filtered(0b0011, &off_dim, &PrivacyPolicy::none(), PlannerConfig::default())
                .unwrap();
            assert_eq!(ans.pruned_shards, 0);
            assert!(bit_identical(&filtered_oracle(&unsharded, 0b0011, &off_dim), &ans.cuboid));
            // A contradiction (empty allowed set) answers empty, no error.
            let none = vec![CodedPredicate { dim: 0, allowed: vec![] }];
            let ans = sharded
                .answer_filtered(0b0001, &none, &PrivacyPolicy::none(), PlannerConfig::default())
                .unwrap();
            assert!(ans.cuboid.is_empty());
            assert!(!ans.is_partial());
        }
    }

    #[test]
    fn pruned_dead_shard_does_not_go_missing() {
        let f = facts(900, 17);
        let router = ShardRouter::Range { dim: 0, bounds: vec![8] };
        let sharded = ShardedViewStore::build(&f, &[], router, 2, CacheConfig::disabled()).unwrap();
        sharded.kill_shard(1).unwrap();
        // Values below 8 live on shard 0; dead shard 1 is pruned away, so
        // the slice is complete even though half the store is down.
        let filters = vec![CodedPredicate { dim: 0, allowed: vec![3] }];
        let ans = sharded
            .answer_filtered(0b0001, &filters, &PrivacyPolicy::none(), PlannerConfig::default())
            .unwrap();
        assert!(!ans.is_partial(), "a pruned shard must not be reported missing");
        assert_eq!(ans.pruned_shards, 0b10);
        assert!(!ans.cuboid.is_empty());
        // A slice owned entirely by the dead shard has no surviving data
        // at all: that is the all-scattered-shards-failed case, which
        // surfaces the typed error (as when every shard of an unfiltered
        // scatter dies) rather than fabricating an empty "answer".
        let dead_side = vec![CodedPredicate { dim: 0, allowed: vec![12] }];
        assert!(sharded
            .answer_filtered(0b0001, &dead_side, &PrivacyPolicy::none(), PlannerConfig::default())
            .is_err());
    }

    #[test]
    fn generation_tracks_every_shard() {
        let f = facts(200, 5);
        let sharded = ShardedViewStore::build(
            &f,
            &[],
            ShardRouter::Hash { dim: 0 },
            2,
            CacheConfig::default(),
        )
        .unwrap();
        let g0 = sharded.generation();
        let mut delta = FactInput::new(f.cards()).unwrap();
        delta.push(&[0, 0, 0, 0], 1.0).unwrap();
        sharded.apply_delta(&delta).unwrap();
        assert!(sharded.generation() > g0);
    }
}
