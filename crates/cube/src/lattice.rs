//! The cuboid lattice (§6.3, Fig 22, \[HUR96\]).
//!
//! Every subset of the dimensions is a candidate summarization; an edge
//! runs from each cuboid to the cuboids it can be derived from. The lattice
//! carries the **estimated size** of each cuboid — the inputs the greedy
//! view-selection algorithm of [`crate::materialize`] needs. Size
//! estimation uses the standard independence bound: a cuboid holds at most
//! `min(Π cards of kept dims, base row count)` cells.

use statcube_core::error::{Error, Result};

/// The lattice of the `2^n` cuboids over `n` dimensions.
#[derive(Debug, Clone)]
pub struct Lattice {
    cards: Vec<u64>,
    base_rows: u64,
    sizes: Vec<u64>,
}

impl Lattice {
    /// Builds the lattice for dimensions of the given cardinalities and a
    /// base fact count.
    pub fn new(cards: &[usize], base_rows: u64) -> Result<Self> {
        if cards.is_empty() || cards.contains(&0) {
            return Err(Error::InvalidSchema("need non-zero dimension cardinalities".into()));
        }
        if cards.len() > 20 {
            return Err(Error::InvalidSchema("lattice supports at most 20 dimensions".into()));
        }
        let cards: Vec<u64> = cards.iter().map(|&c| c as u64).collect();
        let n = cards.len();
        let mut sizes = vec![0u64; 1 << n];
        for (mask, size) in sizes.iter_mut().enumerate() {
            let mut prod: u64 = 1;
            for (d, &card) in cards.iter().enumerate() {
                if mask & (1 << d) != 0 {
                    prod = prod.saturating_mul(card);
                }
            }
            *size = prod.min(base_rows.max(1));
        }
        Ok(Self { cards, base_rows, sizes })
    }

    /// Replaces estimated sizes with measured ones (e.g. from an actual
    /// [`crate::cube_op::CubeResult`]).
    pub fn with_measured_sizes(mut self, sizes: &[(u32, u64)]) -> Self {
        for &(mask, size) in sizes {
            if (mask as usize) < self.sizes.len() {
                self.sizes[mask as usize] = size.max(1);
            }
        }
        self
    }

    /// Number of dimensions.
    pub fn dim_count(&self) -> usize {
        self.cards.len()
    }

    /// The dimension cardinalities.
    pub fn cards(&self) -> Vec<usize> {
        self.cards.iter().map(|&c| c as usize).collect()
    }

    /// Number of cuboids (`2^n`).
    pub fn cuboid_count(&self) -> usize {
        self.sizes.len()
    }

    /// The mask of the base (finest) cuboid.
    pub fn top(&self) -> u32 {
        (self.sizes.len() - 1) as u32
    }

    /// Base fact count.
    pub fn base_rows(&self) -> u64 {
        self.base_rows
    }

    /// Estimated cell count of cuboid `mask`.
    pub fn size(&self, mask: u32) -> u64 {
        self.sizes[mask as usize]
    }

    /// True if cuboid `a` can be answered from cuboid `b` (`a`'s grouping
    /// set ⊆ `b`'s) — the derivability ("≼") relation of Fig 22.
    pub fn derivable_from(&self, a: u32, b: u32) -> bool {
        a & !b == 0
    }

    /// The direct parents of `mask` (one more dimension kept).
    pub fn parents(&self, mask: u32) -> Vec<u32> {
        (0..self.cards.len())
            .filter_map(|d| {
                let bit = 1u32 << d;
                if mask & bit == 0 {
                    Some(mask | bit)
                } else {
                    None
                }
            })
            .collect()
    }

    /// The direct children of `mask` (one fewer dimension kept).
    pub fn children(&self, mask: u32) -> Vec<u32> {
        (0..self.cards.len())
            .filter_map(|d| {
                let bit = 1u32 << d;
                if mask & bit != 0 {
                    Some(mask & !bit)
                } else {
                    None
                }
            })
            .collect()
    }

    /// The coarsening schedule of the pipeline scheduler: all cuboid masks
    /// grouped by level (number of kept dimensions), from `n − 1` kept
    /// dimensions down to the apex. Every mask in a level has all of its
    /// direct parents in earlier groups (or at the top), so the levels can
    /// be computed as a pipeline of barriers with the masks *within* one
    /// level derived independently — and therefore in parallel. The base
    /// (full) mask is not listed; it is computed from the facts.
    pub fn coarsening_levels(&self) -> Vec<Vec<u32>> {
        let n = self.cards.len();
        let mut levels: Vec<Vec<u32>> = vec![Vec::new(); n];
        for mask in 0..self.top() {
            // Level index 0 holds popcount n−1, index n−1 holds the apex.
            levels[n - 1 - mask.count_ones() as usize].push(mask);
        }
        levels
    }

    /// All cuboids derivable from `mask` (its descendants, including
    /// itself).
    pub fn descendants(&self, mask: u32) -> Vec<u32> {
        // Enumerate submasks of `mask`.
        let mut out = Vec::new();
        let mut sub = mask;
        loop {
            out.push(sub);
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & mask;
        }
        out
    }

    /// Renders the Fig 22 diagram for small lattices: one line per level,
    /// cuboids named by the kept dimension names.
    pub fn render(&self, dim_names: &[&str]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for level in (0..=self.cards.len()).rev() {
            let mut names: Vec<String> = Vec::new();
            for mask in 0..self.sizes.len() as u32 {
                if mask.count_ones() as usize != level {
                    continue;
                }
                let name: Vec<&str> = (0..self.cards.len())
                    .filter(|d| mask & (1 << d) != 0)
                    .map(|d| dim_names.get(d).copied().unwrap_or("?"))
                    .collect();
                let label = if name.is_empty() { "(apex)".to_owned() } else { name.join(", ") };
                names.push(format!("{{{label}}}={}", self.size(mask)));
            }
            let _ = writeln!(out, "level {level}: {}", names.join("  "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig 22 example: product, location, day.
    fn fig22() -> Lattice {
        Lattice::new(&[1000, 50, 365], 1_000_000).unwrap()
    }

    #[test]
    fn sizes_follow_independence_bound() {
        let l = fig22();
        assert_eq!(l.cuboid_count(), 8);
        assert_eq!(l.size(0), 1); // apex
        assert_eq!(l.size(0b001), 1000); // product
        assert_eq!(l.size(0b010), 50); // location
        assert_eq!(l.size(0b011), 50_000); // product, location
                                           // product × location × day = 18.25e6 > 1e6 base rows → clamped.
        assert_eq!(l.size(l.top()), 1_000_000);
    }

    #[test]
    fn derivability_and_structure() {
        let l = fig22();
        // "location can be derived from location,day or product,location".
        assert!(l.derivable_from(0b010, 0b110));
        assert!(l.derivable_from(0b010, 0b011));
        assert!(!l.derivable_from(0b011, 0b010));
        assert_eq!(l.parents(0b010).len(), 2);
        assert_eq!(l.children(0b111).len(), 3);
        assert_eq!(l.children(0), Vec::<u32>::new());
        let mut d = l.descendants(0b011);
        d.sort_unstable();
        assert_eq!(d, vec![0b000, 0b001, 0b010, 0b011]);
        assert_eq!(l.descendants(l.top()).len(), 8);
    }

    #[test]
    fn coarsening_levels_are_a_valid_schedule() {
        let l = fig22();
        let levels = l.coarsening_levels();
        assert_eq!(levels.len(), 3);
        // Level populations follow binomial coefficients: C(3,2), C(3,1), C(3,0).
        assert_eq!(levels.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 1]);
        // Every mask excludes the top and appears exactly once.
        let mut all: Vec<u32> = levels.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..l.top()).collect::<Vec<_>>());
        // Parents of every mask live strictly earlier in the schedule (or
        // are the top itself).
        for (i, level) in levels.iter().enumerate() {
            for &mask in level {
                for parent in l.parents(mask) {
                    let parent_level = levels.iter().position(|lv| lv.contains(&parent));
                    match parent_level {
                        Some(pl) => assert!(pl < i, "parent {parent:b} of {mask:b} not earlier"),
                        None => assert_eq!(parent, l.top()),
                    }
                }
            }
        }
    }

    #[test]
    fn measured_sizes_override() {
        let l = fig22().with_measured_sizes(&[(0b011, 42_123)]);
        assert_eq!(l.size(0b011), 42_123);
        assert_eq!(l.size(0b001), 1000);
    }

    #[test]
    fn measured_sizes_ignore_out_of_range_masks() {
        let before = fig22();
        // 3 dimensions → valid masks are 0..8; everything above is ignored
        // rather than panicking (measured sizes may come from a wider cube).
        let l = fig22().with_measured_sizes(&[
            (0b1000, 999),
            (42, 999),
            (u32::MAX, 999),
            (8, 999), // first out-of-range value
        ]);
        for mask in 0..l.cuboid_count() as u32 {
            assert_eq!(l.size(mask), before.size(mask), "mask {mask:b}");
        }
        // Mixing in-range and out-of-range applies only the in-range ones.
        let l = fig22().with_measured_sizes(&[(0b111, 77), (0b1111, 999)]);
        assert_eq!(l.size(0b111), 77);
    }

    #[test]
    fn measured_sizes_clamp_zero_to_one() {
        // A measured size of 0 (an empty cuboid) is clamped to 1 so the
        // linear cost model never divides by or prefers a free view.
        let l = fig22().with_measured_sizes(&[(0b010, 0)]);
        assert_eq!(l.size(0b010), 1);
    }

    #[test]
    fn measured_sizes_last_write_wins() {
        let l = fig22().with_measured_sizes(&[(0b001, 5), (0b001, 9)]);
        assert_eq!(l.size(0b001), 9);
    }

    #[test]
    fn render_shows_all_levels() {
        let l = fig22();
        let s = l.render(&["product", "location", "day"]);
        assert!(s.contains("{product, location, day}=1000000"));
        assert!(s.contains("{(apex)}=1"));
        assert!(s.contains("level 3"));
        assert!(s.contains("level 0"));
    }

    #[test]
    fn construction_errors() {
        assert!(Lattice::new(&[], 10).is_err());
        assert!(Lattice::new(&[5, 0], 10).is_err());
        assert!(Lattice::new(&[2; 21], 10).is_err());
    }
}
