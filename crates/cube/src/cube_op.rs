//! The CUBE operator (§5.4, Fig 15, \[GB+96\]).
//!
//! `GROUP BY CUBE(d1, …, dn)` produces all `2^n` groupings at once, with
//! the reserved value `ALL` standing for "summarized over this dimension".
//! Two computation strategies are provided:
//!
//! * [`compute_naive`] — the SQL-without-CUBE baseline the paper calls
//!   "awkward and verbose": one independent `GROUP BY` scan per grouping,
//!   `2^n` scans of the base data;
//! * [`compute_shared`] — each cuboid derived from its **smallest** already
//!   computed ancestor in the lattice, the sharing that motivated the
//!   operator.
//!
//! `ROLLUP` (the classification-hierarchy prefix groupings) is
//! [`compute_rollup`]. [`CubeResult::to_rows_with_all`] renders the Fig 15
//! relation with literal `ALL` markers.

use std::collections::HashMap;

use statcube_core::error::{Error, Result};
use statcube_core::measure::{AggState, SummaryFunction};

use crate::groupby::{self, Cuboid};
use crate::input::FactInput;

/// All computed cuboids of one CUBE (or ROLLUP) invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeResult {
    n_dims: usize,
    cuboids: HashMap<u32, Cuboid>,
}

impl CubeResult {
    pub(crate) fn from_parts(n_dims: usize, cuboids: HashMap<u32, Cuboid>) -> Self {
        Self { n_dims, cuboids }
    }

    /// Number of dimensions of the underlying facts.
    pub fn dim_count(&self) -> usize {
        self.n_dims
    }

    /// The computed grouping masks.
    pub fn masks(&self) -> Vec<u32> {
        let mut m: Vec<u32> = self.cuboids.keys().copied().collect();
        m.sort_unstable();
        m
    }

    /// One cuboid by mask.
    pub fn cuboid(&self, mask: u32) -> Option<&Cuboid> {
        self.cuboids.get(&mask)
    }

    /// A cell: `key` holds the kept dimensions' coordinates in dimension
    /// order.
    pub fn get(&self, mask: u32, key: &[u32]) -> Option<&AggState> {
        self.cuboids.get(&mask)?.get(key)
    }

    /// Looks a cell up by full coordinates with `None` = `ALL`.
    pub fn get_all(&self, pattern: &[Option<u32>]) -> Option<&AggState> {
        let mut mask = 0u32;
        let mut key = Vec::new();
        for (d, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                mask |= 1 << d;
                key.push(*c);
            }
        }
        self.get(mask, &key)
    }

    /// Total number of cells across all cuboids (the cube's size).
    pub fn total_cells(&self) -> usize {
        self.cuboids.values().map(Cuboid::len).sum()
    }

    /// Renders all cells as rows of member labels with literal `"ALL"` for
    /// summarized dimensions plus the evaluated value — the Fig 15
    /// relation. `labels[d]` are dimension `d`'s member names; rows are
    /// sorted for deterministic output.
    pub fn to_rows_with_all(
        &self,
        labels: &[Vec<String>],
        f: SummaryFunction,
    ) -> Result<Vec<(Vec<String>, f64)>> {
        if labels.len() != self.n_dims {
            return Err(Error::ArityMismatch { expected: self.n_dims, got: labels.len() });
        }
        let mut out = Vec::with_capacity(self.total_cells());
        for (&mask, cuboid) in &self.cuboids {
            for (key, state) in cuboid {
                let mut row = Vec::with_capacity(self.n_dims);
                let mut ki = 0;
                for (d, dim_labels) in labels.iter().enumerate() {
                    if mask & (1 << d) != 0 {
                        let id = key[ki] as usize;
                        ki += 1;
                        let label = dim_labels.get(id).ok_or_else(|| {
                            Error::InvalidSchema(format!("no label for member {id} of dim {d}"))
                        })?;
                        row.push(label.clone());
                    } else {
                        row.push("ALL".to_owned());
                    }
                }
                if let Some(v) = state.value(f) {
                    out.push((row, v));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        Ok(out)
    }
}

/// The naive baseline: `2^n` independent scans of the base facts.
pub fn compute_naive(input: &FactInput) -> CubeResult {
    let n = input.dim_count();
    let mut cuboids = HashMap::with_capacity(1 << n);
    for mask in 0..(1u32 << n) {
        cuboids.insert(mask, groupby::from_facts(input, mask));
    }
    CubeResult { n_dims: n, cuboids }
}

/// The shared (lattice-derivation) CUBE: computes the finest cuboid from
/// the facts, then derives each coarser cuboid from its smallest computed
/// ancestor.
pub fn compute_shared(input: &FactInput) -> CubeResult {
    let n = input.dim_count();
    let full = (1u32 << n) - 1;
    let mut cuboids: HashMap<u32, Cuboid> = HashMap::with_capacity(1 << n);
    cuboids.insert(full, groupby::from_facts(input, full));
    // Visit masks by decreasing popcount so every one-bit-larger ancestor
    // exists when needed.
    let mut masks: Vec<u32> = (0..full).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        // Candidate parents: mask with one additional bit set.
        let mut best: Option<(u32, usize)> = None;
        for d in 0..n {
            let bit = 1u32 << d;
            if mask & bit != 0 {
                continue;
            }
            let parent = mask | bit;
            if let Some(p) = cuboids.get(&parent) {
                let size = p.len();
                if best.map(|(_, s)| size < s).unwrap_or(true) {
                    best = Some((parent, size));
                }
            }
        }
        let (parent_mask, _) = best.expect("ancestor exists by construction");
        let derived = {
            let parent = &cuboids[&parent_mask];
            groupby::from_parent(parent, parent_mask, mask)
        };
        cuboids.insert(mask, derived);
    }
    CubeResult { n_dims: n, cuboids }
}

/// `ROLLUP(d0, d1, …)`: only the prefix groupings
/// `{}, {d0}, {d0,d1}, …` — the classification-hierarchy special case.
pub fn compute_rollup(input: &FactInput, order: &[usize]) -> Result<CubeResult> {
    let n = input.dim_count();
    if order.len() != n || {
        let mut o = order.to_vec();
        o.sort_unstable();
        o != (0..n).collect::<Vec<_>>()
    } {
        return Err(Error::InvalidSchema("rollup order must permute all dimensions".into()));
    }
    let mut cuboids = HashMap::with_capacity(n + 1);
    let mut mask = 0u32;
    cuboids.insert(0, groupby::from_facts(input, 0));
    for &d in order {
        mask |= 1 << d;
        cuboids.insert(mask, groupby::from_facts(input, mask));
    }
    Ok(CubeResult { n_dims: n, cuboids })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> FactInput {
        // state × sex with a few facts.
        let mut f = FactInput::new(&[2, 2]).unwrap();
        f.push(&[0, 0], 10.0).unwrap(); // AL male
        f.push(&[0, 1], 20.0).unwrap(); // AL female
        f.push(&[1, 0], 40.0).unwrap(); // CA male
        f.push(&[1, 0], 5.0).unwrap(); // CA male again
        f
    }

    #[test]
    fn cube_produces_all_groupings() {
        let c = compute_shared(&input());
        assert_eq!(c.masks(), vec![0, 1, 2, 3]);
        // Grand total (ALL, ALL).
        assert_eq!(c.get_all(&[None, None]).unwrap().sum, 75.0);
        // (CA, ALL).
        assert_eq!(c.get_all(&[Some(1), None]).unwrap().sum, 45.0);
        // (ALL, male).
        assert_eq!(c.get_all(&[None, Some(0)]).unwrap().sum, 55.0);
        // (AL, female).
        assert_eq!(c.get_all(&[Some(0), Some(1)]).unwrap().sum, 20.0);
        assert_eq!(c.get_all(&[Some(1), Some(1)]), None);
    }

    #[test]
    fn naive_and_shared_agree() {
        let mut f = FactInput::new(&[3, 4, 2]).unwrap();
        for i in 0..60u32 {
            f.push(&[i % 3, (i / 3) % 4, (i / 12) % 2], (i as f64).sin() * 10.0).unwrap();
        }
        let naive = compute_naive(&f);
        let shared = compute_shared(&f);
        assert_eq!(naive.masks(), shared.masks());
        for mask in naive.masks() {
            let a = naive.cuboid(mask).unwrap();
            let b = shared.cuboid(mask).unwrap();
            assert_eq!(a.len(), b.len(), "mask {mask:03b}");
            for (key, sa) in a {
                let sb = &b[key];
                // Merge order differs between the engines, so sums agree
                // only up to float associativity.
                assert!((sa.sum - sb.sum).abs() < 1e-9, "mask {mask:03b}");
                assert_eq!(sa.count, sb.count);
                assert_eq!(sa.min, sb.min);
                assert_eq!(sa.max, sb.max);
            }
        }
    }

    #[test]
    fn counts_compose_too() {
        let c = compute_shared(&input());
        let total = c.get_all(&[None, None]).unwrap();
        assert_eq!(total.count, 4);
        let ca_male = c.get_all(&[Some(1), Some(0)]).unwrap();
        assert_eq!(ca_male.count, 2);
    }

    #[test]
    fn fig15_all_rows() {
        let c = compute_shared(&input());
        let labels = vec![
            vec!["Alabama".to_owned(), "California".to_owned()],
            vec!["male".to_owned(), "female".to_owned()],
        ];
        let rows = c.to_rows_with_all(&labels, SummaryFunction::Sum).unwrap();
        // 4 base cells exist? only 3 distinct + 2 per-state + 2 per-sex + 1 grand.
        assert_eq!(rows.len(), 3 + 2 + 2 + 1);
        assert!(rows.contains(&(vec!["ALL".to_owned(), "ALL".to_owned()], 75.0)));
        assert!(rows.contains(&(vec!["California".to_owned(), "ALL".to_owned()], 45.0)));
        assert!(rows.contains(&(vec!["ALL".to_owned(), "male".to_owned()], 55.0)));
        // Mismatched labels error.
        assert!(c.to_rows_with_all(&labels[..1], SummaryFunction::Sum).is_err());
    }

    #[test]
    fn rollup_produces_prefix_groupings_only() {
        let r = compute_rollup(&input(), &[0, 1]).unwrap();
        assert_eq!(r.masks(), vec![0b00, 0b01, 0b11]);
        assert_eq!(r.get_all(&[Some(1), None]).unwrap().sum, 45.0);
        assert_eq!(r.get_all(&[None, Some(0)]), None); // not a prefix grouping
        let r2 = compute_rollup(&input(), &[1, 0]).unwrap();
        assert_eq!(r2.masks(), vec![0b00, 0b10, 0b11]);
        assert!(compute_rollup(&input(), &[0]).is_err());
        assert!(compute_rollup(&input(), &[0, 0]).is_err());
    }

    #[test]
    fn total_cells() {
        let c = compute_shared(&input());
        assert_eq!(c.total_cells(), 8);
    }
}
