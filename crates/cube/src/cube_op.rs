//! The CUBE operator (§5.4, Fig 15, \[GB+96\]).
//!
//! `GROUP BY CUBE(d1, …, dn)` produces all `2^n` groupings at once, with
//! the reserved value `ALL` standing for "summarized over this dimension".
//! Three computation strategies are provided:
//!
//! * [`compute_naive`] — the SQL-without-CUBE baseline the paper calls
//!   "awkward and verbose": one independent `GROUP BY` scan per grouping,
//!   `2^n` scans of the base data;
//! * [`compute_parallel`] — the partition-parallel engine: the base cuboid
//!   is computed by scanning disjoint row partitions on worker threads and
//!   merging the partial cuboids via [`AggState::merge`] (Gray et al.'s
//!   observation that CUBE is embarrassingly parallel over partitions with
//!   a final merge), then every coarser cuboid is derived from its
//!   **smallest** already-computed ancestor by a lattice-aware pipeline
//!   scheduler that fans the independent cuboids of each lattice level out
//!   across the same workers;
//! * [`compute_shared`] — the single-threaded special case of the same
//!   scheduler (`compute_parallel` with one thread), kept as the canonical
//!   sequential reference.
//!
//! `ROLLUP` (the classification-hierarchy prefix groupings) is
//! [`compute_rollup`]. [`CubeResult::to_rows_with_all`] renders the Fig 15
//! relation with literal `ALL` markers. Every engine records a
//! [`CuboidStats`] per cuboid — rows scanned, cells emitted, wall time and
//! derivation source — surfaced through [`CubeResult::stats`] so the bench
//! experiments can report derivation plans and speedup curves.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use statcube_core::error::{Error, Result};
use statcube_core::measure::{AggState, SummaryFunction};
use statcube_core::trace::{self, QueryProfile};

use crate::groupby::{self, Cuboid};
use crate::input::FactInput;

/// Where one cuboid's cells came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivationSource {
    /// Scanned from the base facts, split into this many row partitions.
    BaseFacts {
        /// Number of row partitions scanned in parallel (1 = sequential).
        partitions: usize,
    },
    /// Derived from an already-computed ancestor cuboid.
    Ancestor {
        /// The grouping mask of the ancestor it was derived from.
        parent: u32,
    },
    /// Derived from a healthy ancestor because the preferred source failed
    /// checksum verification — a degraded (but still exact) answer.
    FallbackAncestor {
        /// The healthy ancestor actually used.
        parent: u32,
        /// The preferred source that failed verification.
        failed: u32,
    },
}

/// Record of a query served from a fallback source after one or more
/// preferred materialized cuboids failed checksum verification.
///
/// A degraded answer is still *exact* — it is recomputed from intact data —
/// but costs more I/O; the record makes that visible to callers and to the
/// bench harness (exp23).
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// The cuboid mask that was queried.
    pub requested: u32,
    /// The healthy source that ultimately served the answer.
    pub served_from: u32,
    /// Sources that failed verification, in trial order, with the typed
    /// error each produced.
    pub failed: Vec<(u32, Error)>,
    /// Cells scanned beyond what the first-choice source would have cost.
    pub extra_cells: u64,
}

/// Result of a verified point lookup on a sealed engine cube: the cell's
/// `(sum, count)` if populated, plus any [`Degradation`] incurred serving
/// it from a fallback cuboid.
pub type VerifiedCell = (Option<(f64, u64)>, Option<Degradation>);

/// Per-cuboid computation telemetry, recorded by every engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CuboidStats {
    /// The cuboid's grouping mask.
    pub mask: u32,
    /// Input records consumed: fact rows for a base scan, ancestor cells
    /// for a lattice derivation.
    pub rows_scanned: u64,
    /// Cells the cuboid holds.
    pub cells: u64,
    /// Wall-clock time spent computing this cuboid (on whichever worker
    /// thread ran it).
    pub wall: Duration,
    /// Scan or derivation provenance.
    pub source: DerivationSource,
}

/// All computed cuboids of one CUBE (or ROLLUP) invocation.
///
/// Equality compares dimensions and cells only; [`stats`](Self::stats) is
/// observability metadata (timings differ run to run) and is deliberately
/// excluded.
#[derive(Debug, Clone)]
pub struct CubeResult {
    n_dims: usize,
    cuboids: HashMap<u32, Cuboid>,
    stats: Vec<CuboidStats>,
    degradations: Vec<Degradation>,
    profile: Option<QueryProfile>,
}

impl PartialEq for CubeResult {
    fn eq(&self, other: &Self) -> bool {
        self.n_dims == other.n_dims && self.cuboids == other.cuboids
    }
}

impl CubeResult {
    pub(crate) fn from_parts(
        n_dims: usize,
        cuboids: HashMap<u32, Cuboid>,
        stats: Vec<CuboidStats>,
    ) -> Self {
        Self { n_dims, cuboids, stats, degradations: Vec::new(), profile: None }
    }

    pub(crate) fn push_degradation(&mut self, d: Degradation) {
        self.degradations.push(d);
    }

    pub(crate) fn set_profile(&mut self, profile: QueryProfile) {
        self.profile = Some(profile);
    }

    /// The `EXPLAIN ANALYZE`-style span tree of the computation that
    /// produced this result. Present only when [`trace`] was enabled and
    /// the computation was the calling thread's outermost traced unit of
    /// work (a nested call leaves its spans to the enclosing profile).
    /// Like [`stats`](Self::stats), excluded from equality.
    pub fn profile(&self) -> Option<&QueryProfile> {
        self.profile.as_ref()
    }

    /// Per-cuboid computation telemetry, sorted by mask.
    pub fn stats(&self) -> &[CuboidStats] {
        &self.stats
    }

    /// Degraded-answer records: every cuboid in this result that had to be
    /// recomputed from a fallback ancestor because its preferred source
    /// failed verification. Empty for a fault-free computation. Like
    /// [`stats`](Self::stats), excluded from equality.
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }

    /// The telemetry of one cuboid.
    pub fn stats_for(&self, mask: u32) -> Option<&CuboidStats> {
        self.stats.iter().find(|s| s.mask == mask)
    }

    /// Total wall time across all cuboids (sum of per-cuboid walls; under
    /// the parallel engine this exceeds elapsed time, which is the point).
    pub fn total_work(&self) -> Duration {
        self.stats.iter().map(|s| s.wall).sum()
    }

    /// Number of dimensions of the underlying facts.
    pub fn dim_count(&self) -> usize {
        self.n_dims
    }

    /// The computed grouping masks.
    pub fn masks(&self) -> Vec<u32> {
        let mut m: Vec<u32> = self.cuboids.keys().copied().collect();
        m.sort_unstable();
        m
    }

    /// One cuboid by mask.
    pub fn cuboid(&self, mask: u32) -> Option<&Cuboid> {
        self.cuboids.get(&mask)
    }

    /// A cell: `key` holds the kept dimensions' coordinates in dimension
    /// order.
    pub fn get(&self, mask: u32, key: &[u32]) -> Option<&AggState> {
        self.cuboids.get(&mask)?.get(key)
    }

    /// Looks a cell up by full coordinates with `None` = `ALL`.
    pub fn get_all(&self, pattern: &[Option<u32>]) -> Option<&AggState> {
        let mut mask = 0u32;
        let mut key = Vec::new();
        for (d, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                mask |= 1 << d;
                key.push(*c);
            }
        }
        self.get(mask, &key)
    }

    /// Total number of cells across all cuboids (the cube's size).
    pub fn total_cells(&self) -> usize {
        self.cuboids.values().map(Cuboid::len).sum()
    }

    /// Renders all cells as rows of member labels with literal `"ALL"` for
    /// summarized dimensions plus the evaluated value — the Fig 15
    /// relation. `labels[d]` are dimension `d`'s member names; rows are
    /// sorted for deterministic output.
    pub fn to_rows_with_all(
        &self,
        labels: &[Vec<String>],
        f: SummaryFunction,
    ) -> Result<Vec<(Vec<String>, f64)>> {
        if labels.len() != self.n_dims {
            return Err(Error::ArityMismatch { expected: self.n_dims, got: labels.len() });
        }
        let mut out = Vec::with_capacity(self.total_cells());
        for (&mask, cuboid) in &self.cuboids {
            for (key, state) in cuboid {
                let mut row = Vec::with_capacity(self.n_dims);
                let mut ki = 0;
                for (d, dim_labels) in labels.iter().enumerate() {
                    if mask & (1 << d) != 0 {
                        let id = key[ki] as usize;
                        ki += 1;
                        let label = dim_labels.get(id).ok_or_else(|| {
                            Error::InvalidSchema(format!("no label for member {id} of dim {d}"))
                        })?;
                        row.push(label.clone());
                    } else {
                        row.push("ALL".to_owned());
                    }
                }
                if let Some(v) = state.value(f) {
                    out.push((row, v));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        Ok(out)
    }
}

/// The naive baseline: `2^n` independent scans of the base facts.
pub fn compute_naive(input: &FactInput) -> CubeResult {
    let n = input.dim_count();
    let mut cuboids = HashMap::with_capacity(1 << n);
    let mut stats = Vec::with_capacity(1 << n);
    for mask in 0..(1u32 << n) {
        let t = Instant::now();
        let cuboid = groupby::from_facts(input, mask);
        stats.push(CuboidStats {
            mask,
            rows_scanned: input.len() as u64,
            cells: cuboid.len() as u64,
            wall: t.elapsed(),
            source: DerivationSource::BaseFacts { partitions: 1 },
        });
        cuboids.insert(mask, cuboid);
    }
    CubeResult::from_parts(n, cuboids, stats)
}

/// The shared (lattice-derivation) CUBE: the sequential special case of
/// [`compute_parallel`] — same base scan, same smallest-ancestor
/// derivation plan, one thread.
pub fn compute_shared(input: &FactInput) -> CubeResult {
    compute_parallel(input, 1)
}

/// Picks the smallest already-computed direct parent of `mask` (ties break
/// toward the lowest added dimension), the \[HUR96\] linear-cost heuristic.
/// Level-order scheduling guarantees a direct parent is present; should
/// that invariant ever break, the base cuboid (always computed first) is a
/// correct — if more expensive — derivation source, so this never panics.
fn best_parent(cuboids: &HashMap<u32, Cuboid>, mask: u32, n: usize) -> u32 {
    let mut best: Option<(u32, usize)> = None;
    for d in 0..n {
        let bit = 1u32 << d;
        if mask & bit != 0 {
            continue;
        }
        let parent = mask | bit;
        if let Some(p) = cuboids.get(&parent) {
            let size = p.len();
            if best.map(|(_, s)| size < s).unwrap_or(true) {
                best = Some((parent, size));
            }
        }
    }
    best.map_or((1u32 << n) - 1, |(parent, _)| parent)
}

/// Joins a scoped worker, forwarding any panic payload to the caller's
/// thread instead of aborting behind a generic message.
fn join_worker<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
    h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// The masks below the base cuboid grouped by descending popcount: index 0
/// holds the masks with `n − 1` kept dimensions, the last level is the
/// apex `{}`. Same schedule [`Lattice::coarsening_levels`] produces, but
/// derived straight from the dimension count (no fallible constructor).
///
/// [`Lattice::coarsening_levels`]: crate::lattice::Lattice::coarsening_levels
fn coarsening_levels(n: usize) -> Vec<Vec<u32>> {
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); n];
    for mask in 0..(1u32 << n) - 1 {
        levels[n - 1 - mask.count_ones() as usize].push(mask);
    }
    levels
}

/// Derives cuboid `mask` from its chosen `parent`, timing the work.
fn derive_one(
    cuboids: &HashMap<u32, Cuboid>,
    mask: u32,
    parent: u32,
) -> (u32, u32, Cuboid, Duration) {
    let t = Instant::now();
    let cuboid = groupby::from_parent(&cuboids[&parent], parent, mask);
    (mask, parent, cuboid, t.elapsed())
}

/// The partition-parallel CUBE engine.
///
/// **Phase 1 — partitioned base scan.** The fact rows are split into at
/// most `threads` contiguous ranges ([`FactInput::partition_ranges`]);
/// each range is group-by'd into a *partial* base cuboid on its own scoped
/// thread, and the partials are merged key-wise in partition order via
/// [`AggState::merge`]. Correctness rests on partial aggregation being a
/// commutative monoid: `(sum, count, min, max)` states merge losslessly
/// regardless of how the rows were split (`sum` is exact up to
/// floating-point re-association; `count`/`min`/`max` are bit-exact).
///
/// **Phase 2 — lattice pipeline.** The remaining `2^n − 1` cuboids are
/// scheduled level by level down the materialization lattice
/// ([`Lattice::coarsening_levels`]): all masks with `k` kept dimensions
/// depend only on masks with `k + 1`, so each level is a set of
/// independent derivations fanned out across the worker pool (work-queue
/// over a shared atomic index), each computed from its **smallest**
/// already-computed ancestor exactly as the sequential engine would.
///
/// The result is cell-for-cell identical to [`compute_naive`] (bit-exact
/// whenever measure sums don't lose float precision, e.g. integer-valued
/// measures; within re-association rounding otherwise) for every `threads
/// ≥ 1`. `threads` is clamped to at least 1; pass
/// `std::thread::available_parallelism()` for the hardware limit.
pub fn compute_parallel(input: &FactInput, threads: usize) -> CubeResult {
    let threads = threads.max(1);
    let n = input.dim_count();
    let full = (1u32 << n) - 1;
    let mut cuboids: HashMap<u32, Cuboid> = HashMap::with_capacity(1 << n);
    let mut stats: Vec<CuboidStats> = Vec::with_capacity(1 << n);
    let mut root = trace::span("cube.compute");
    root.record("threads", threads as u64);
    root.record("rows", input.len() as u64);
    let take_profile = root.is_root();

    // Phase 1 — partition-parallel base scan.
    let mut scan_span = trace::span("cube.base_scan");
    let t0 = Instant::now();
    let ranges = input.partition_ranges(threads);
    let partitions = ranges.len().max(1);
    let base = if partitions <= 1 {
        groupby::from_facts(input, full)
    } else {
        let partials: Vec<Cuboid> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| s.spawn(move || groupby::from_facts_range(input, full, r)))
                .collect();
            handles.into_iter().map(join_worker).collect()
        });
        let tm = Instant::now();
        let mut acc = Cuboid::new();
        for partial in partials {
            groupby::merge_into(&mut acc, partial);
        }
        trace::record_complete("cube.merge", tm.elapsed(), &[("partials", partitions as u64)]);
        acc
    };
    scan_span.record("partitions", partitions as u64);
    scan_span.record("rows", input.len() as u64);
    scan_span.record("cells", base.len() as u64);
    drop(scan_span);
    stats.push(CuboidStats {
        mask: full,
        rows_scanned: input.len() as u64,
        cells: base.len() as u64,
        wall: t0.elapsed(),
        source: DerivationSource::BaseFacts { partitions },
    });
    cuboids.insert(full, base);

    // Phase 2 — pipeline the lattice levels; fan each level's independent
    // derivations out across the workers.
    for level in coarsening_levels(n) {
        // Parent choice is sequential and deterministic (sizes of the
        // previous level are final); only the derivations run concurrently.
        let jobs: Vec<(u32, u32)> =
            level.iter().map(|&mask| (mask, best_parent(&cuboids, mask, n))).collect();
        let workers = threads.min(jobs.len());
        let done: Vec<(u32, u32, Cuboid, Duration)> = if workers <= 1 {
            jobs.iter().map(|&(mask, parent)| derive_one(&cuboids, mask, parent)).collect()
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&(mask, parent)) = jobs.get(i) else { break };
                                out.push(derive_one(&cuboids, mask, parent));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(join_worker).collect()
            })
        };
        for (mask, parent, cuboid, wall) in done {
            // The derivation ran (and was timed) on a worker thread whose
            // span buffer is gone; graft the measured work into this
            // thread's profile instead.
            trace::record_complete(
                "cube.derive",
                wall,
                &[("mask", mask as u64), ("parent", parent as u64), ("cells", cuboid.len() as u64)],
            );
            stats.push(CuboidStats {
                mask,
                rows_scanned: cuboids[&parent].len() as u64,
                cells: cuboid.len() as u64,
                wall,
                source: DerivationSource::Ancestor { parent },
            });
            cuboids.insert(mask, cuboid);
        }
    }
    stats.sort_by_key(|s| s.mask);
    let total_cells: u64 = stats.iter().map(|s| s.cells).sum();
    root.record("cells", total_cells);
    trace::counter("cube.computations", 1);
    trace::counter("cube.cells_aggregated", total_cells);
    drop(root);
    let mut result = CubeResult::from_parts(n, cuboids, stats);
    if take_profile {
        result.set_profile(trace::take_profile());
    }
    result
}

/// `ROLLUP(d0, d1, …)`: only the prefix groupings
/// `{}, {d0}, {d0,d1}, …` — the classification-hierarchy special case.
pub fn compute_rollup(input: &FactInput, order: &[usize]) -> Result<CubeResult> {
    let n = input.dim_count();
    if order.len() != n || {
        let mut o = order.to_vec();
        o.sort_unstable();
        o != (0..n).collect::<Vec<_>>()
    } {
        return Err(Error::InvalidSchema("rollup order must permute all dimensions".into()));
    }
    let mut cuboids = HashMap::with_capacity(n + 1);
    let mut stats = Vec::with_capacity(n + 1);
    let mut scan = |mask: u32, cuboids: &mut HashMap<u32, Cuboid>| {
        let t = Instant::now();
        let cuboid = groupby::from_facts(input, mask);
        stats.push(CuboidStats {
            mask,
            rows_scanned: input.len() as u64,
            cells: cuboid.len() as u64,
            wall: t.elapsed(),
            source: DerivationSource::BaseFacts { partitions: 1 },
        });
        cuboids.insert(mask, cuboid);
    };
    let mut mask = 0u32;
    scan(0, &mut cuboids);
    for &d in order {
        mask |= 1 << d;
        scan(mask, &mut cuboids);
    }
    stats.sort_by_key(|s| s.mask);
    Ok(CubeResult::from_parts(n, cuboids, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> FactInput {
        // state × sex with a few facts.
        let mut f = FactInput::new(&[2, 2]).unwrap();
        f.push(&[0, 0], 10.0).unwrap(); // AL male
        f.push(&[0, 1], 20.0).unwrap(); // AL female
        f.push(&[1, 0], 40.0).unwrap(); // CA male
        f.push(&[1, 0], 5.0).unwrap(); // CA male again
        f
    }

    #[test]
    fn cube_produces_all_groupings() {
        let c = compute_shared(&input());
        assert_eq!(c.masks(), vec![0, 1, 2, 3]);
        // Grand total (ALL, ALL).
        assert_eq!(c.get_all(&[None, None]).unwrap().sum, 75.0);
        // (CA, ALL).
        assert_eq!(c.get_all(&[Some(1), None]).unwrap().sum, 45.0);
        // (ALL, male).
        assert_eq!(c.get_all(&[None, Some(0)]).unwrap().sum, 55.0);
        // (AL, female).
        assert_eq!(c.get_all(&[Some(0), Some(1)]).unwrap().sum, 20.0);
        assert_eq!(c.get_all(&[Some(1), Some(1)]), None);
    }

    #[test]
    fn naive_and_shared_agree() {
        let mut f = FactInput::new(&[3, 4, 2]).unwrap();
        for i in 0..60u32 {
            f.push(&[i % 3, (i / 3) % 4, (i / 12) % 2], (i as f64).sin() * 10.0).unwrap();
        }
        let naive = compute_naive(&f);
        let shared = compute_shared(&f);
        assert_eq!(naive.masks(), shared.masks());
        for mask in naive.masks() {
            let a = naive.cuboid(mask).unwrap();
            let b = shared.cuboid(mask).unwrap();
            assert_eq!(a.len(), b.len(), "mask {mask:03b}");
            for (key, sa) in a {
                let sb = &b[key];
                // Merge order differs between the engines, so sums agree
                // only up to float associativity.
                assert!((sa.sum - sb.sum).abs() < 1e-9, "mask {mask:03b}");
                assert_eq!(sa.count, sb.count);
                assert_eq!(sa.min, sb.min);
                assert_eq!(sa.max, sb.max);
            }
        }
    }

    #[test]
    fn counts_compose_too() {
        let c = compute_shared(&input());
        let total = c.get_all(&[None, None]).unwrap();
        assert_eq!(total.count, 4);
        let ca_male = c.get_all(&[Some(1), Some(0)]).unwrap();
        assert_eq!(ca_male.count, 2);
    }

    #[test]
    fn fig15_all_rows() {
        let c = compute_shared(&input());
        let labels = vec![
            vec!["Alabama".to_owned(), "California".to_owned()],
            vec!["male".to_owned(), "female".to_owned()],
        ];
        let rows = c.to_rows_with_all(&labels, SummaryFunction::Sum).unwrap();
        // 4 base cells exist? only 3 distinct + 2 per-state + 2 per-sex + 1 grand.
        assert_eq!(rows.len(), 3 + 2 + 2 + 1);
        assert!(rows.contains(&(vec!["ALL".to_owned(), "ALL".to_owned()], 75.0)));
        assert!(rows.contains(&(vec!["California".to_owned(), "ALL".to_owned()], 45.0)));
        assert!(rows.contains(&(vec!["ALL".to_owned(), "male".to_owned()], 55.0)));
        // Mismatched labels error.
        assert!(c.to_rows_with_all(&labels[..1], SummaryFunction::Sum).is_err());
    }

    #[test]
    fn rollup_produces_prefix_groupings_only() {
        let r = compute_rollup(&input(), &[0, 1]).unwrap();
        assert_eq!(r.masks(), vec![0b00, 0b01, 0b11]);
        assert_eq!(r.get_all(&[Some(1), None]).unwrap().sum, 45.0);
        assert_eq!(r.get_all(&[None, Some(0)]), None); // not a prefix grouping
        let r2 = compute_rollup(&input(), &[1, 0]).unwrap();
        assert_eq!(r2.masks(), vec![0b00, 0b10, 0b11]);
        assert!(compute_rollup(&input(), &[0]).is_err());
        assert!(compute_rollup(&input(), &[0, 0]).is_err());
    }

    #[test]
    fn total_cells() {
        let c = compute_shared(&input());
        assert_eq!(c.total_cells(), 8);
    }

    /// Deterministic pseudo-random input with integer-valued measures, so
    /// sums are exact and cross-engine comparison can use `==`.
    fn int_input(cards: &[usize], rows: usize, seed: u64) -> FactInput {
        let mut f = FactInput::new(cards).unwrap();
        let mut x = seed.max(1);
        for _ in 0..rows {
            let coords: Vec<u32> = cards
                .iter()
                .map(|&c| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % c as u64) as u32
                })
                .collect();
            f.push(&coords, (x % 1000) as f64).unwrap();
        }
        f
    }

    #[test]
    fn parallel_equals_naive_across_thread_counts() {
        let f = int_input(&[4, 3, 5], 500, 42);
        let naive = compute_naive(&f);
        for threads in [1, 2, 3, 4, 7, 16, 1000] {
            let par = compute_parallel(&f, threads);
            // Integer-valued measures: bit-identical cells, `==` via the
            // stats-excluding PartialEq.
            assert_eq!(par, naive, "threads={threads}");
        }
    }

    #[test]
    fn parallel_handles_degenerate_inputs() {
        // Empty input: every cuboid empty, nothing to partition.
        let empty = FactInput::new(&[2, 3]).unwrap();
        for threads in [1, 4] {
            let c = compute_parallel(&empty, threads);
            assert_eq!(c.masks(), vec![0, 1, 2, 3]);
            assert_eq!(c.total_cells(), 0);
            assert_eq!(
                c.stats_for(0b11).unwrap().source,
                DerivationSource::BaseFacts { partitions: 1 }
            );
        }
        // Single row: fewer rows than threads collapses to one partition.
        let mut one = FactInput::new(&[2, 3]).unwrap();
        one.push(&[1, 2], 7.0).unwrap();
        let c = compute_parallel(&one, 8);
        assert_eq!(c, compute_naive(&one));
        assert_eq!(
            c.stats_for(0b11).unwrap().source,
            DerivationSource::BaseFacts { partitions: 1 }
        );
    }

    #[test]
    fn parallel_plan_is_thread_count_invariant() {
        // The derivation plan (who derives from whom) must not depend on
        // the thread count — parent selection happens before the fan-out.
        let f = int_input(&[3, 4, 2, 2], 300, 9);
        let plan = |c: &CubeResult| -> Vec<(u32, DerivationSource)> {
            c.stats().iter().map(|s| (s.mask, s.source)).collect()
        };
        let seq = compute_parallel(&f, 1);
        let par = compute_parallel(&f, 7);
        let seq_plan = plan(&seq);
        let par_plan = plan(&par);
        for ((ma, sa), (mb, sb)) in seq_plan.iter().zip(&par_plan) {
            assert_eq!(ma, mb);
            match (sa, sb) {
                // Base scan partition counts legitimately differ.
                (DerivationSource::BaseFacts { .. }, DerivationSource::BaseFacts { .. }) => {}
                _ => assert_eq!(sa, sb, "mask {ma:b}"),
            }
        }
    }

    #[test]
    fn stats_cover_every_cuboid_with_consistent_counts() {
        let f = int_input(&[4, 3, 2], 200, 5);
        let c = compute_parallel(&f, 4);
        let stat_masks: Vec<u32> = c.stats().iter().map(|s| s.mask).collect();
        assert_eq!(stat_masks, c.masks(), "one stats entry per cuboid, sorted");
        for s in c.stats() {
            assert_eq!(s.cells as usize, c.cuboid(s.mask).unwrap().len(), "mask {:b}", s.mask);
            match s.source {
                DerivationSource::BaseFacts { partitions } => {
                    assert_eq!(s.mask, 0b111);
                    assert_eq!(s.rows_scanned, f.len() as u64);
                    assert!(partitions >= 1);
                }
                DerivationSource::Ancestor { parent } => {
                    // Derived from a strict direct superset with one more bit.
                    assert_eq!(s.mask & !parent, 0);
                    assert_eq!((parent ^ s.mask).count_ones(), 1);
                    assert_eq!(s.rows_scanned as usize, c.cuboid(parent).unwrap().len());
                }
                DerivationSource::FallbackAncestor { .. } => {
                    panic!("fault-free computation must not degrade")
                }
            }
        }
        // Naive scans everything from base facts.
        let naive = compute_naive(&f);
        assert!(naive
            .stats()
            .iter()
            .all(|s| s.source == DerivationSource::BaseFacts { partitions: 1 }));
        assert_eq!(naive.total_work(), naive.stats().iter().map(|s| s.wall).sum());
    }

    #[test]
    fn shared_derives_from_smallest_parent() {
        // Dim 0 has 2 members, dim 1 has 50: the apex should be derived
        // from the 2-member cuboid {d0}, not the 50-member {d1}.
        let f = int_input(&[2, 50], 400, 17);
        let c = compute_shared(&f);
        assert_eq!(c.stats_for(0).unwrap().source, DerivationSource::Ancestor { parent: 0b01 });
    }
}
