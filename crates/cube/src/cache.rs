//! A cost-aware answer/cuboid cache for the serving path.
//!
//! [HRU96]'s greedy view selection decides which cuboids are worth
//! *materializing*; this module decides which derived results are worth
//! *keeping in memory*. The unit of value is the derivation cost the cache
//! saves on a repeat hit — cells scanned in the source view times the
//! lattice distance travelled — which is exactly the linear cost model the
//! rest of the cube layer is built on (and the unit Szépkúti's
//! compressed-cube serving work charges per answer).
//!
//! ## Structure
//!
//! The cache is **sharded**: each [`CacheKey`] hashes to one of N shards,
//! each an independently locked LRU map with `byte_budget / N` bytes of
//! capacity, so concurrent readers on different keys rarely contend.
//!
//! ## Admission and eviction
//!
//! Plain LRU evicts a months-of-scans cuboid to admit a point answer that
//! costs two comparisons to recompute. Admission here is *cost-weighted*
//! (GreedyDual-style): an incoming entry may only evict LRU victims whose
//! recorded cost does not exceed its own. When the LRU victim is more
//! expensive than the candidate, the candidate is rejected — but the
//! victim's cost is halved (aging), so sustained pressure from cheap
//! entries still turns the cache over eventually instead of fossilizing.
//!
//! ## Invalidation
//!
//! Every entry records the *source view* it was derived from and that
//! view's [`PageStore`](statcube_storage::page_store::PageStore) file
//! **epoch** at derivation time. The storage layer bumps a file's epoch on
//! every mutation path — overwrite (delta maintenance), targeted
//! corruption, a persisted injected fault — so a probe whose recorded epoch
//! no longer matches the live one is treated as stale: the entry is evicted
//! and the query recomputes. Scrub failures additionally evict eagerly via
//! [`AnswerCache::invalidate_source`].
//!
//! ## Negative-cache policy
//!
//! Degraded answers (lattice-fallback detours around corrupt views) are
//! **never admitted**: caching one would keep serving the detour after the
//! store heals. The skip is counted in [`CacheStats::degraded_skips`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use statcube_core::measure::AggState;
use statcube_core::plan::CellBlock;
use statcube_core::trace;

use crate::groupby::Cuboid;

/// Sizing and sharding knobs for an [`AnswerCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total byte budget across all shards. A budget of 0 disables
    /// admission entirely (every probe is a miss) — the uncached baseline.
    pub byte_budget: usize,
    /// Number of independently locked shards (clamped to ≥ 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { byte_budget: 16 << 20, shards: 8 }
    }
}

impl CacheConfig {
    /// A cache with the given total byte budget and default sharding.
    pub fn with_budget(byte_budget: usize) -> Self {
        Self { byte_budget, ..Self::default() }
    }

    /// The degenerate no-cache configuration (budget 0): every probe
    /// misses, nothing is admitted. Used as the uncached baseline.
    pub fn disabled() -> Self {
        Self { byte_budget: 0, shards: 1 }
    }
}

/// What a cache entry answers: a full cuboid materialization or one
/// point/slice cell of a cuboid.
///
/// Every variant carries the **privacy-policy fingerprint**
/// ([`statcube_core::plan::PrivacyPolicy::fingerprint`]) the entry was
/// produced under. Fingerprint 0 marks *pre-enforcement* (raw) entries,
/// which are safe to share because the executor's mandatory privacy pass
/// runs after every probe; any non-zero fingerprint partitions the key
/// space so an answer enforced under one policy can never serve a query
/// running under another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// The full cuboid for this mask, under this policy fingerprint.
    Cuboid(u32, u64),
    /// One cell of the cuboid for this mask, keyed by the policy
    /// fingerprint and its coordinates (ascending dimension order, the
    /// cuboid key layout).
    Cell(u32, u64, Box<[u32]>),
    /// The sorted columnar block for this mask, **pre-enforcement only**
    /// (the executor's mandatory privacy pass runs after every probe, so
    /// block entries carry no policy fingerprint). This is the vectorized
    /// executor's probe/admit unit.
    Block(u32),
}

/// A cached value, cheap to clone out of the cache.
#[derive(Debug, Clone)]
pub enum CachedValue {
    /// A full cuboid, shared by reference count.
    Cuboid(Arc<Cuboid>),
    /// One cell's aggregate state; `None` records that the cell is absent
    /// (an empty region of the cube — a valid, cacheable answer).
    Cell(Option<AggState>),
    /// A full sorted columnar block, shared by reference count; the
    /// batched executor consumes it without conversion.
    Block(Arc<CellBlock>),
}

#[derive(Debug)]
struct Entry {
    value: CachedValue,
    bytes: usize,
    /// Derivation cost this entry saves per hit (cells scanned × lattice
    /// distance); halved each time the entry survives an eviction attempt.
    cost: u64,
    /// LRU tick of the last touch.
    tick: u64,
    /// The materialized view the value was derived from.
    source: u32,
    /// `source`'s page-store epoch at derivation time.
    epoch: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    /// tick → key, ordered: the first entry is the LRU victim.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
    used: usize,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) {
        if let Some(e) = self.map.get_mut(key) {
            self.order.remove(&e.tick);
            self.tick += 1;
            e.tick = self.tick;
            self.order.insert(e.tick, key.clone());
        }
    }

    fn remove(&mut self, key: &CacheKey) -> Option<Entry> {
        let e = self.map.remove(key)?;
        self.order.remove(&e.tick);
        self.used -= e.bytes;
        Some(e)
    }
}

/// Point-in-time counters of one [`AnswerCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that returned a live entry.
    pub hits: u64,
    /// Probes that found nothing (or only a stale entry).
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to make room for a costlier candidate.
    pub evictions: u64,
    /// Candidates rejected because the LRU victim cost more.
    pub rejected: u64,
    /// Entries evicted because their source epoch moved (stale) or their
    /// source view failed a scrub.
    pub invalidations: u64,
    /// Degraded answers refused admission (negative-cache policy).
    pub degraded_skips: u64,
    /// Bytes currently resident.
    pub bytes_used: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hit rate over all probes (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded, cost-aware answer cache. All methods take `&self`; the
/// cache is `Sync` and meant to be shared across reader threads.
#[derive(Debug)]
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    invalidations: AtomicU64,
    degraded_skips: AtomicU64,
}

impl AnswerCache {
    /// An empty cache sized by `config`.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: config.byte_budget / n,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            degraded_skips: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> MutexGuard<'_, Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() as usize) % self.shards.len();
        self.shards[i].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Probes for `key`. `live_epoch` maps a source mask to its current
    /// page-store epoch (`None` when the view no longer exists); an entry
    /// whose recorded epoch differs is evicted as stale and the probe
    /// misses. On a hit the entry's recency and the global hit counter are
    /// updated and `(value, source_mask)` is returned.
    pub fn get(
        &self,
        key: &CacheKey,
        live_epoch: impl FnOnce(u32) -> Option<u64>,
    ) -> Option<(CachedValue, u32)> {
        let mut shard = self.shard(key);
        let (stale, found) = match shard.map.get(key) {
            Some(e) => (live_epoch(e.source) != Some(e.epoch), true),
            None => (false, false),
        };
        if stale {
            shard.remove(key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            trace::counter("cube.cache.invalidations", 1);
        }
        if !found || stale {
            self.misses.fetch_add(1, Ordering::Relaxed);
            trace::counter("cube.cache.misses", 1);
            return None;
        }
        shard.touch(key);
        let e = &shard.map[key];
        let out = (e.value.clone(), e.source);
        self.hits.fetch_add(1, Ordering::Relaxed);
        trace::counter("cube.cache.hits", 1);
        Some(out)
    }

    /// Offers an entry for admission; returns whether it was admitted.
    ///
    /// `cost` is the derivation cost a future hit saves; `source`/`epoch`
    /// pin the entry to the state of the view it was derived from. See the
    /// module docs for the admission policy.
    pub fn insert(
        &self,
        key: CacheKey,
        value: CachedValue,
        bytes: usize,
        cost: u64,
        source: u32,
        epoch: u64,
    ) -> bool {
        if bytes > self.shard_budget {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            trace::counter("cube.cache.rejected", 1);
            return false;
        }
        let mut shard = self.shard(&key);
        // Replace any previous entry for the key outright (the caller has a
        // fresher derivation).
        shard.remove(&key);
        while shard.used + bytes > self.shard_budget {
            let Some((&victim_tick, victim_key)) = shard.order.iter().next() else { break };
            let victim_key = victim_key.clone();
            let victim_cost = shard.map.get(&victim_key).map(|e| e.cost).unwrap_or(0);
            if victim_cost <= cost {
                shard.remove(&victim_key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                trace::counter("cube.cache.evictions", 1);
            } else {
                // The resident entry is worth more than the candidate: age
                // it so it cannot squat forever, and reject the candidate.
                if let Some(e) = shard.map.get_mut(&victim_key) {
                    e.cost /= 2;
                }
                let _ = victim_tick;
                self.rejected.fetch_add(1, Ordering::Relaxed);
                trace::counter("cube.cache.rejected", 1);
                return false;
            }
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.order.insert(tick, key.clone());
        shard.used += bytes;
        shard.map.insert(key, Entry { value, bytes, cost, tick, source, epoch });
        self.insertions.fetch_add(1, Ordering::Relaxed);
        trace::counter("cube.cache.insertions", 1);
        true
    }

    /// Counts a degraded answer that was refused admission.
    pub fn note_degraded_skip(&self) {
        self.degraded_skips.fetch_add(1, Ordering::Relaxed);
        trace::counter("cube.cache.degraded_skips", 1);
    }

    /// Evicts every entry derived from view `source` (eager invalidation,
    /// driven by scrub failures and targeted corruption).
    pub fn invalidate_source(&self, source: u32) -> u64 {
        let mut n = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            let stale: Vec<CacheKey> = shard
                .map
                .iter()
                .filter(|(_, e)| e.source == source)
                .map(|(k, _)| k.clone())
                .collect();
            for k in stale {
                shard.remove(&k);
                n += 1;
            }
        }
        self.invalidations.fetch_add(n, Ordering::Relaxed);
        trace::counter("cube.cache.invalidations", n);
        n
    }

    /// Targeted invalidation after an incremental delta fold: drops exactly
    /// the entries the batch could have changed and **re-pins** the
    /// survivors to their source's post-fold epoch (the fold reseals every
    /// file, so every epoch moved even where no value did).
    ///
    /// The keep rules, for a non-empty batch:
    ///
    /// * every `Cuboid` and `Block` entry drops — any batch moves its
    ///   grand total, so full-view entries always intersect;
    /// * policy-enforced (`fingerprint != 0`) cell entries drop — a delta
    ///   to one cell can flip *another* cell's suppression verdict
    ///   (complementary suppression), so only pre-enforcement values are
    ///   provably untouched;
    /// * a raw (`fingerprint == 0`) `Cell` entry survives iff its
    ///   coordinates are outside the batch's projection onto its mask.
    ///
    /// An empty batch (a pure reseal/heal) changes no logical content:
    /// everything *current* survives, re-pinned.
    ///
    /// Surviving the key rules is not enough: a survivor is only re-pinned
    /// when its recorded epoch equals `pre_epoch(source)` — the source's
    /// epoch in the snapshot the fold consumed. A reader pinned to an even
    /// older snapshot can race this pass and admit an entry *after* the
    /// fold that folded its value away; that entry carries an earlier
    /// epoch, and blindly re-pinning it would launder a pre-delta value
    /// into a fresh-looking hit the next time a batch misses its cell.
    /// Such entries drop as stale, as do survivors whose source vanished
    /// from the store (`live_epoch` returns `None`). Returns the number
    /// dropped.
    pub fn invalidate_delta(
        &self,
        touched_base: &[Box<[u32]>],
        pre_epoch: impl Fn(u32) -> Option<u64>,
        live_epoch: impl Fn(u32) -> Option<u64>,
    ) -> u64 {
        // Projection sets are per-mask and shared across shards; computed
        // lazily since most masks never appear as cell keys.
        let mut projected: HashMap<u32, HashSet<Box<[u32]>>> = HashMap::new();
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            let keys: Vec<CacheKey> = shard.map.keys().cloned().collect();
            for key in keys {
                let keep = match &key {
                    CacheKey::Cuboid(..) | CacheKey::Block(..) => touched_base.is_empty(),
                    CacheKey::Cell(_, fp, _) if *fp != 0 => touched_base.is_empty(),
                    CacheKey::Cell(mask, _, coords) => {
                        let touched = projected.entry(*mask).or_insert_with(|| {
                            touched_base
                                .iter()
                                .map(|k| crate::groupby::project_key(k, *mask))
                                .collect()
                        });
                        !touched.contains(coords)
                    }
                };
                if !keep {
                    shard.remove(&key);
                    dropped += 1;
                    continue;
                }
                let recorded = shard.map.get(&key).map(|e| (e.source, e.epoch));
                let fresh = recorded.and_then(|(source, epoch)| {
                    // Only an entry derived from the exact pre-fold snapshot
                    // may be re-pinned; any other epoch is a racing admit
                    // from an older snapshot and its value may predate an
                    // already-applied batch.
                    if pre_epoch(source) != Some(epoch) {
                        return None;
                    }
                    live_epoch(source)
                });
                match fresh {
                    Some(epoch) => {
                        if let Some(e) = shard.map.get_mut(&key) {
                            e.epoch = epoch;
                        }
                    }
                    None => {
                        shard.remove(&key);
                        dropped += 1;
                    }
                }
            }
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        trace::counter("cube.cache.invalidations", dropped);
        dropped
    }

    /// Drops every entry (bulk invalidation after delta maintenance).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            let n = shard.map.len() as u64;
            *shard = Shard::default();
            self.invalidations.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Snapshot of the counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        let (mut bytes_used, mut entries) = (0u64, 0u64);
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            bytes_used += shard.used as u64;
            entries += shard.map.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            degraded_skips: self.degraded_skips.load(Ordering::Relaxed),
            bytes_used,
            entries,
        }
    }
}

/// Approximate resident size of a cuboid (matches the sealed serialization:
/// 16-byte header plus `key_len*4 + 32` per row), used for budget charging.
pub fn cuboid_bytes(cuboid: &Cuboid) -> usize {
    let key_len = cuboid.keys().next().map_or(0, |k| k.len());
    16 + cuboid.len() * (key_len * 4 + 32)
}

/// Resident size charged for one cached cell (state + key + bookkeeping).
pub const CELL_BYTES: usize = 64;

/// Resident size charged for a cached columnar block (its own heap
/// accounting — same per-row footprint as the sealed serialization).
pub fn block_bytes(block: &CellBlock) -> usize {
    block.heap_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cuboid(rows: u32) -> Arc<Cuboid> {
        let mut c = Cuboid::new();
        for i in 0..rows {
            c.insert(vec![i].into_boxed_slice(), AggState::EMPTY);
        }
        Arc::new(c)
    }

    fn insert_cuboid(cache: &AnswerCache, mask: u32, rows: u32, cost: u64) -> bool {
        let c = cuboid(rows);
        let bytes = cuboid_bytes(&c);
        cache.insert(CacheKey::Cuboid(mask, 0), CachedValue::Cuboid(c), bytes, cost, mask, 0)
    }

    #[test]
    fn hit_miss_and_lru_order() {
        let cache = AnswerCache::new(CacheConfig { byte_budget: 10_000, shards: 1 });
        assert!(cache.get(&CacheKey::Cuboid(1, 0), |_| Some(0)).is_none());
        assert!(insert_cuboid(&cache, 1, 10, 100));
        assert!(insert_cuboid(&cache, 2, 10, 100));
        let (v, src) = cache.get(&CacheKey::Cuboid(1, 0), |_| Some(0)).expect("hit");
        assert_eq!(src, 1);
        assert!(matches!(v, CachedValue::Cuboid(c) if c.len() == 10));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 2));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn byte_budget_caps_residency_via_lru_eviction() {
        // Each 10-row cuboid is 16 + 10*36 = 376 bytes; budget fits two.
        let cache = AnswerCache::new(CacheConfig { byte_budget: 800, shards: 1 });
        assert!(insert_cuboid(&cache, 1, 10, 100));
        assert!(insert_cuboid(&cache, 2, 10, 100));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&CacheKey::Cuboid(1, 0), |_| Some(0)).is_some());
        assert!(insert_cuboid(&cache, 3, 10, 100));
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert!(s.bytes_used <= 800);
        assert!(cache.get(&CacheKey::Cuboid(2, 0), |_| Some(0)).is_none(), "LRU victim gone");
        assert!(cache.get(&CacheKey::Cuboid(1, 0), |_| Some(0)).is_some(), "recent entry kept");
    }

    #[test]
    fn expensive_entries_resist_cheap_pressure_but_age_out() {
        let cache = AnswerCache::new(CacheConfig { byte_budget: 400, shards: 1 });
        assert!(insert_cuboid(&cache, 1, 10, 1 << 20));
        // A cheap candidate cannot displace the expensive resident...
        assert!(!insert_cuboid(&cache, 2, 10, 8));
        assert_eq!(cache.stats().rejected, 1);
        assert!(cache.get(&CacheKey::Cuboid(1, 0), |_| Some(0)).is_some());
        // ...but each rejection halves the resident's cost, so sustained
        // pressure eventually turns the cache over.
        for _ in 0..25 {
            if insert_cuboid(&cache, 2, 10, 8) {
                break;
            }
        }
        assert!(cache.get(&CacheKey::Cuboid(2, 0), |_| Some(0)).is_some(), "aging admitted it");
    }

    #[test]
    fn oversized_and_zero_budget_reject() {
        let cache = AnswerCache::new(CacheConfig { byte_budget: 100, shards: 1 });
        assert!(!insert_cuboid(&cache, 1, 100, 1000), "bigger than the whole budget");
        let off = AnswerCache::new(CacheConfig::disabled());
        assert!(!insert_cuboid(&off, 1, 1, 1000));
        assert_eq!(off.stats().entries, 0);
    }

    #[test]
    fn epoch_mismatch_invalidates_on_probe() {
        let cache = AnswerCache::new(CacheConfig { byte_budget: 10_000, shards: 2 });
        assert!(insert_cuboid(&cache, 1, 10, 100));
        // Same epoch: hit. Moved epoch: stale, evicted, miss.
        assert!(cache.get(&CacheKey::Cuboid(1, 0), |_| Some(0)).is_some());
        assert!(cache.get(&CacheKey::Cuboid(1, 0), |_| Some(7)).is_none());
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0);
        // And the entry is really gone even at the original epoch.
        assert!(cache.get(&CacheKey::Cuboid(1, 0), |_| Some(0)).is_none());
    }

    #[test]
    fn invalidate_source_and_clear() {
        let cache = AnswerCache::new(CacheConfig { byte_budget: 100_000, shards: 4 });
        for mask in 0..8u32 {
            let c = cuboid(4);
            let bytes = cuboid_bytes(&c);
            // Masks 0..4 derived from view 7, the rest from view 3.
            let source = if mask < 4 { 7 } else { 3 };
            assert!(cache.insert(
                CacheKey::Cuboid(mask, 0),
                CachedValue::Cuboid(c),
                bytes,
                10,
                source,
                0
            ));
        }
        assert_eq!(cache.invalidate_source(7), 4);
        let s = cache.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.invalidations, 4);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().bytes_used, 0);
    }

    #[test]
    fn cell_entries_round_trip() {
        let cache = AnswerCache::new(CacheConfig::default());
        let key = CacheKey::Cell(0b101, 0, vec![2, 0].into_boxed_slice());
        let state = AggState { sum: 7.0, count: 2, min: 3.0, max: 4.0 };
        assert!(cache.insert(key.clone(), CachedValue::Cell(Some(state)), CELL_BYTES, 5, 7, 0));
        // Absent cells cache too (a valid answer, distinct from a miss).
        let none_key = CacheKey::Cell(0b101, 0, vec![9, 9].into_boxed_slice());
        assert!(cache.insert(none_key.clone(), CachedValue::Cell(None), CELL_BYTES, 5, 7, 0));
        match cache.get(&key, |_| Some(0)) {
            Some((CachedValue::Cell(Some(s)), 7)) => {
                assert_eq!(s.sum.to_bits(), state.sum.to_bits())
            }
            other => panic!("expected cell hit, got {other:?}"),
        }
        assert!(matches!(cache.get(&none_key, |_| Some(0)), Some((CachedValue::Cell(None), _))));
    }

    #[test]
    fn block_entries_round_trip_and_drop_on_any_delta() {
        let cache = AnswerCache::new(CacheConfig::default());
        let mut b = CellBlock::new(2, 1);
        b.push_row(&[1, 2], &[AggState { sum: 3.0, count: 1, min: 3.0, max: 3.0 }], false);
        let block = Arc::new(b);
        let key = CacheKey::Block(0b11);
        let bytes = block_bytes(&block);
        assert!(cache.insert(
            key.clone(),
            CachedValue::Block(Arc::clone(&block)),
            bytes,
            5,
            0b11,
            0
        ));
        match cache.get(&key, |_| Some(0)) {
            Some((CachedValue::Block(b), _)) => assert_eq!(b.len(), 1),
            other => panic!("expected block hit, got {other:?}"),
        }
        // Like a full cuboid, a block always intersects a non-empty batch.
        let touched = vec![vec![9u32, 9].into_boxed_slice()];
        assert_eq!(cache.invalidate_delta(&touched, |_| Some(0), |_| Some(1)), 1);
        assert!(cache.get(&key, |_| Some(1)).is_none());
    }

    #[test]
    fn policy_fingerprints_partition_the_key_space() {
        let cache = AnswerCache::new(CacheConfig { byte_budget: 100_000, shards: 1 });
        let c = cuboid(4);
        let bytes = cuboid_bytes(&c);
        let strict_fp = 0xDEAD_BEEFu64;
        assert!(cache.insert(
            CacheKey::Cuboid(5, 0),
            CachedValue::Cuboid(Arc::clone(&c)),
            bytes,
            10,
            7,
            0
        ));
        // The permissive entry must never answer a probe made under a
        // suppressing policy (the historical privacy/cache bypass).
        assert!(cache.get(&CacheKey::Cuboid(5, strict_fp), |_| Some(0)).is_none());
        assert!(cache.get(&CacheKey::Cuboid(5, 0), |_| Some(0)).is_some());
        // Each policy caches independently under its own fingerprint...
        assert!(cache.insert(
            CacheKey::Cuboid(5, strict_fp),
            CachedValue::Cuboid(Arc::clone(&c)),
            bytes,
            10,
            7,
            0
        ));
        assert!(cache.get(&CacheKey::Cuboid(5, strict_fp), |_| Some(0)).is_some());
        assert_eq!(cache.stats().entries, 2);
        // ...and source invalidation still sweeps every policy's entries.
        assert_eq!(cache.invalidate_source(7), 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn invalidate_delta_drops_entries_admitted_from_older_snapshots() {
        let cache = AnswerCache::new(CacheConfig { byte_budget: 100_000, shards: 1 });
        // Two raw cell entries on source 7: one derived from the pre-fold
        // snapshot (epoch 4), one raced in by a reader still pinned to an
        // older snapshot (epoch 2) — its value may predate a batch that has
        // already folded its cell away.
        let current = CacheKey::Cell(0b11, 0, vec![0, 0].into_boxed_slice());
        let stale = CacheKey::Cell(0b11, 0, vec![1, 1].into_boxed_slice());
        assert!(cache.insert(current.clone(), CachedValue::Cell(None), CELL_BYTES, 5, 7, 4));
        assert!(cache.insert(stale.clone(), CachedValue::Cell(None), CELL_BYTES, 5, 7, 2));
        // A batch touching neither cell: the key rules keep both, but only
        // the pre-fold-epoch entry may be re-pinned to the post-fold epoch.
        let touched = vec![vec![9u32, 9].into_boxed_slice()];
        assert_eq!(cache.invalidate_delta(&touched, |_| Some(4), |_| Some(5)), 1);
        assert!(cache.get(&stale, |_| Some(5)).is_none(), "older-snapshot admit must drop");
        assert!(cache.get(&current, |_| Some(5)).is_some(), "pre-fold entry is re-pinned");
        // An empty batch (pure heal) applies the same epoch discipline.
        assert!(cache.insert(stale.clone(), CachedValue::Cell(None), CELL_BYTES, 5, 7, 2));
        assert_eq!(cache.invalidate_delta(&[], |_| Some(5), |_| Some(6)), 1);
        assert!(cache.get(&stale, |_| Some(6)).is_none());
        assert!(cache.get(&current, |_| Some(6)).is_some());
    }

    #[test]
    fn shards_count_bytes_independently() {
        let cache = AnswerCache::new(CacheConfig { byte_budget: 8000, shards: 8 });
        let mut admitted = 0;
        for mask in 0..16u32 {
            if insert_cuboid(&cache, mask, 10, 100) {
                admitted += 1;
            }
        }
        let s = cache.stats();
        assert_eq!(s.entries as usize + s.evictions as usize + s.rejected as usize, 16);
        assert!(admitted > 0);
        assert!(s.bytes_used <= 8000);
    }
}
