//! Answering group-by queries from a set of materialized views (§6.3).
//!
//! Once [`crate::materialize::greedy_select`] has chosen which
//! summarizations to pre-compute, a query for any cuboid is answered by
//! aggregating down from the **smallest materialized ancestor** — the
//! \[HUR96\] linear cost model, realized. [`ViewStore::answer`] reports the
//! cells scanned so experiments can verify the model.

use std::collections::HashMap;

use statcube_core::error::{Error, Result};

use crate::cube_op::CubeResult;
use crate::groupby::{self, Cuboid};
use crate::input::FactInput;
use crate::lattice::Lattice;

/// A set of materialized cuboids plus the lattice metadata to route
/// queries.
#[derive(Debug)]
pub struct ViewStore {
    lattice: Lattice,
    views: HashMap<u32, Cuboid>,
}

/// The answer to a cuboid query, with its measured cost.
#[derive(Debug)]
pub struct Answer {
    /// The cells of the requested cuboid.
    pub cuboid: Cuboid,
    /// The materialized view the answer was derived from.
    pub source: u32,
    /// Cells scanned in the source view (the \[HUR96\] cost).
    pub cells_scanned: u64,
}

impl ViewStore {
    /// Materializes the selected masks (plus, always, the base cuboid) by
    /// computing them from the facts.
    pub fn build(input: &FactInput, selected: &[u32]) -> Result<Self> {
        let lattice = Lattice::new(input.cards(), input.len() as u64)?;
        let top = lattice.top();
        let mut views = HashMap::new();
        views.insert(top, groupby::from_facts(input, top));
        for &mask in selected {
            if mask > top {
                return Err(Error::InvalidSchema(format!("mask {mask:b} out of range")));
            }
            views.entry(mask).or_insert_with(|| groupby::from_facts(input, mask));
        }
        // Refresh the lattice with measured sizes for accurate routing.
        let measured: Vec<(u32, u64)> =
            views.iter().map(|(&m, c)| (m, c.len() as u64)).collect();
        let lattice = lattice.with_measured_sizes(&measured);
        Ok(Self { lattice, views })
    }

    /// Materializes views out of an already computed [`CubeResult`].
    pub fn from_cube(cube: &CubeResult, cards: &[usize], selected: &[u32]) -> Result<Self> {
        let lattice = Lattice::new(cards, u64::MAX)?;
        let top = lattice.top();
        let mut views = HashMap::new();
        for &mask in selected.iter().chain(std::iter::once(&top)) {
            let cuboid = cube
                .cuboid(mask)
                .ok_or_else(|| Error::InvalidSchema(format!("cube lacks mask {mask:b}")))?;
            views.insert(mask, cuboid.clone());
        }
        let measured: Vec<(u32, u64)> =
            views.iter().map(|(&m, c)| (m, c.len() as u64)).collect();
        Ok(Self { lattice: lattice.with_measured_sizes(&measured), views })
    }

    /// The materialized masks.
    pub fn materialized(&self) -> Vec<u32> {
        let mut m: Vec<u32> = self.views.keys().copied().collect();
        m.sort_unstable();
        m
    }

    /// Total cells stored.
    pub fn stored_cells(&self) -> u64 {
        self.views.values().map(|c| c.len() as u64).sum()
    }

    /// Incrementally maintains the materialized views against an append
    /// batch (§6.5: "it is very common to append to the data cube over
    /// time … daily appends"): each view absorbs the delta's aggregation at
    /// its own mask, so no view is recomputed from scratch. The delta's
    /// dimension cardinalities must match the store's.
    pub fn apply_delta(&mut self, delta: &FactInput) -> Result<()> {
        if delta.dim_count() != self.lattice.dim_count() {
            return Err(Error::ArityMismatch {
                expected: self.lattice.dim_count(),
                got: delta.dim_count(),
            });
        }
        for (&mask, cuboid) in self.views.iter_mut() {
            let partial = groupby::from_facts(delta, mask);
            for (key, state) in partial {
                cuboid.entry(key).or_insert(statcube_core::measure::AggState::EMPTY).merge(&state);
            }
        }
        // Sizes may have grown; refresh the routing lattice.
        let measured: Vec<(u32, u64)> =
            self.views.iter().map(|(&m, c)| (m, c.len() as u64)).collect();
        self.lattice = Lattice::new(
            &self.lattice.cards(),
            self.lattice.base_rows().saturating_add(delta.len() as u64),
        )?
        .with_measured_sizes(&measured);
        Ok(())
    }

    /// Answers the query for cuboid `mask` from the smallest materialized
    /// ancestor.
    pub fn answer(&self, mask: u32) -> Result<Answer> {
        if mask > self.lattice.top() {
            return Err(Error::InvalidSchema(format!("mask {mask:b} out of range")));
        }
        let source = self
            .views
            .iter()
            .filter(|(&v, _)| self.lattice.derivable_from(mask, v))
            .min_by_key(|(_, c)| c.len())
            .map(|(&v, _)| v)
            .ok_or_else(|| Error::InvalidSchema("no ancestor materialized".into()))?;
        let src = &self.views[&source];
        let cells_scanned = src.len() as u64;
        let cuboid = if source == mask {
            src.clone()
        } else {
            groupby::from_parent(src, source, mask)
        };
        Ok(Answer { cuboid, source, cells_scanned })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_op;
    use crate::materialize;

    fn input() -> FactInput {
        let mut f = FactInput::new(&[8, 4, 2]).unwrap();
        let mut x = 99u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            f.push(
                &[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32],
                (x % 10) as f64,
            )
            .unwrap();
        }
        f
    }

    #[test]
    fn answers_match_direct_computation() {
        let f = input();
        let store = ViewStore::build(&f, &[0b011, 0b100]).unwrap();
        for mask in 0..8u32 {
            let ans = store.answer(mask).unwrap();
            let direct = groupby::from_facts(&f, mask);
            assert_eq!(ans.cuboid, direct, "mask {mask:03b}");
        }
    }

    #[test]
    fn routing_prefers_smallest_ancestor() {
        let f = input();
        let store = ViewStore::build(&f, &[0b011]).unwrap();
        // Query {dim0}: derivable from 0b011 (small) or base (large).
        let ans = store.answer(0b001).unwrap();
        assert_eq!(ans.source, 0b011);
        // Query {dim2}: only the base covers it.
        let ans2 = store.answer(0b100).unwrap();
        assert_eq!(ans2.source, 0b111);
        assert!(ans.cells_scanned < ans2.cells_scanned);
        // An exactly materialized view answers itself.
        let ans3 = store.answer(0b011).unwrap();
        assert_eq!(ans3.source, 0b011);
    }

    #[test]
    fn greedy_views_reduce_measured_cost() {
        let f = input();
        let lattice = Lattice::new(f.cards(), f.len() as u64).unwrap();
        let greedy = materialize::greedy_select(&lattice, 3).unwrap();
        let with_views = ViewStore::build(&f, &greedy.selected).unwrap();
        let base_only = ViewStore::build(&f, &[]).unwrap();
        let cost = |s: &ViewStore| -> u64 {
            (0..8u32).map(|m| s.answer(m).unwrap().cells_scanned).sum()
        };
        assert!(cost(&with_views) < cost(&base_only));
    }

    #[test]
    fn from_cube_reuses_computed_cuboids() {
        let f = input();
        let cube = cube_op::compute_shared(&f);
        let store = ViewStore::from_cube(&cube, f.cards(), &[0b101]).unwrap();
        assert_eq!(store.materialized(), vec![0b101, 0b111]);
        let ans = store.answer(0b001).unwrap();
        assert_eq!(ans.source, 0b101);
        assert_eq!(&ans.cuboid, cube.cuboid(0b001).unwrap());
        assert!(store.stored_cells() > 0);
    }

    #[test]
    fn apply_delta_equals_rebuild() {
        let f = input();
        let mut store = ViewStore::build(&f, &[0b011, 0b100]).unwrap();
        // A nightly append batch.
        let mut delta = FactInput::new(f.cards()).unwrap();
        let mut x = 5u64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            delta
                .push(
                    &[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32],
                    (x % 10) as f64,
                )
                .unwrap();
        }
        store.apply_delta(&delta).unwrap();
        // Rebuild from the concatenated facts and compare every cuboid.
        let mut combined = FactInput::new(f.cards()).unwrap();
        for row in 0..f.len() {
            combined.push(&f.coords(row), f.measure()[row]).unwrap();
        }
        for row in 0..delta.len() {
            combined.push(&delta.coords(row), delta.measure()[row]).unwrap();
        }
        let rebuilt = ViewStore::build(&combined, &[0b011, 0b100]).unwrap();
        for mask in 0..8u32 {
            let a = store.answer(mask).unwrap().cuboid;
            let b = rebuilt.answer(mask).unwrap().cuboid;
            assert_eq!(a.len(), b.len(), "mask {mask:03b}");
            for (k, s) in &b {
                let got = &a[k];
                assert!((got.sum - s.sum).abs() < 1e-9);
                assert_eq!(got.count, s.count);
            }
        }
        // Mismatched delta arity is rejected.
        let bad = FactInput::new(&[2, 2]).unwrap();
        assert!(store.apply_delta(&bad).is_err());
    }

    #[test]
    fn errors() {
        let f = input();
        let store = ViewStore::build(&f, &[]).unwrap();
        assert!(store.answer(0b1000).is_err());
        assert!(ViewStore::build(&f, &[0b11111]).is_err());
        let cube = cube_op::compute_rollup(&f, &[0, 1, 2]).unwrap();
        // A rollup result lacks most masks.
        assert!(ViewStore::from_cube(&cube, f.cards(), &[0b010]).is_err());
    }
}
