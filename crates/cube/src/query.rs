//! Answering group-by queries from a set of materialized views (§6.3),
//! with verification and degraded fallback.
//!
//! Once [`crate::materialize::greedy_select`] has chosen which
//! summarizations to pre-compute, a query for any cuboid is answered by
//! aggregating down from the **smallest materialized ancestor** — the
//! \[HUR96\] linear cost model, realized. [`ViewStore::answer`] reports the
//! cells scanned so experiments can verify the model.
//!
//! Every materialized view is sealed into a checksummed
//! [`PageStore`] file and **read back through it** on every query, so a
//! corrupted view (bit rot, torn write — injectable via
//! [`ViewStore::arm_faults`]) fails verification instead of yielding a
//! silently wrong aggregate. On failure the query is re-routed through the
//! lattice to the next-smallest *healthy* materialized ancestor — ultimately
//! the base cuboid — and the detour is recorded as a
//! [`Degradation`] in the [`Answer`]. Only when every
//! covering source (base included) is corrupt does the query return
//! [`Error::NoHealthySource`].

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use statcube_core::error::{Error, Result};
use statcube_core::measure::AggState;
use statcube_core::plan::{
    self, bit_positions, CatalogEntry, CellBlock, Plan, PlanSource, Planner, PlannerConfig,
    PrivacyPolicy, SourceBlock,
};
use statcube_core::trace::{self, QueryProfile};
use statcube_storage::chunks::group_merge_states_into;
use statcube_storage::extendible::ExtendibleArray;
use statcube_storage::io_stats::DEFAULT_PAGE_SIZE;
use statcube_storage::page_store::{FaultPlan, FaultStats, PageStore};
use statcube_storage::verify::ScrubReport;

use crate::cube_op::{CubeResult, CuboidStats, Degradation, DerivationSource};
use crate::groupby::{self, Cuboid};
use crate::input::FactInput;
use crate::lattice::Lattice;

/// A set of materialized cuboids plus the lattice metadata to route
/// queries. Views live in a checksummed [`PageStore`]; queries deserialize
/// from verified pages only.
#[derive(Debug)]
pub struct ViewStore {
    lattice: Lattice,
    /// In-memory copies, used for sizing/routing and delta maintenance.
    views: HashMap<u32, Cuboid>,
    /// The checksummed paged backing every query actually reads.
    pages: PageStore,
    /// mask → file id in `pages`.
    files: HashMap<u32, usize>,
    /// The dense \[RZ86\] base organization, maintained by the append path
    /// when the cross product fits [`DENSE_BASE_CELL_LIMIT`]: a delta
    /// introducing unseen dimension values grows it by increment segments
    /// (O(increment) appends, no relocation) instead of restructuring.
    base_dense: Option<ExtendibleArray>,
    /// Decoded columnar image of each sealed view, keyed by mask and pinned
    /// to the file epoch it was parsed at. Serves repeat loads without
    /// re-reading (or re-parsing) the pages — but **never** while a fault
    /// injector is armed, so every injected fault still exercises the
    /// checksummed I/O path, and never across an epoch bump (delta reseal,
    /// targeted corruption), which forces a verified re-read.
    decoded: RwLock<HashMap<u32, (u64, Arc<CellBlock>)>>,
    /// Masks whose sealed file was already served once by the chunked
    /// streaming scan at a given epoch (see
    /// [`PlanSource::load_derived`]): the first cold, non-identity read of
    /// a view streams its target straight off the sealed pages through the
    /// `storage::chunks` state kernels (no dense source block is ever
    /// built); the *second* cold read falls back to
    /// [`PlanSource::load`], which decodes once and warms [`Self::decoded`]
    /// — so steady-state repeat derivations keep their in-memory path.
    streamed: RwLock<HashMap<u32, u64>>,
}

/// What one incremental maintenance fold did (see
/// [`ViewStore::apply_delta`]). The serving layer uses `touched_base` to
/// invalidate only the cache entries the batch could have changed.
#[derive(Debug, Clone, Default)]
pub struct DeltaReport {
    /// Fact rows in the batch.
    pub rows: u64,
    /// Distinct base-cuboid keys the batch touched, sorted. Projecting
    /// these onto any mask gives exactly the cells of that cuboid the
    /// batch changed.
    pub touched_base: Vec<Box<[u32]>>,
    /// Cells merged across all materialized views (the incremental work,
    /// versus a rebuild's full recomputation).
    pub cells_touched: u64,
    /// Extendible-array growth for previously-unseen dimension values:
    /// `(dimension, indices added)` per grown dimension.
    pub extended_dims: Vec<(usize, usize)>,
}

/// Ceiling on dense base cells: past this the extendible-array base
/// organization is not maintained and the sparse sealed views remain the
/// only base representation (8 MiB of f64 cells at the limit).
const DENSE_BASE_CELL_LIMIT: usize = 1 << 20;

/// The cross-product cell count, if it is computable and within
/// [`DENSE_BASE_CELL_LIMIT`].
fn dense_cell_count(cards: &[usize]) -> Option<usize> {
    cards
        .iter()
        .try_fold(1usize, |acc, &c| acc.checked_mul(c))
        .filter(|&n| n <= DENSE_BASE_CELL_LIMIT)
}

/// Builds the dense extendible-array image of the base cuboid (cell = sum),
/// or `None` when the cross product is too large.
fn dense_base_of(base: &Cuboid, cards: &[usize]) -> Option<ExtendibleArray> {
    dense_cell_count(cards)?;
    let mut arr = ExtendibleArray::new(cards, DEFAULT_PAGE_SIZE).ok()?;
    let mut coords = vec![0usize; cards.len()];
    for (key, state) in base {
        for (c, &k) in coords.iter_mut().zip(key.iter()) {
            *c = k as usize;
        }
        if arr.set(&coords, state.sum).is_err() {
            return None;
        }
    }
    Some(arr)
}

/// The answer to a cuboid query, with its measured cost and (when the
/// preferred source failed verification) the degradation record.
#[derive(Debug)]
pub struct Answer {
    /// The cells of the requested cuboid.
    pub cuboid: Cuboid,
    /// The materialized view the answer was derived from.
    pub source: u32,
    /// Cells scanned in the source view (the \[HUR96\] cost).
    pub cells_scanned: u64,
    /// Present when one or more preferred sources failed verification and
    /// the answer was recomputed from a healthy ancestor.
    pub degraded: Option<Degradation>,
    /// The `EXPLAIN ANALYZE`-style span tree of this answer (storage reads,
    /// retries, fallback provenance). Present only when
    /// [`trace`] was enabled and this query was the calling thread's
    /// outermost traced unit of work.
    pub profile: Option<QueryProfile>,
}

/// Deterministic serialization of a cuboid: row count, key width, then
/// key-sorted `(key, sum, count, min, max)` tuples. Shared with the
/// durability layer, whose snapshot records embed one serialized cuboid per
/// materialized view.
///
/// `key_width` is the view's own key width (the popcount of its mask) and is
/// what an empty cuboid seals with — a sealed empty view must still declare
/// the width its mask implies, or a cross-store merge of its block against a
/// populated sibling would mix widths.
pub(crate) fn serialize_cuboid(cuboid: &Cuboid, key_width: usize) -> Vec<u8> {
    let key_len = cuboid.keys().next().map_or(key_width, |k| k.len());
    let mut rows: Vec<_> = cuboid.iter().collect();
    rows.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut out = Vec::with_capacity(16 + rows.len() * (key_len * 4 + 32));
    out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    out.extend_from_slice(&(key_len as u64).to_le_bytes());
    for (key, state) in rows {
        for &k in key.iter() {
            out.extend_from_slice(&k.to_le_bytes());
        }
        out.extend_from_slice(&state.sum.to_bits().to_le_bytes());
        out.extend_from_slice(&state.count.to_le_bytes());
        out.extend_from_slice(&state.min.to_bits().to_le_bytes());
        out.extend_from_slice(&state.max.to_bits().to_le_bytes());
    }
    out
}

/// Inverse of [`serialize_cuboid`]. Checksums catch corruption before this
/// runs, so a malformed buffer indicates a logic error — still reported as
/// a typed error, never a panic.
pub(crate) fn deserialize_cuboid(bytes: &[u8], object: &str) -> Result<Cuboid> {
    let malformed = || Error::InvalidSchema(format!("malformed cuboid file `{object}`"));
    let take8 = |b: &[u8], at: usize| -> Result<[u8; 8]> {
        b.get(at..at + 8).and_then(|s| s.try_into().ok()).ok_or_else(malformed)
    };
    let take4 = |b: &[u8], at: usize| -> Result<[u8; 4]> {
        b.get(at..at + 4).and_then(|s| s.try_into().ok()).ok_or_else(malformed)
    };
    let n_rows = u64::from_le_bytes(take8(bytes, 0)?) as usize;
    let key_len = u64::from_le_bytes(take8(bytes, 8)?) as usize;
    // Checked arithmetic throughout: the durability layer feeds this decoder
    // with journal payloads, so declared counts are untrusted and must not
    // be able to overflow (or over-allocate) before the length check.
    let row_bytes = (key_len as u64).checked_mul(4).and_then(|b| b.checked_add(32));
    let expected =
        row_bytes.and_then(|rb| (n_rows as u64).checked_mul(rb)).and_then(|b| b.checked_add(16));
    if expected != Some(bytes.len() as u64) {
        return Err(malformed());
    }
    let mut cuboid: Cuboid = HashMap::with_capacity(n_rows);
    let mut at = 16;
    for _ in 0..n_rows {
        let mut key = Vec::with_capacity(key_len);
        for _ in 0..key_len {
            key.push(u32::from_le_bytes(take4(bytes, at)?));
            at += 4;
        }
        let sum = f64::from_bits(u64::from_le_bytes(take8(bytes, at)?));
        let count = u64::from_le_bytes(take8(bytes, at + 8)?);
        let min = f64::from_bits(u64::from_le_bytes(take8(bytes, at + 16)?));
        let max = f64::from_bits(u64::from_le_bytes(take8(bytes, at + 24)?));
        at += 32;
        cuboid.insert(key.into_boxed_slice(), AggState { sum, count, min, max });
    }
    Ok(cuboid)
}

/// Parses a sealed view file straight into the executor's columnar
/// [`CellBlock`] (one measure per row), skipping the intermediate
/// [`Cuboid`] hash map entirely. The sealed format is key-sorted, so rows
/// land in block order; the trailing [`CellBlock::sort_rows`] is a no-op
/// sortedness check that keeps a malformed-but-checksummed buffer from
/// breaking the block's binary-search invariant.
pub(crate) fn block_from_cuboid_bytes(bytes: &[u8], object: &str) -> Result<CellBlock> {
    let malformed = || Error::InvalidSchema(format!("malformed cuboid file `{object}`"));
    let take8 = |b: &[u8], at: usize| -> Result<[u8; 8]> {
        b.get(at..at + 8).and_then(|s| s.try_into().ok()).ok_or_else(malformed)
    };
    let take4 = |b: &[u8], at: usize| -> Result<[u8; 4]> {
        b.get(at..at + 4).and_then(|s| s.try_into().ok()).ok_or_else(malformed)
    };
    let n_rows = u64::from_le_bytes(take8(bytes, 0)?) as usize;
    let key_len = u64::from_le_bytes(take8(bytes, 8)?) as usize;
    let row_bytes = (key_len as u64).checked_mul(4).and_then(|b| b.checked_add(32));
    let expected =
        row_bytes.and_then(|rb| (n_rows as u64).checked_mul(rb)).and_then(|b| b.checked_add(16));
    if expected != Some(bytes.len() as u64) {
        return Err(malformed());
    }
    let mut block = CellBlock::new(key_len, 1);
    let mut key = vec![0u32; key_len];
    let mut at = 16;
    for _ in 0..n_rows {
        for k in key.iter_mut() {
            *k = u32::from_le_bytes(take4(bytes, at)?);
            at += 4;
        }
        let sum = f64::from_bits(u64::from_le_bytes(take8(bytes, at)?));
        let count = u64::from_le_bytes(take8(bytes, at + 8)?);
        let min = f64::from_bits(u64::from_le_bytes(take8(bytes, at + 16)?));
        let max = f64::from_bits(u64::from_le_bytes(take8(bytes, at + 24)?));
        at += 32;
        block.push_row(&key, &[AggState { sum, count, min, max }], false);
    }
    block.sort_rows();
    Ok(block)
}

fn view_file_name(mask: u32) -> String {
    format!("cuboid:{mask:#b}")
}

/// Inverse of [`view_file_name`]: the mask a sealed view file refers to.
/// Used by the serving layer to map scrub failures back to cached entries.
pub(crate) fn mask_of_view_file(name: &str) -> Option<u32> {
    u32::from_str_radix(name.strip_prefix("cuboid:0b")?, 2).ok()
}

/// Seals every view into a fresh [`PageStore`], one checksummed file per
/// mask (in sorted order, so file ids are deterministic).
fn seal_views(views: &HashMap<u32, Cuboid>) -> (PageStore, HashMap<u32, usize>) {
    let pages = PageStore::default();
    let mut masks: Vec<u32> = views.keys().copied().collect();
    masks.sort_unstable();
    let mut files = HashMap::with_capacity(masks.len());
    for mask in masks {
        let bytes = serialize_cuboid(&views[&mask], mask.count_ones() as usize);
        files.insert(mask, pages.create(&view_file_name(mask), &bytes));
    }
    (pages, files)
}

impl ViewStore {
    /// Materializes the selected masks (plus, always, the base cuboid) by
    /// computing them from the facts, sealing each into the page store.
    pub fn build(input: &FactInput, selected: &[u32]) -> Result<Self> {
        let lattice = Lattice::new(input.cards(), input.len() as u64)?;
        let top = lattice.top();
        let mut views = HashMap::new();
        views.insert(top, groupby::from_facts(input, top));
        for &mask in selected {
            if mask > top {
                return Err(Error::InvalidSchema(format!("mask {mask:b} out of range")));
            }
            views.entry(mask).or_insert_with(|| groupby::from_facts(input, mask));
        }
        // Refresh the lattice with measured sizes for accurate routing.
        let measured: Vec<(u32, u64)> = views.iter().map(|(&m, c)| (m, c.len() as u64)).collect();
        let lattice = lattice.with_measured_sizes(&measured);
        let (pages, files) = seal_views(&views);
        let base_dense = views.get(&top).and_then(|b| dense_base_of(b, input.cards()));
        Ok(Self {
            lattice,
            views,
            pages,
            files,
            base_dense,
            decoded: RwLock::default(),
            streamed: RwLock::default(),
        })
    }

    /// Materializes views out of an already computed [`CubeResult`].
    pub fn from_cube(cube: &CubeResult, cards: &[usize], selected: &[u32]) -> Result<Self> {
        let lattice = Lattice::new(cards, u64::MAX)?;
        let top = lattice.top();
        let mut views = HashMap::new();
        for &mask in selected.iter().chain(std::iter::once(&top)) {
            let cuboid = cube
                .cuboid(mask)
                .ok_or_else(|| Error::InvalidSchema(format!("cube lacks mask {mask:b}")))?;
            views.insert(mask, cuboid.clone());
        }
        let measured: Vec<(u32, u64)> = views.iter().map(|(&m, c)| (m, c.len() as u64)).collect();
        let (pages, files) = seal_views(&views);
        let base_dense = views.get(&top).and_then(|b| dense_base_of(b, cards));
        Ok(Self {
            lattice: lattice.with_measured_sizes(&measured),
            views,
            pages,
            files,
            base_dense,
            decoded: RwLock::default(),
            streamed: RwLock::default(),
        })
    }

    /// Rebuilds a store directly from already-materialized views — the
    /// recovery path: a durable snapshot record carries `cards`, the base
    /// row count, and every sealed view's cells, and this reconstitutes the
    /// exact store they were captured from (same lattice, same measured
    /// sizes, fresh seals, dense base re-derived). The base cuboid
    /// (`top` mask) must be among `views`.
    pub fn from_views(
        cards: &[usize],
        base_rows: u64,
        views: HashMap<u32, Cuboid>,
    ) -> Result<Self> {
        let lattice = Lattice::new(cards, base_rows)?;
        let top = lattice.top();
        if !views.contains_key(&top) {
            return Err(Error::InvalidSchema("snapshot lacks the base cuboid".into()));
        }
        if let Some(&mask) = views.keys().find(|&&m| m > top) {
            return Err(Error::InvalidSchema(format!("mask {mask:b} out of range")));
        }
        let measured: Vec<(u32, u64)> = views.iter().map(|(&m, c)| (m, c.len() as u64)).collect();
        let lattice = lattice.with_measured_sizes(&measured);
        let (pages, files) = seal_views(&views);
        let base_dense = views.get(&top).and_then(|b| dense_base_of(b, cards));
        Ok(Self {
            lattice,
            views,
            pages,
            files,
            base_dense,
            decoded: RwLock::default(),
            streamed: RwLock::default(),
        })
    }

    /// The routing lattice (dimension count, sizes, derivability).
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The page-store invalidation epoch of materialized view `mask`
    /// (`None` when the mask is not materialized). The epoch moves on every
    /// mutation of the sealed file — delta rewrite, targeted corruption, a
    /// persisted injected fault — so cached derivations can detect
    /// staleness; see
    /// [`PageStore::file_epoch`].
    pub fn view_epoch(&self, mask: u32) -> Option<u64> {
        self.files.get(&mask).map(|&id| self.pages.file_epoch(id))
    }

    /// The materialized masks.
    pub fn materialized(&self) -> Vec<u32> {
        let mut m: Vec<u32> = self.views.keys().copied().collect();
        m.sort_unstable();
        m
    }

    /// Total cells stored.
    pub fn stored_cells(&self) -> u64 {
        self.views.values().map(|c| c.len() as u64).sum()
    }

    /// Incrementally maintains the materialized views against an append
    /// batch (§6.5: "it is very common to append to the data cube over
    /// time … daily appends"): builds the successor store with
    /// [`ViewStore::fold_delta`] and swaps it in. A rejected batch returns
    /// before the swap, so it provably mutates nothing.
    pub fn apply_delta(&mut self, delta: &FactInput) -> Result<DeltaReport> {
        let (next, report) = self.fold_delta(delta)?;
        *self = next;
        Ok(report)
    }

    /// The incremental maintenance fold: aggregates the batch **once** at
    /// the base cuboid, propagates that partial down the lattice to every
    /// materialized descendant (each derived from its smallest
    /// already-derived ancestor partial — the AggState monoid makes
    /// `view ⊕ partial` equal a rebuild), and seals the result into a fresh
    /// page store whose file epochs continue this store's sequence. `self`'s
    /// views, lattice, and sealed bytes are not mutated; the caller
    /// publishes the returned successor.
    ///
    /// **Runtime side effect:** sealing the successor *moves* `self`'s
    /// armed fault injector (RNG position included) and fault counters into
    /// it ([`PageStore::transplant_runtime_from`]), disarming `self` — so a
    /// chaos plan armed before the fold injects into the successor's very
    /// first seals, which is what the delta-publication atomicity property
    /// exercises. A caller that drops the returned store without publishing
    /// it loses the armed plan, and readers still on `self` stop seeing
    /// injected faults once the fold begins.
    ///
    /// Cost: the aggregation work is O(delta × materialized masks), but
    /// every view is cloned and resealed, so the per-batch floor is
    /// O(total store size). This is not incidental: any non-empty batch
    /// projects onto *every* materialized mask (a projection of a non-empty
    /// key set is non-empty), so no view's content survives unchanged, and
    /// the empty-batch full reseal is the documented heal path. Per-view
    /// copy-on-write would only ever help batches that change nothing; see
    /// ROADMAP for the partial-reseal idea that could lift the floor.
    ///
    /// Validation is fully up-front — arity, finite measures (a NaN measure
    /// would silently poison every aggregate *and* collide with the dense
    /// base array's empty-cell sentinel), and the grown lattice — so a
    /// rejected batch cannot leave a half-applied store behind.
    ///
    /// A batch may carry coordinates beyond the store's current
    /// cardinalities (declared via the delta's own `cards`): the lattice
    /// grows to the element-wise maximum and the dense base organization
    /// absorbs the growth as \[RZ86\] increment segments.
    pub fn fold_delta(&self, delta: &FactInput) -> Result<(ViewStore, DeltaReport)> {
        self.fold_delta_observed(delta, &mut || {})
    }

    /// Everything [`ViewStore::fold_delta`] rejects, checked without
    /// mutating or building anything: arity, finite measures, and a
    /// constructible grown lattice. The durable write path runs this
    /// *before* journaling the batch, so a batch the fold would refuse is
    /// never written to the log (replaying it would refuse it again — a
    /// wedged journal).
    pub fn validate_delta(&self, delta: &FactInput) -> Result<()> {
        if delta.dim_count() != self.lattice.dim_count() {
            return Err(Error::ArityMismatch {
                expected: self.lattice.dim_count(),
                got: delta.dim_count(),
            });
        }
        if let Some(row) = delta.measure().iter().position(|m| !m.is_finite()) {
            return Err(Error::InvalidSchema(format!("delta row {row} has a non-finite measure")));
        }
        let new_cards: Vec<usize> =
            self.lattice.cards().iter().zip(delta.cards()).map(|(&a, &b)| a.max(b)).collect();
        Lattice::new(&new_cards, self.lattice.base_rows().saturating_add(delta.len() as u64))?;
        Ok(())
    }

    /// [`ViewStore::fold_delta`] with seal-progress observation:
    /// `on_view_sealed` runs after each successor view file is sealed. The
    /// crash-injection harness uses it to kill the writer *mid-seal* — one
    /// view written, the rest absent, nothing published — the state the
    /// recovery chaos suite proves invisible after replay.
    pub fn fold_delta_observed(
        &self,
        delta: &FactInput,
        on_view_sealed: &mut dyn FnMut(),
    ) -> Result<(ViewStore, DeltaReport)> {
        self.validate_delta(delta)?;
        let old_cards = self.lattice.cards();
        let new_cards: Vec<usize> =
            old_cards.iter().zip(delta.cards()).map(|(&a, &b)| a.max(b)).collect();
        let lattice =
            Lattice::new(&new_cards, self.lattice.base_rows().saturating_add(delta.len() as u64))?;
        let top = lattice.top();

        // One aggregation of the batch, at the base; every coarser partial
        // is derived from the smallest partial already computed, never from
        // the facts again.
        let delta_base = groupby::from_facts(delta, top);
        let mut touched_base: Vec<Box<[u32]>> = delta_base.keys().cloned().collect();
        touched_base.sort_unstable();
        let mut order: Vec<u32> = self.views.keys().copied().collect();
        order.sort_unstable_by_key(|m| std::cmp::Reverse(m.count_ones()));
        let mut partials: HashMap<u32, Cuboid> = HashMap::with_capacity(order.len() + 1);
        partials.insert(top, delta_base);
        for &mask in &order {
            if partials.contains_key(&mask) {
                continue;
            }
            let ancestor = partials
                .iter()
                .filter(|&(&a, _)| mask & !a == 0)
                .min_by_key(|&(_, c)| c.len())
                .map_or(top, |(&a, _)| a);
            let partial = groupby::from_parent(&partials[&ancestor], ancestor, mask);
            partials.insert(mask, partial);
        }

        let mut views = self.views.clone();
        let mut cells_touched = 0u64;
        for (mask, cuboid) in views.iter_mut() {
            if let Some(partial) = partials.remove(mask) {
                cells_touched += partial.len() as u64;
                for (key, state) in partial {
                    cuboid.entry(key).or_insert(AggState::EMPTY).merge(&state);
                }
            }
        }

        // Grow the dense base organization by increment segments for any
        // dimension that saw new values, then write the touched cells'
        // post-fold sums. (Dropped, not restructured, if growth pushed the
        // cross product past the dense limit.)
        let mut extended_dims = Vec::new();
        let mut base_dense = match &self.base_dense {
            Some(arr) if dense_cell_count(&new_cards).is_some() => Some(arr.clone()),
            _ => None,
        };
        if let Some(arr) = base_dense.as_mut() {
            for (d, (&old, &new)) in old_cards.iter().zip(&new_cards).enumerate() {
                if new > old {
                    arr.extend(d, new - old)?;
                    extended_dims.push((d, new - old));
                }
            }
            if let Some(base) = views.get(&top) {
                let mut coords = vec![0usize; new_cards.len()];
                for key in &touched_base {
                    for (c, &k) in coords.iter_mut().zip(key.iter()) {
                        *c = k as usize;
                    }
                    if let Some(state) = base.get(key) {
                        arr.set(&coords, state.sum)?;
                    }
                }
            }
        }

        let measured: Vec<(u32, u64)> = views.iter().map(|(&m, c)| (m, c.len() as u64)).collect();
        let lattice = lattice.with_measured_sizes(&measured);
        let (pages, files) = self.seal_successor(&views, on_view_sealed);
        let report =
            DeltaReport { rows: delta.len() as u64, touched_base, cells_touched, extended_dims };
        let next = ViewStore {
            lattice,
            views,
            pages,
            files,
            base_dense,
            decoded: RwLock::default(),
            streamed: RwLock::default(),
        };
        Ok((next, report))
    }

    /// Seals `views` into a fresh page store that *succeeds* this store's:
    /// the armed fault injector and counters move over first (so injected
    /// faults land on the successor's seals) and every file's epoch
    /// continues the predecessor's sequence (so cached derivations pinned
    /// pre-swap can never falsely match the successor).
    fn seal_successor(
        &self,
        views: &HashMap<u32, Cuboid>,
        on_view_sealed: &mut dyn FnMut(),
    ) -> (PageStore, HashMap<u32, usize>) {
        let pages = PageStore::new(self.pages.io().page_size()).with_retry(self.pages.retry());
        pages.transplant_runtime_from(&self.pages);
        let mut masks: Vec<u32> = views.keys().copied().collect();
        masks.sort_unstable();
        let mut files = HashMap::with_capacity(masks.len());
        for mask in masks {
            let bytes = serialize_cuboid(&views[&mask], mask.count_ones() as usize);
            let id = pages.create(&view_file_name(mask), &bytes);
            pages.set_epoch(id, self.view_epoch(mask).map_or(0, |e| e + 1));
            files.insert(mask, id);
            on_view_sealed();
        }
        (pages, files)
    }

    /// Carries the runtime identity of the store this one replaces
    /// wholesale: file epochs continue `old`'s sequence and the armed fault
    /// injector + counters move over. The serving layer's full `rebuild`
    /// path calls this before publishing; the incremental fold does the
    /// same inline (and earlier, so its seals see injected faults).
    pub fn succeed(&self, old: &ViewStore) {
        self.pages.transplant_runtime_from(old.page_store());
        for (&mask, &id) in &self.files {
            if let Some(epoch) = old.view_epoch(mask) {
                self.pages.set_epoch(id, epoch + 1);
            }
        }
    }

    /// The materialized cells of view `mask` (the in-memory copy the fold
    /// maintains), or `None` when the mask is not materialized. Exposed for
    /// differential maintenance tests and sizing.
    pub fn view(&self, mask: u32) -> Option<&Cuboid> {
        self.views.get(&mask)
    }

    /// The dense extendible-array base organization, if the cross product
    /// fits the dense limit. Deltas grow it by increment segments.
    pub fn dense_base(&self) -> Option<&ExtendibleArray> {
        self.base_dense.as_ref()
    }

    /// The materialized catalog the planner's lattice pass routes against:
    /// one [`CatalogEntry`] per sealed view, masks ascending.
    pub fn catalog(&self) -> Vec<CatalogEntry> {
        let mut c: Vec<CatalogEntry> = self
            .views
            .iter()
            .map(|(&mask, cuboid)| CatalogEntry { mask, cells: cuboid.len() as u64 })
            .collect();
        c.sort_unstable_by_key(|e| e.mask);
        c
    }

    /// Answers the query for cuboid `mask` from the smallest materialized
    /// ancestor whose sealed pages verify.
    ///
    /// The query compiles to a summary-algebra [`Plan`] (a coded
    /// `Aggregate` over the store's catalog), runs through the shared
    /// planner — whose lattice pass orders candidates ascending by size,
    /// the \[HUR96\] cost heuristic — and executes on the one shared
    /// executor. A candidate that fails verification — checksum mismatch or
    /// retries exhausted — is recorded and the next-smallest ancestor is
    /// tried, down to the base cuboid. A successful answer after failures
    /// carries the [`Degradation`] record; if every candidate fails the
    /// query returns [`Error::NoHealthySource`].
    pub fn answer(&self, mask: u32) -> Result<Answer> {
        self.answer_with_policy(mask, &PrivacyPolicy::none(), PlannerConfig::default())
    }

    /// [`ViewStore::answer`] under an explicit privacy policy and planner
    /// configuration. Cells the policy suppresses are withheld from the
    /// returned cuboid entirely — the same verdicts the SQL front-ends
    /// publish as suppressed rows.
    pub fn answer_with_policy(
        &self,
        mask: u32,
        policy: &PrivacyPolicy,
        config: PlannerConfig,
    ) -> Result<Answer> {
        // Decide profile ownership before the executor opens its spans.
        let attach_profile = trace::is_enabled() && trace::at_root();
        let catalog = self.catalog();
        let planned = Planner::for_store(self.lattice.dim_count(), &catalog)
            .with_policy(policy.clone())
            .with_config(config)
            .plan(&Plan::scan("cube").aggregate_mask(mask))?;
        let exec = plan::execute(&planned, self)?;
        let sa = exec
            .sets
            .into_iter()
            .next()
            .ok_or_else(|| Error::InvalidSchema("planner produced no grouping set".into()))?;
        let block = &sa.cells;
        let mut cuboid: Cuboid = HashMap::with_capacity(block.len());
        for i in 0..block.len() {
            if block.is_suppressed(i) {
                continue;
            }
            let state =
                if block.measure_count() == 0 { AggState::EMPTY } else { block.state(0, i) };
            cuboid.insert(block.key(i).to_vec().into_boxed_slice(), state);
        }
        let degraded = sa.degraded.map(|d| Degradation {
            requested: d.requested,
            served_from: d.served_from,
            failed: d.failed,
            extra_cells: d.extra_cells,
        });
        let profile = if attach_profile { Some(trace::take_profile()) } else { None };
        Ok(Answer { cuboid, source: sa.source, cells_scanned: sa.cells_scanned, degraded, profile })
    }

    /// Answers every cuboid of the lattice, assembling a [`CubeResult`]
    /// whose per-cuboid [`CuboidStats`] carry fallback provenance
    /// ([`DerivationSource::FallbackAncestor`]) and whose
    /// [`CubeResult::degradations`] list every degraded answer.
    ///
    /// Fails with the first unanswerable cuboid's typed error.
    pub fn answer_cube(&self) -> Result<CubeResult> {
        let mut sp = trace::span("cube.answer_cube");
        let attach_profile = sp.is_root();
        let n = self.lattice.dim_count();
        let mut cuboids = HashMap::with_capacity(1 << n);
        let mut stats = Vec::with_capacity(1 << n);
        let mut degradations = Vec::new();
        for mask in 0..=self.lattice.top() {
            let t = std::time::Instant::now();
            let ans = self.answer(mask)?;
            let source = match &ans.degraded {
                Some(d) => {
                    DerivationSource::FallbackAncestor { parent: ans.source, failed: d.failed[0].0 }
                }
                None => DerivationSource::Ancestor { parent: ans.source },
            };
            stats.push(CuboidStats {
                mask,
                rows_scanned: ans.cells_scanned,
                cells: ans.cuboid.len() as u64,
                wall: t.elapsed(),
                source,
            });
            if let Some(d) = ans.degraded {
                degradations.push(d);
            }
            cuboids.insert(mask, ans.cuboid);
        }
        let mut result = CubeResult::from_parts(n, cuboids, stats);
        for d in degradations {
            result.push_degradation(d);
        }
        if sp.is_recording() {
            sp.record("cuboids", (self.lattice.top() as u64) + 1);
            sp.record("cells", result.total_cells() as u64);
            drop(sp);
            if attach_profile {
                result.set_profile(trace::take_profile());
            }
        }
        Ok(result)
    }

    /// The checksummed page store backing the views (I/O + fault counters).
    pub fn page_store(&self) -> &PageStore {
        &self.pages
    }

    /// Arms fault injection on the backing store with `plan`.
    pub fn arm_faults(&self, plan: FaultPlan) {
        self.pages.arm(plan);
    }

    /// Disarms fault injection (persistent corruption, if any, remains).
    pub fn disarm_faults(&self) {
        self.pages.disarm();
    }

    /// Fault counters accumulated by the backing store.
    pub fn fault_stats(&self) -> FaultStats {
        self.pages.stats()
    }

    /// Test/chaos hook: flips one stored bit of view `mask`'s sealed file
    /// (`bit` addresses the whole file and wraps). No-op on an empty file.
    /// The decoded and streamed caches for the view are dropped so the
    /// corruption is observable on the very next read — a "dead" view must
    /// not keep serving from a block decoded before the damage.
    pub fn corrupt_view(&self, mask: u32, bit: u64) -> Result<()> {
        let &file = self
            .files
            .get(&mask)
            .ok_or_else(|| Error::InvalidSchema(format!("mask {mask:b} not materialized")))?;
        self.decoded.write().unwrap_or_else(|p| p.into_inner()).remove(&mask);
        self.streamed.write().unwrap_or_else(|p| p.into_inner()).remove(&mask);
        let n_pages = self.pages.page_count(file);
        if n_pages == 0 {
            return Ok(());
        }
        let page_bits = self.pages.io().page_size() as u64 * 8;
        let page = (bit / page_bits.max(1)) % n_pages;
        self.pages.corrupt_bit(file, page, bit % page_bits.max(1));
        Ok(())
    }

    /// Maintenance scrub of every sealed view file (see
    /// [`PageStore::scrub`]).
    pub fn scrub(&self) -> ScrubReport {
        self.pages.scrub()
    }

    /// [`ViewStore::scrub`], converted to a typed error on first failure.
    pub fn verify_all(&self) -> Result<ScrubReport> {
        self.pages.verify_all()
    }

    /// The mixed-radix shape of deriving `target` from `source`: per target
    /// key slot, its position in the source key and its radix (the
    /// lattice's cardinality), plus the composite group count. `None` when
    /// the cross product exceeds [`STREAM_GROUP_LIMIT`] — the dense path
    /// handles those.
    fn stream_shape(&self, source: u32, target: u32) -> Option<(Vec<usize>, Vec<u32>, usize)> {
        let tpos = bit_positions(source, target);
        let cards = self.lattice.cards();
        let mut radices = Vec::with_capacity(tpos.len());
        let mut group_count = 1usize;
        for d in (0..32).filter(|b| target >> b & 1 == 1) {
            let c = *cards.get(d)?;
            group_count = group_count.checked_mul(c).filter(|&n| n <= STREAM_GROUP_LIMIT)?;
            radices.push(c as u32);
        }
        (tpos.len() == radices.len()).then_some((tpos, radices, group_count))
    }

    /// Derives `target` straight off `source`'s sealed bytes, one
    /// [`STREAM_CHUNK_ROWS`]-row chunk at a time, scatter-merging each
    /// chunk's states into per-group accumulators with
    /// [`group_merge_states_into`] — the dense source block is never
    /// materialized. Per-group merge order is sealed (key-sorted) row
    /// order, the same order the dense kernel accumulates in, so the
    /// result is bit-identical to load + `derive_block` (the differential
    /// suites replay both paths).
    fn stream_derive(
        &self,
        file: usize,
        source: u32,
        filters: &[(usize, Vec<u32>)],
        tpos: &[usize],
        radices: &[u32],
        group_count: usize,
    ) -> Result<SourceBlock> {
        let name = view_file_name(source);
        let malformed = || Error::InvalidSchema(format!("malformed cuboid file `{name}`"));
        let bytes = self.pages.read(file)?;
        let take8 = |b: &[u8], at: usize| -> Result<[u8; 8]> {
            b.get(at..at + 8).and_then(|s| s.try_into().ok()).ok_or_else(malformed)
        };
        let take4 = |b: &[u8], at: usize| -> Result<[u8; 4]> {
            b.get(at..at + 4).and_then(|s| s.try_into().ok()).ok_or_else(malformed)
        };
        let n_rows = u64::from_le_bytes(take8(&bytes, 0)?) as usize;
        let key_len = u64::from_le_bytes(take8(&bytes, 8)?) as usize;
        let row_bytes = (key_len as u64).checked_mul(4).and_then(|b| b.checked_add(32));
        let expected = row_bytes
            .and_then(|rb| (n_rows as u64).checked_mul(rb))
            .and_then(|b| b.checked_add(16));
        if expected != Some(bytes.len() as u64) {
            return Err(malformed());
        }
        // Filter slots, mirroring the dense kernel: a filter on a dimension
        // the source does not carry is silently inapplicable.
        let fpos: Vec<(usize, &[u32])> = filters
            .iter()
            .filter_map(|(d, allowed)| {
                bit_positions(source, 1u32 << d).first().map(|&p| (p, allowed.as_slice()))
            })
            .collect();
        let mut groups = vec![AggState::EMPTY; group_count];
        let mut present = vec![false; group_count];
        let mut codes: Vec<u32> = Vec::with_capacity(STREAM_CHUNK_ROWS);
        let mut states: Vec<AggState> = Vec::with_capacity(STREAM_CHUNK_ROWS);
        let mut key = vec![0u32; key_len];
        let mut at = 16;
        for row in 0..n_rows {
            for k in key.iter_mut() {
                *k = u32::from_le_bytes(take4(&bytes, at)?);
                at += 4;
            }
            let sum = f64::from_bits(u64::from_le_bytes(take8(&bytes, at)?));
            let count = u64::from_le_bytes(take8(&bytes, at + 8)?);
            let min = f64::from_bits(u64::from_le_bytes(take8(&bytes, at + 16)?));
            let max = f64::from_bits(u64::from_le_bytes(take8(&bytes, at + 24)?));
            at += 32;
            // The skip-unknown contract doubles as the filter reject path:
            // a rejected row is coded past the group range.
            let mut code = 0usize;
            let mut keep = fpos
                .iter()
                .all(|(p, allowed)| key.get(*p).is_some_and(|c| allowed.binary_search(c).is_ok()));
            if keep {
                for (&p, &r) in tpos.iter().zip(radices) {
                    match key.get(p) {
                        // A coordinate past the lattice's cardinality can
                        // only mean malformed-but-checksummed bytes; the
                        // mixed-radix code would alias, so refuse loudly
                        // rather than mis-group.
                        Some(&c) if c < r => code = code * r as usize + c as usize,
                        _ => return Err(malformed()),
                    }
                }
            }
            if keep && code >= group_count {
                keep = false;
            }
            if keep {
                present[code] = true;
            }
            codes.push(if keep { code as u32 } else { group_count as u32 });
            states.push(AggState { sum, count, min, max });
            if codes.len() == STREAM_CHUNK_ROWS || row + 1 == n_rows {
                group_merge_states_into(&codes, &states, &mut groups);
                codes.clear();
                states.clear();
            }
        }
        // Ascending composite code is ascending lexicographic target key,
        // so rows land born-sorted; the trailing sort is the same no-op
        // sortedness check the dense decoder runs.
        let mut block = CellBlock::new(tpos.len(), 1);
        let mut tkey = vec![0u32; tpos.len()];
        for (code, state) in groups.iter().enumerate() {
            if !present[code] {
                continue;
            }
            let mut rest = code;
            for (slot, &r) in tkey.iter_mut().zip(radices).rev() {
                *slot = (rest % r as usize) as u32;
                rest /= r as usize;
            }
            block.push_row(&tkey, &[*state], false);
        }
        block.sort_rows();
        Ok(SourceBlock { cells: Arc::new(block), scanned: n_rows as u64 })
    }
}

/// Rows per chunk of the sealed-page streaming scan.
const STREAM_CHUNK_ROWS: usize = 2048;

/// Ceiling on the composite group count the streaming scan will
/// accumulate into (64 KiB groups ≈ 2 MiB of states): a coarser target
/// over a huge cross product falls back to the dense derivation.
const STREAM_GROUP_LIMIT: usize = 1 << 16;

impl PlanSource for ViewStore {
    /// Loads a materialized view through the checksummed page store: a
    /// verification failure is returned as the typed error the executor's
    /// fallback chain expects.
    ///
    /// Repeat loads of an unchanged file are served from the decoded-block
    /// cache (epoch-pinned, see the field docs); `scanned` still charges the
    /// view's full cell count either way, so the \[HUR96\] cost model the
    /// experiments verify is unaffected by the shortcut.
    fn load(&self, source: u32) -> Result<SourceBlock> {
        let &file = self
            .files
            .get(&source)
            .ok_or_else(|| Error::InvalidSchema(format!("mask {source:b} not materialized")))?;
        let epoch = self.pages.file_epoch(file);
        let armed = self.pages.is_armed();
        if !armed {
            let decoded = self.decoded.read().unwrap_or_else(|p| p.into_inner());
            if let Some((e, block)) = decoded.get(&source) {
                if *e == epoch {
                    let cells = Arc::clone(block);
                    return Ok(SourceBlock { scanned: cells.len() as u64, cells });
                }
            }
        }
        let name = view_file_name(source);
        let bytes = self.pages.read(file)?;
        let cells = Arc::new(block_from_cuboid_bytes(&bytes, &name)?);
        if !armed {
            let mut decoded = self.decoded.write().unwrap_or_else(|p| p.into_inner());
            decoded.insert(source, (epoch, Arc::clone(&cells)));
        }
        Ok(SourceBlock { scanned: cells.len() as u64, cells })
    }

    /// The chunked cold-scan shortcut: on the *first* cold, non-identity
    /// read of a sealed view per epoch, the target is derived straight off
    /// the sealed pages through the `storage::chunks` state kernels —
    /// bit-identical to load + dense derivation, without materializing the
    /// dense source block. Declines (`None`) on identity loads, while a
    /// fault injector is armed (so chaos plans keep exercising the exact
    /// historical load path), when the decoded cache is already warm, on a
    /// repeat cold read (letting [`PlanSource::load`] warm the cache), and
    /// when the target's cross product exceeds the stream group limit.
    fn load_derived(
        &self,
        source: u32,
        target: u32,
        filters: &[(usize, Vec<u32>)],
    ) -> Option<Result<SourceBlock>> {
        if (source == target && filters.is_empty()) || self.pages.is_armed() {
            return None;
        }
        // An unmaterialized mask falls through to `load`'s typed error.
        let &file = self.files.get(&source)?;
        let epoch = self.pages.file_epoch(file);
        {
            let decoded = self.decoded.read().unwrap_or_else(|p| p.into_inner());
            if decoded.get(&source).is_some_and(|(e, _)| *e == epoch) {
                return None;
            }
        }
        let (tpos, radices, group_count) = self.stream_shape(source, target)?;
        {
            let mut streamed = self.streamed.write().unwrap_or_else(|p| p.into_inner());
            if streamed.insert(source, epoch) == Some(epoch) {
                return None;
            }
        }
        Some(self.stream_derive(file, source, filters, &tpos, &radices, group_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_op;
    use crate::materialize;

    fn input() -> FactInput {
        let mut f = FactInput::new(&[8, 4, 2]).unwrap();
        let mut x = 99u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            f.push(
                &[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32],
                (x % 10) as f64,
            )
            .unwrap();
        }
        f
    }

    #[test]
    fn answers_match_direct_computation() {
        let f = input();
        let store = ViewStore::build(&f, &[0b011, 0b100]).unwrap();
        for mask in 0..8u32 {
            let ans = store.answer(mask).unwrap();
            let direct = groupby::from_facts(&f, mask);
            assert_eq!(ans.cuboid, direct, "mask {mask:03b}");
        }
    }

    #[test]
    fn routing_prefers_smallest_ancestor() {
        let f = input();
        let store = ViewStore::build(&f, &[0b011]).unwrap();
        // Query {dim0}: derivable from 0b011 (small) or base (large).
        let ans = store.answer(0b001).unwrap();
        assert_eq!(ans.source, 0b011);
        // Query {dim2}: only the base covers it.
        let ans2 = store.answer(0b100).unwrap();
        assert_eq!(ans2.source, 0b111);
        assert!(ans.cells_scanned < ans2.cells_scanned);
        // An exactly materialized view answers itself.
        let ans3 = store.answer(0b011).unwrap();
        assert_eq!(ans3.source, 0b011);
    }

    #[test]
    fn greedy_views_reduce_measured_cost() {
        let f = input();
        let lattice = Lattice::new(f.cards(), f.len() as u64).unwrap();
        let greedy = materialize::greedy_select(&lattice, 3).unwrap();
        let with_views = ViewStore::build(&f, &greedy.selected).unwrap();
        let base_only = ViewStore::build(&f, &[]).unwrap();
        let cost =
            |s: &ViewStore| -> u64 { (0..8u32).map(|m| s.answer(m).unwrap().cells_scanned).sum() };
        assert!(cost(&with_views) < cost(&base_only));
    }

    #[test]
    fn from_cube_reuses_computed_cuboids() {
        let f = input();
        let cube = cube_op::compute_shared(&f);
        let store = ViewStore::from_cube(&cube, f.cards(), &[0b101]).unwrap();
        assert_eq!(store.materialized(), vec![0b101, 0b111]);
        let ans = store.answer(0b001).unwrap();
        assert_eq!(ans.source, 0b101);
        assert_eq!(&ans.cuboid, cube.cuboid(0b001).unwrap());
        assert!(store.stored_cells() > 0);
    }

    #[test]
    fn apply_delta_equals_rebuild() {
        let f = input();
        let mut store = ViewStore::build(&f, &[0b011, 0b100]).unwrap();
        // A nightly append batch.
        let mut delta = FactInput::new(f.cards()).unwrap();
        let mut x = 5u64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            delta
                .push(
                    &[(x % 8) as u32, ((x >> 8) % 4) as u32, ((x >> 16) % 2) as u32],
                    (x % 10) as f64,
                )
                .unwrap();
        }
        store.apply_delta(&delta).unwrap();
        // Rebuild from the concatenated facts and compare every cuboid.
        let mut combined = FactInput::new(f.cards()).unwrap();
        for row in 0..f.len() {
            combined.push(&f.coords(row), f.measure()[row]).unwrap();
        }
        for row in 0..delta.len() {
            combined.push(&delta.coords(row), delta.measure()[row]).unwrap();
        }
        let rebuilt = ViewStore::build(&combined, &[0b011, 0b100]).unwrap();
        for mask in 0..8u32 {
            let a = store.answer(mask).unwrap().cuboid;
            let b = rebuilt.answer(mask).unwrap().cuboid;
            assert_eq!(a.len(), b.len(), "mask {mask:03b}");
            for (k, s) in &b {
                let got = &a[k];
                assert!((got.sum - s.sum).abs() < 1e-9);
                assert_eq!(got.count, s.count);
            }
        }
        // Mismatched delta arity is rejected.
        let bad = FactInput::new(&[2, 2]).unwrap();
        assert!(store.apply_delta(&bad).is_err());
    }

    #[test]
    fn errors() {
        let f = input();
        let store = ViewStore::build(&f, &[]).unwrap();
        assert!(store.answer(0b1000).is_err());
        assert!(ViewStore::build(&f, &[0b11111]).is_err());
        let cube = cube_op::compute_rollup(&f, &[0, 1, 2]).unwrap();
        // A rollup result lacks most masks.
        assert!(ViewStore::from_cube(&cube, f.cards(), &[0b010]).is_err());
    }

    #[test]
    fn serialization_round_trips() {
        let f = input();
        let base = groupby::from_facts(&f, 0b111);
        let bytes = serialize_cuboid(&base, 3);
        assert_eq!(deserialize_cuboid(&bytes, "t").unwrap(), base);
        // Empty cuboid round-trips too.
        let empty = Cuboid::new();
        let b2 = serialize_cuboid(&empty, 3);
        assert_eq!(deserialize_cuboid(&b2, "t").unwrap(), empty);
        // Truncated/garbage buffers are typed errors, not panics.
        assert!(deserialize_cuboid(&bytes[..bytes.len() - 1], "t").is_err());
        assert!(deserialize_cuboid(&[1, 2, 3], "t").is_err());
    }

    #[test]
    fn corrupt_view_falls_back_to_healthy_ancestor() {
        let f = input();
        let store = ViewStore::build(&f, &[0b011]).unwrap();
        assert!(store.verify_all().is_ok());
        store.corrupt_view(0b011, 37).unwrap();
        assert!(store.verify_all().is_err());
        // The preferred source for {d0} is the corrupted 0b011; the answer
        // must detour through the base and still be exact.
        let ans = store.answer(0b001).unwrap();
        assert_eq!(ans.source, 0b111);
        assert_eq!(ans.cuboid, groupby::from_facts(&f, 0b001));
        let d = ans.degraded.expect("detour must be recorded");
        assert_eq!(d.requested, 0b001);
        assert_eq!(d.served_from, 0b111);
        assert_eq!(d.failed.len(), 1);
        assert_eq!(d.failed[0].0, 0b011);
        assert!(matches!(d.failed[0].1, Error::ChecksumMismatch { .. }));
        assert!(d.extra_cells > 0, "base is larger than the preferred view");
        // Fault counters observed the failure.
        assert!(store.fault_stats().checksum_failures > 0);
        // A healthy-source answer stays un-degraded.
        assert!(store.answer(0b111).unwrap().degraded.is_none());
    }

    #[test]
    fn all_sources_corrupt_is_a_typed_error() {
        let f = input();
        let store = ViewStore::build(&f, &[0b011]).unwrap();
        store.corrupt_view(0b011, 0).unwrap();
        store.corrupt_view(0b111, 0).unwrap();
        match store.answer(0b001) {
            Err(Error::NoHealthySource { requested, tried }) => {
                assert_eq!(requested, 0b001);
                assert_eq!(tried, 2);
            }
            other => panic!("expected NoHealthySource, got {other:?}"),
        }
        // Rewriting (delta maintenance) heals the store.
        let mut store = store;
        let delta = FactInput::new(f.cards()).unwrap();
        store.apply_delta(&delta).unwrap();
        assert!(store.verify_all().is_ok());
        assert!(store.answer(0b001).unwrap().degraded.is_none());
    }

    #[test]
    fn transient_faults_retry_and_stay_exact() {
        let f = input();
        let store = ViewStore::build(&f, &[0b011]).unwrap();
        store.arm_faults(FaultPlan::transient_only(11, 0.1));
        for mask in 0..8u32 {
            let ans = store.answer(mask).unwrap();
            // Answers stay exact; a burst that outlives the retry budget may
            // force a fallback, but only ever as RetriesExhausted — never a
            // checksum failure (nothing is corrupt).
            assert_eq!(ans.cuboid, groupby::from_facts(&f, mask), "mask {mask:03b}");
            if let Some(d) = &ans.degraded {
                for (_, e) in &d.failed {
                    assert!(matches!(e, Error::RetriesExhausted { .. }));
                }
            }
        }
        let s = store.fault_stats();
        assert!(s.transient_faults + s.short_reads > 0, "plan should have fired");
        assert!(s.retries > 0);
        assert!(s.backoff_us > 0);
        assert_eq!(s.checksum_failures, 0);
        store.disarm_faults();
        assert!(store.answer(0b001).unwrap().degraded.is_none());
    }

    #[test]
    fn answer_cube_surfaces_degradations() {
        let f = input();
        let store = ViewStore::build(&f, &[0b011, 0b101]).unwrap();
        store.corrupt_view(0b011, 5).unwrap();
        let cube = store.answer_cube().unwrap();
        assert_eq!(cube, cube_op::compute_shared(&f), "degraded answers stay exact");
        assert!(!cube.degradations().is_empty());
        // Every degraded cuboid's stats carry fallback provenance.
        for d in cube.degradations() {
            match cube.stats_for(d.requested).unwrap().source {
                DerivationSource::FallbackAncestor { parent, failed } => {
                    assert_eq!(parent, d.served_from);
                    assert_eq!(failed, 0b011);
                }
                ref s => panic!("expected fallback provenance, got {s:?}"),
            }
        }
        // 0b011 itself must be among the degraded masks (its own file is bad).
        assert!(cube.degradations().iter().any(|d| d.requested == 0b011));
    }
}
