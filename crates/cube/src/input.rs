//! Fact input shared by every cube-computation engine.
//!
//! A [`FactInput`] is the dictionary-encoded fact table the CUBE operator
//! (\[GB+96\]) and the MOLAP/ROLAP engines (\[ZDN97\], §6.6) all consume: one
//! `u32` code column per dimension plus one measure column. Engines are
//! compared on *identical* inputs (DESIGN.md, §6.6 substitution).

use statcube_core::error::{Error, Result};
use statcube_core::object::StatisticalObject;

/// Column-major fact tuples with known dimension cardinalities.
#[derive(Debug, Clone, PartialEq)]
pub struct FactInput {
    cards: Vec<usize>,
    dims: Vec<Vec<u32>>,
    measure: Vec<f64>,
}

impl FactInput {
    /// An empty input over dimensions of the given cardinalities.
    pub fn new(cards: &[usize]) -> Result<Self> {
        if cards.is_empty() || cards.contains(&0) {
            return Err(Error::InvalidSchema("need non-zero dimension cardinalities".into()));
        }
        if cards.len() > 16 {
            return Err(Error::InvalidSchema(
                "cube computation supports at most 16 dimensions".into(),
            ));
        }
        Ok(Self { cards: cards.to_vec(), dims: vec![Vec::new(); cards.len()], measure: Vec::new() })
    }

    /// Imports the populated cells of a single-measure statistical object
    /// (each cell's `sum` becomes one fact).
    pub fn from_object(obj: &StatisticalObject) -> Result<Self> {
        if obj.schema().measures().len() != 1 {
            return Err(Error::MultipleMeasures(obj.schema().measures().len()));
        }
        let mut input = Self::new(&obj.schema().cardinalities())?;
        for (coords, states) in obj.cells() {
            input.push(coords, states[0].sum)?;
        }
        Ok(input)
    }

    /// Appends one fact tuple.
    pub fn push(&mut self, coords: &[u32], value: f64) -> Result<()> {
        if coords.len() != self.cards.len() {
            return Err(Error::ArityMismatch { expected: self.cards.len(), got: coords.len() });
        }
        for (d, (&c, &card)) in coords.iter().zip(&self.cards).enumerate() {
            if c as usize >= card {
                return Err(Error::InvalidSchema(format!(
                    "coordinate {c} out of range {card} in dimension {d}"
                )));
            }
        }
        for (col, &c) in self.dims.iter_mut().zip(coords) {
            col.push(c);
        }
        self.measure.push(value);
        Ok(())
    }

    /// Number of dimensions.
    pub fn dim_count(&self) -> usize {
        self.cards.len()
    }

    /// Dimension cardinalities.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Number of fact tuples.
    pub fn len(&self) -> usize {
        self.measure.len()
    }

    /// True if no tuple was loaded.
    pub fn is_empty(&self) -> bool {
        self.measure.is_empty()
    }

    /// Dimension column `d`.
    pub fn dim(&self, d: usize) -> &[u32] {
        &self.dims[d]
    }

    /// The measure column.
    pub fn measure(&self) -> &[f64] {
        &self.measure
    }

    /// The coordinates of tuple `row`.
    pub fn coords(&self, row: usize) -> Vec<u32> {
        self.dims.iter().map(|c| c[row]).collect()
    }

    /// Splits the row index space into at most `parts` contiguous,
    /// non-empty, near-equal ranges covering `0..len` in order — the unit
    /// of work of the partition-parallel cube engine
    /// ([`crate::cube_op::compute_parallel`]). Returns fewer than `parts`
    /// ranges when there are fewer rows than partitions, and no ranges for
    /// an empty input.
    pub fn partition_ranges(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        let len = self.len();
        if len == 0 {
            return Vec::new();
        }
        let parts = parts.clamp(1, len);
        let base = len / parts;
        let extra = len % parts; // first `extra` ranges get one more row
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let size = base + usize::from(i < extra);
            out.push(start..start + size);
            start += size;
        }
        debug_assert_eq!(start, len);
        out
    }

    /// Size of the full cross product.
    pub fn cross_product_size(&self) -> usize {
        self.cards.iter().product()
    }

    /// Density: distinct populated coordinates / cross-product size. (Counts
    /// tuples, so duplicate coordinates overstate slightly; engines
    /// deduplicate on aggregation.)
    pub fn density(&self) -> f64 {
        self.len() as f64 / self.cross_product_size().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::dimension::Dimension;
    use statcube_core::measure::{MeasureKind, SummaryAttribute};
    use statcube_core::schema::Schema;

    #[test]
    fn push_validates() {
        let mut f = FactInput::new(&[2, 3]).unwrap();
        f.push(&[0, 2], 1.0).unwrap();
        assert!(f.push(&[0], 1.0).is_err());
        assert!(f.push(&[2, 0], 1.0).is_err());
        assert_eq!(f.len(), 1);
        assert_eq!(f.dim(1), &[2]);
        assert_eq!(f.coords(0), vec![0, 2]);
    }

    #[test]
    fn construction_limits() {
        assert!(FactInput::new(&[]).is_err());
        assert!(FactInput::new(&[2, 0]).is_err());
        assert!(FactInput::new(&[2; 17]).is_err());
        assert!(FactInput::new(&[2; 16]).is_ok());
    }

    #[test]
    fn partition_ranges_cover_exactly() {
        let mut f = FactInput::new(&[2]).unwrap();
        for i in 0..10 {
            f.push(&[i % 2], 1.0).unwrap();
        }
        for parts in [1, 2, 3, 7, 10, 15, 100] {
            let ranges = f.partition_ranges(parts);
            assert!(ranges.len() <= parts.min(10));
            assert!(ranges.iter().all(|r| !r.is_empty()));
            // Contiguous cover of 0..10.
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, 10);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
        assert_eq!(f.partition_ranges(0), f.partition_ranges(1));
        assert!(FactInput::new(&[2]).unwrap().partition_ranges(4).is_empty());
    }

    #[test]
    fn from_object() {
        let schema = Schema::builder("t")
            .dimension(Dimension::categorical("a", ["x", "y"]))
            .dimension(Dimension::categorical("b", ["p", "q"]))
            .measure(SummaryAttribute::new("m", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["x", "q"], 3.0).unwrap();
        o.insert(&["y", "p"], 4.0).unwrap();
        let f = FactInput::from_object(&o).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.cards(), &[2, 2]);
        assert_eq!(f.cross_product_size(), 4);
        assert!((f.density() - 0.5).abs() < 1e-12);
    }
}
