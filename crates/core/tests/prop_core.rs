//! Property tests on the core model: dictionaries, hierarchies, aggregation
//! states, and 2-D table marginals.

use proptest::prelude::*;

use statcube_core::dictionary::Dictionary;
use statcube_core::dimension::Dimension;
use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::{AggState, MeasureKind, SummaryAttribute, SummaryFunction};
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;
use statcube_core::stats::{percentile, trimmed_mean, Welford};
use statcube_core::table2d::Table2D;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dictionary_ids_are_dense_and_stable(values in proptest::collection::vec("[a-z]{1,6}", 0..60)) {
        let mut d = Dictionary::new();
        let ids: Vec<u32> = values.iter().map(|v| d.intern(v)).collect();
        // Ids are dense 0..len.
        prop_assert!(d.len() <= values.len());
        for (v, id) in values.iter().zip(&ids) {
            prop_assert_eq!(d.id_of(v), Some(*id));
            prop_assert_eq!(d.value_of(*id), Some(v.as_str()));
        }
        // Re-interning never changes an id.
        for (v, id) in values.iter().zip(&ids) {
            prop_assert_eq!(d.intern(v), *id);
        }
    }

    #[test]
    fn hierarchy_parents_and_children_are_inverse(
        edges in proptest::collection::vec((0u8..20, 0u8..5), 1..60)
    ) {
        let mut b = Hierarchy::builder("h").level("leaf").level("top");
        for (c, p) in &edges {
            b = b.edge(&format!("c{c}"), &format!("p{p}"));
        }
        let h = b.build().unwrap();
        prop_assert!(h.validate().is_ok());
        for leaf in 0..h.leaf().members().len() as u32 {
            for &parent in h.parents(0, leaf) {
                prop_assert!(h.children(1, parent).contains(&leaf));
            }
        }
        for parent in 0..h.level(1).members().len() as u32 {
            for child in h.children(1, parent) {
                prop_assert!(h.parents(0, child).contains(&parent));
            }
        }
        // Strictness holds iff no leaf has 2+ parents.
        let any_multi = (0..h.leaf().members().len() as u32)
            .any(|l| h.parents(0, l).len() > 1);
        prop_assert_eq!(h.is_strict(), !any_multi);
    }

    #[test]
    fn agg_state_merge_matches_direct_computation(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut acc = AggState::EMPTY;
        for &v in &values {
            acc.merge(&AggState::from_value(v));
        }
        let sum: f64 = values.iter().sum();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((acc.value(SummaryFunction::Sum).unwrap() - sum).abs() < 1e-6);
        prop_assert_eq!(acc.value(SummaryFunction::Count), Some(values.len() as f64));
        prop_assert_eq!(acc.value(SummaryFunction::Min), Some(min));
        prop_assert_eq!(acc.value(SummaryFunction::Max), Some(max));
        let avg = acc.value(SummaryFunction::Avg).unwrap();
        prop_assert!((avg - sum / values.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn table2d_marginals_always_consistent(
        cells in proptest::collection::vec((0u32..4, 0u32..3, 0u32..3, -100i64..100), 0..80)
    ) {
        let schema = Schema::builder("t")
            .dimension(Dimension::categorical("a", ["a0", "a1", "a2", "a3"]))
            .dimension(Dimension::categorical("b", ["b0", "b1", "b2"]))
            .dimension(Dimension::categorical("c", ["c0", "c1", "c2"]))
            .measure(SummaryAttribute::new("m", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        for (a, b, c, v) in &cells {
            o.insert_ids(&[*a, *b, *c], &[*v as f64]).unwrap();
        }
        let t = Table2D::layout(&o, &["a", "b"], &["c"]).unwrap();
        prop_assert!(t.marginals_consistent());
        // Attribute split/merge preserves marginal consistency and totals.
        let t2 = t.move_to_rows("c").unwrap().move_to_cols("b").unwrap();
        prop_assert!(t2.marginals_consistent());
        prop_assert_eq!(t.grand_total(), t2.grand_total());
    }

    #[test]
    fn welford_is_translation_invariant(values in proptest::collection::vec(-1e3f64..1e3, 2..60), shift in -1e3f64..1e3) {
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &v in &values {
            a.push(v);
            b.push(v + shift);
        }
        // Variance is invariant under translation; mean shifts by `shift`.
        prop_assert!((a.variance_sample().unwrap() - b.variance_sample().unwrap()).abs() < 1e-6);
        prop_assert!((b.mean().unwrap() - a.mean().unwrap() - shift).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(values in proptest::collection::vec(-1e3f64..1e3, 1..60)) {
        let p25 = percentile(&values, 25.0).unwrap();
        let p50 = percentile(&values, 50.0).unwrap();
        let p75 = percentile(&values, 75.0).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p75);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p25 >= min && p75 <= max);
        // Trimmed mean lies within [min, max] too.
        if let Some(tm) = trimmed_mean(&values, 0.1) {
            prop_assert!(tm >= min - 1e-9 && tm <= max + 1e-9);
        }
    }

    #[test]
    fn truncate_below_preserves_upper_structure(
        edges in proptest::collection::vec((0u8..12, 0u8..4, 0u8..2), 1..40)
    ) {
        // Three levels: leaf -> mid -> top.
        let mut b = Hierarchy::builder("h").level("leaf").level("mid");
        for (l, m, _) in &edges {
            b = b.edge(&format!("l{l}"), &format!("m{m}"));
        }
        b = b.level("top");
        for (_, m, t) in &edges {
            b = b.edge_at(1, &format!("m{m}"), &format!("t{t}"));
        }
        let h = b.build().unwrap();
        let truncated = h.truncate_below(1);
        prop_assert_eq!(truncated.level_count(), 2);
        prop_assert_eq!(truncated.leaf().name(), "mid");
        for m in 0..h.level(1).members().len() as u32 {
            prop_assert_eq!(h.parents(1, m), truncated.parents(0, m));
        }
    }
}
