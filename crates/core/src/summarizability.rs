//! Summarizability checking (§3.3.2, \[LS97\], \[RS90\]).
//!
//! The paper stresses that OLAP literature "largely ignored" the conditions
//! under which aggregation produces correct results, while in the SDB
//! literature it is a major issue. Three independent conditions are checked
//! before any aggregation:
//!
//! 1. **Strictness** — a classification member with several parents (the
//!    physician-with-multiple-specialties example) breaks every
//!    duplicate-sensitive function (`Sum`, `Count`, `Avg`).
//! 2. **Completeness** — children that do not account for the whole parent
//!    (cities vs. state population) make derived parent totals wrong; a
//!    member with *no* parent would silently vanish.
//! 3. **Type compatibility** — stock measures do not add over time
//!    ("meaningless to add populations over months"), and value-per-unit
//!    measures do not add over anything.
//!
//! Checks return *all* violations, not just the first, so callers can report
//! everything wrong with a query at once.

use crate::dimension::DimensionRole;
use crate::error::Violation;
use crate::hierarchy::Hierarchy;
use crate::measure::{MeasureKind, SummaryFunction};
use crate::schema::Schema;

/// Checks whether summarizing measure-kind `kind` with `function` *over*
/// (i.e. collapsing) a dimension of `role` is meaningful.
pub fn check_type(
    measure: &str,
    kind: MeasureKind,
    function: SummaryFunction,
    dimension: &str,
    role: DimensionRole,
) -> Option<Violation> {
    match (kind, function) {
        (MeasureKind::ValuePerUnit, SummaryFunction::Sum) => Some(Violation::NonAdditiveMeasure {
            measure: measure.to_owned(),
            dimension: dimension.to_owned(),
        }),
        (MeasureKind::Stock, SummaryFunction::Sum) if role == DimensionRole::Temporal => {
            Some(Violation::TemporalStock {
                measure: measure.to_owned(),
                dimension: dimension.to_owned(),
            })
        }
        _ => None,
    }
}

/// Checks all measures of `schema` for collapsing dimension `dim_idx`
/// entirely (the `S-projection` / summarize-over-all case).
pub fn check_project(schema: &Schema, dim_idx: usize) -> Vec<Violation> {
    let dim = &schema.dimensions()[dim_idx];
    let mut out = Vec::new();
    for (i, m) in schema.measures().iter().enumerate() {
        if let Some(v) = check_type(m.name(), m.kind(), schema.function(i), dim.name(), dim.role())
        {
            out.push(v);
        }
    }
    out
}

/// Checks rolling dimension `dim_idx` up through `hierarchy` to `to_level`
/// (the `S-aggregation` / roll-up case): type compatibility plus the
/// structural conditions on every edge set being collapsed.
pub fn check_aggregate(
    schema: &Schema,
    dim_idx: usize,
    hierarchy: &Hierarchy,
    to_level: usize,
) -> Vec<Violation> {
    let dim = &schema.dimensions()[dim_idx];
    let mut out = check_project(schema, dim_idx);
    let any_duplicate_sensitive = schema.functions().iter().any(|f| f.is_duplicate_sensitive());
    for level in 0..to_level {
        if any_duplicate_sensitive {
            if let Some(w) = hierarchy.strictness_witness(level) {
                out.push(Violation::NonStrictHierarchy {
                    dimension: dim.name().to_owned(),
                    level: hierarchy.level(level).name().to_owned(),
                    member: hierarchy.level(level).members().value_of(w).unwrap_or("?").to_owned(),
                });
            }
        }
        if let Some(w) = hierarchy.coverage_witness(level) {
            out.push(Violation::UncoveredMember {
                dimension: dim.name().to_owned(),
                level: hierarchy.level(level).name().to_owned(),
                member: hierarchy.level(level).members().value_of(w).unwrap_or("?").to_owned(),
            });
        }
        if !hierarchy.is_declared_complete_at(level) {
            out.push(Violation::IncompleteHierarchy {
                dimension: dim.name().to_owned(),
                level: hierarchy.level(level).name().to_owned(),
            });
        }
    }
    out
}

/// A one-line verdict for reporting tables (experiment E04).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Aggregation is safe.
    Summarizable,
    /// Aggregation would be wrong, for these reasons.
    NotSummarizable(Vec<Violation>),
}

impl Verdict {
    /// Builds a verdict from a violation list.
    pub fn from_violations(vs: Vec<Violation>) -> Self {
        if vs.is_empty() {
            Verdict::Summarizable
        } else {
            Verdict::NotSummarizable(vs)
        }
    }

    /// True if summarizable.
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Summarizable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::SummaryAttribute;
    use crate::schema::Schema;

    fn schema_with(kind: MeasureKind, f: SummaryFunction) -> Schema {
        Schema::builder("t")
            .dimension(Dimension::temporal("month", ["jan", "feb"]))
            .dimension(Dimension::spatial("state", ["AL", "CA"]))
            .measure(SummaryAttribute::new("m", kind))
            .function(f)
            .build()
            .unwrap()
    }

    #[test]
    fn stock_over_time_is_rejected() {
        let s = schema_with(MeasureKind::Stock, SummaryFunction::Sum);
        let vs = check_project(&s, 0);
        assert_eq!(vs.len(), 1);
        assert!(matches!(vs[0], Violation::TemporalStock { .. }));
        // ... but over space it is fine.
        assert!(check_project(&s, 1).is_empty());
    }

    #[test]
    fn flow_over_time_is_fine() {
        // "it makes sense to add accident counts over time" (§3.3.2)
        let s = schema_with(MeasureKind::Flow, SummaryFunction::Sum);
        assert!(check_project(&s, 0).is_empty());
    }

    #[test]
    fn stock_avg_over_time_is_fine() {
        let s = schema_with(MeasureKind::Stock, SummaryFunction::Avg);
        assert!(check_project(&s, 0).is_empty());
    }

    #[test]
    fn value_per_unit_never_sums() {
        let s = schema_with(MeasureKind::ValuePerUnit, SummaryFunction::Sum);
        assert!(!check_project(&s, 0).is_empty());
        assert!(!check_project(&s, 1).is_empty());
        let avg = schema_with(MeasureKind::ValuePerUnit, SummaryFunction::Avg);
        assert!(check_project(&avg, 0).is_empty());
    }

    fn nonstrict() -> Hierarchy {
        Hierarchy::builder("disease")
            .level("disease")
            .level("category")
            .edge("lung cancer", "cancer")
            .edge("lung cancer", "respiratory")
            .edge("flu", "respiratory")
            .build()
            .unwrap()
    }

    #[test]
    fn non_strict_breaks_sum_but_not_max() {
        let h = nonstrict();
        let sum_schema = Schema::builder("t")
            .dimension(Dimension::classified("disease", h.clone()))
            .measure(SummaryAttribute::new("cost", MeasureKind::Flow))
            .function(SummaryFunction::Sum)
            .build()
            .unwrap();
        let vs = check_aggregate(&sum_schema, 0, &h, 1);
        assert!(vs.iter().any(|v| matches!(v, Violation::NonStrictHierarchy { .. })));

        let max_schema = Schema::builder("t")
            .dimension(Dimension::classified("disease", h.clone()))
            .measure(SummaryAttribute::new("cost", MeasureKind::Flow))
            .function(SummaryFunction::Max)
            .build()
            .unwrap();
        let vs = check_aggregate(&max_schema, 0, &h, 1);
        assert!(vs.is_empty(), "max is duplicate-insensitive: {vs:?}");
    }

    #[test]
    fn incomplete_and_uncovered_reported() {
        let h = Hierarchy::builder("geo")
            .level("city")
            .member("nowhere") // interned with no parent
            .level("state")
            .edge("fresno", "california")
            .declare_incomplete()
            .build()
            .unwrap();
        let s = Schema::builder("t")
            .dimension(Dimension::classified("geo", h.clone()))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .build()
            .unwrap();
        let vs = check_aggregate(&s, 0, &h, 1);
        assert!(vs.iter().any(|v| matches!(v, Violation::IncompleteHierarchy { .. })));
        assert!(vs.iter().any(|v| matches!(v, Violation::UncoveredMember { .. })));
    }

    #[test]
    fn verdict_round_trip() {
        assert!(Verdict::from_violations(vec![]).is_ok());
        let v = Verdict::from_violations(vec![Violation::TemporalStock {
            measure: "m".into(),
            dimension: "d".into(),
        }]);
        assert!(!v.is_ok());
    }

    #[test]
    fn aggregate_to_level_zero_checks_nothing_structural() {
        let h = nonstrict();
        let s = Schema::builder("t")
            .dimension(Dimension::classified("disease", h.clone()))
            .measure(SummaryAttribute::new("cost", MeasureKind::Flow))
            .build()
            .unwrap();
        assert!(check_aggregate(&s, 0, &h, 0).is_empty());
    }
}
