//! Query-profile observability: timed spans, a named metrics registry, and
//! `EXPLAIN ANALYZE`-style profile trees.
//!
//! Every cost claim this reproduction makes — §6's "who scans fewer pages",
//! §6.3's "who answers from a smaller ancestor" — is settled by *measuring
//! per-stage work*, which is exactly how \[GB+96\] (MSR-TR-97-32) and the
//! MOLAP/ROLAP literature frame the tradeoffs. This module is the shared
//! instrumentation substrate the storage, cube, and sql layers thread their
//! measurements through:
//!
//! * **Spans** ([`span`]) — monotonic-clock timed, named units of work that
//!   nest into a tree via a thread-local stack. A finished tree is drained
//!   with [`take_profile`] into a [`QueryProfile`] that renders like
//!   `EXPLAIN ANALYZE` output. Work measured on a worker thread is grafted
//!   in with [`record_complete`].
//! * **Counters and histograms** ([`counter`], [`observe`]) — a global
//!   registry of named monotonic counters and log₂-bucket histograms,
//!   snapshotted with [`snapshot`] into a [`MetricsSnapshot`] the bench
//!   harness prints.
//!
//! ## Overhead budget
//!
//! Tracing is **disabled by default** and every entry point checks one
//! relaxed atomic load first. When disabled, [`span`] returns a no-op guard
//! without allocating, [`counter`]/[`observe`] return immediately, and no
//! lock is touched — the overhead on a hot loop is a predictable branch
//! (< 2% on the exp22 speedup curve is the budget, met by charging probes
//! per query stage, never per row; ci.sh prints a smoke profile so
//! regressions are visible). When enabled, span records go
//! to a *thread-local* buffer (no cross-thread contention; concurrent tests
//! cannot steal each other's spans) and metric updates take one global
//! mutex (experiments-grade, not production-contention-grade).
//!
//! ## Adding a counter
//!
//! Pick a dotted lowercase name rooted in the owning layer
//! (`storage.pages_read`, `cube.cells_aggregated`, `sql.queries`) and call
//! `trace::counter(name, delta)` at the charge site; nothing is declared up
//! front. Histograms work the same way through `trace::observe`.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};
use std::time::{Duration, Instant};

/// Global on/off switch. Relaxed loads are sufficient: the flag only gates
/// *observability*, never correctness, and a racing enable/disable merely
/// gains or loses a span at the boundary.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic span-id source, shared by every thread so ids are unique and
/// creation-ordered across the whole process.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Hard cap on buffered span records per thread: tracing left enabled
/// without a consumer must not grow memory without bound. Overflow is
/// counted and reported in the next drained profile.
const MAX_RECORDS: usize = 1 << 16;

thread_local! {
    /// Innermost open span of this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Finished spans awaiting [`take_profile`].
    static RECORDS: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
    /// Spans discarded because the buffer was full.
    static DROPPED: Cell<u64> = const { Cell::new(0) };
}

/// Turns tracing on (spans recorded, counters charged).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing off; open spans finish as no-ops worth keeping (they were
/// started enabled, so they still record on drop) and new ones cost one
/// branch.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether tracing is currently enabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the calling thread currently has no open span — i.e. a span
/// created now would be a root. Callers that attach a [`QueryProfile`] to
/// their result use this to decide *before* delegating to a layer that
/// opens its own spans.
#[inline]
pub fn at_root() -> bool {
    CURRENT.with(Cell::get) == 0
}

/// One finished span, as buffered thread-locally before a profile drain.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique creation-ordered id.
    pub id: u64,
    /// Id of the enclosing span at creation time (0 = root).
    pub parent: u64,
    /// Static span name (`layer.operation` convention).
    pub name: &'static str,
    /// Monotonic wall time between creation and drop.
    pub elapsed: Duration,
    /// Numeric annotations (`pages`, `cells`, `retries`, …).
    pub fields: Vec<(&'static str, u64)>,
    /// Free-form annotation (fallback provenance and the like).
    pub note: Option<String>,
}

fn push_record(record: SpanRecord) {
    RECORDS.with(|r| {
        let mut r = r.borrow_mut();
        if r.len() >= MAX_RECORDS {
            DROPPED.with(|d| d.set(d.get() + 1));
        } else {
            r.push(record);
        }
    });
}

/// RAII guard for one timed unit of work. Created by [`span`]; records
/// itself into the thread-local buffer on drop. When tracing is disabled
/// the guard is inert and allocation-free.
#[derive(Debug)]
#[must_use = "a span measures the scope it is held for"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, u64)>,
    note: Option<String>,
}

/// Opens a span named `name` under the thread's current span (root if
/// none). Returns an inert guard when tracing is disabled.
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| {
        let p = c.get();
        c.set(id);
        p
    });
    Span {
        inner: Some(SpanInner {
            id,
            parent,
            name,
            start: Instant::now(),
            fields: Vec::new(),
            note: None,
        }),
    }
}

impl Span {
    /// Whether this guard is live (tracing was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this span has no enclosing span (it will be a profile root).
    /// Always `false` for an inert guard.
    pub fn is_root(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.parent == 0)
    }

    /// Sets field `key` to `value` (overwrites an existing key).
    pub fn record(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            match inner.fields.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v = value,
                None => inner.fields.push((key, value)),
            }
        }
    }

    /// Adds `delta` to field `key` (starting from 0).
    pub fn add(&mut self, key: &'static str, delta: u64) {
        if let Some(inner) = &mut self.inner {
            match inner.fields.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v += delta,
                None => inner.fields.push((key, delta)),
            }
        }
    }

    /// Attaches a free-form note (e.g. degraded-fallback provenance).
    pub fn note(&mut self, note: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            inner.note = Some(note.into());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let elapsed = inner.start.elapsed();
        CURRENT.with(|c| c.set(inner.parent));
        push_record(SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            elapsed,
            fields: inner.fields,
            note: inner.note,
        });
    }
}

/// Grafts an already-measured unit of work (typically timed on a worker
/// thread, like one cuboid derivation of the parallel engine) into the
/// profile as a completed child of the current span.
pub fn record_complete(name: &'static str, elapsed: Duration, fields: &[(&'static str, u64)]) {
    if !is_enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(Cell::get);
    push_record(SpanRecord { id, parent, name, elapsed, fields: fields.to_vec(), note: None });
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

/// One node of a rendered profile tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    /// Span name.
    pub name: String,
    /// Wall time the span covered.
    pub elapsed: Duration,
    /// Numeric annotations in recording order.
    pub fields: Vec<(String, u64)>,
    /// Free-form annotation, if any.
    pub note: Option<String>,
    /// Child spans in creation order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// The value of field `key`, if recorded.
    pub fn field(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a ProfileNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// An `EXPLAIN ANALYZE`-style span tree for one (or more) top-level units
/// of work, drained from the calling thread by [`take_profile`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Top-level spans in creation order.
    pub roots: Vec<ProfileNode>,
    /// Spans lost to the per-thread buffer cap since the last drain.
    pub spans_dropped: u64,
}

impl QueryProfile {
    /// Total number of spans in the profile.
    pub fn span_count(&self) -> usize {
        let mut n = 0;
        self.each(&mut |_| n += 1);
        n
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        let mut found = None;
        self.each(&mut |n| {
            if found.is_none() && n.name == name {
                found = Some(n);
            }
        });
        found
    }

    /// Sum of `elapsed` over every span named `name`.
    pub fn total_elapsed(&self, name: &str) -> Duration {
        let mut total = Duration::ZERO;
        self.each(&mut |n| {
            if n.name == name {
                total += n.elapsed;
            }
        });
        total
    }

    /// Sum of field `key` over every span in the tree.
    pub fn field_total(&self, key: &str) -> u64 {
        let mut total = 0;
        self.each(&mut |n| total += n.field(key).unwrap_or(0));
        total
    }

    /// Visits every node depth-first.
    pub fn each<'a>(&'a self, f: &mut impl FnMut(&'a ProfileNode)) {
        for r in &self.roots {
            r.visit(f);
        }
    }

    /// Renders the tree, `EXPLAIN ANALYZE` style.
    pub fn render(&self) -> String {
        fn fmt_dur(d: Duration) -> String {
            let us = d.as_micros();
            if us >= 1_000_000 {
                format!("{:.2}s", d.as_secs_f64())
            } else if us >= 1_000 {
                format!("{:.2}ms", us as f64 / 1000.0)
            } else {
                format!("{us}µs")
            }
        }
        fn line(node: &ProfileNode, prefix: &str, last: bool, top: bool, out: &mut String) {
            let branch = if top {
                String::new()
            } else {
                format!("{prefix}{}", if last { "└─ " } else { "├─ " })
            };
            let _ = write!(
                out,
                "{branch}{:<w$} {:>9}",
                node.name,
                fmt_dur(node.elapsed),
                w = 46usize.saturating_sub(branch.chars().count())
            );
            for (k, v) in &node.fields {
                let _ = write!(out, "  {k}={v}");
            }
            if let Some(n) = &node.note {
                let _ = write!(out, "  [{n}]");
            }
            let _ = writeln!(out);
            let child_prefix = if top {
                String::new()
            } else {
                format!("{prefix}{}", if last { "   " } else { "│  " })
            };
            for (i, c) in node.children.iter().enumerate() {
                line(c, &child_prefix, i + 1 == node.children.len(), false, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            line(r, "", true, true, &mut out);
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(out, "({} spans dropped at the buffer cap)", self.spans_dropped);
        }
        out
    }
}

/// Drains the calling thread's finished spans into a [`QueryProfile`].
///
/// Records whose parent is still open (or was drained earlier) become
/// roots; children keep creation order. The typical pattern is: open a
/// root span, do the work, drop the guard, then call `take_profile`.
pub fn take_profile() -> QueryProfile {
    let records = RECORDS.with(|r| std::mem::take(&mut *r.borrow_mut()));
    let spans_dropped = DROPPED.with(|d| d.replace(0));
    let mut by_id: BTreeMap<u64, ProfileNode> = BTreeMap::new();
    let mut parent_of: BTreeMap<u64, u64> = BTreeMap::new();
    for rec in &records {
        parent_of.insert(rec.id, rec.parent);
        by_id.insert(
            rec.id,
            ProfileNode {
                name: rec.name.to_owned(),
                elapsed: rec.elapsed,
                fields: rec.fields.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
                note: rec.note.clone(),
                children: Vec::new(),
            },
        );
    }
    // Attach children to parents from the highest id down: a node's
    // children always have larger ids than it, so each node is complete
    // (subtree fully built) before it is attached to its own parent.
    let ids: Vec<u64> = by_id.keys().copied().collect();
    let mut roots = Vec::new();
    for &id in ids.iter().rev() {
        let parent = parent_of[&id];
        if parent != 0 && by_id.contains_key(&parent) {
            let node = by_id.remove(&id).expect("id present");
            by_id.get_mut(&parent).expect("parent present").children.push(node);
        }
    }
    // Children were pushed in descending id order; restore creation order.
    for node in by_id.values_mut() {
        fn reverse_children(n: &mut ProfileNode) {
            n.children.reverse();
            for c in &mut n.children {
                reverse_children(c);
            }
        }
        reverse_children(node);
    }
    for (_, node) in by_id {
        roots.push(node);
    }
    QueryProfile { roots, spans_dropped }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A log₂-bucket histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (meaningless when `count == 0`).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `buckets[i]` counts observations with `bit_length(v) == i`
    /// (bucket 0 holds zeros, bucket i holds `[2^(i-1), 2^i)`).
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 65] }
    }
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }

    /// Records one observation. Public counterpart of the registry's
    /// internal path, for histograms assembled outside the registry (e.g.
    /// per-run latency distributions in benchmarks).
    pub fn record(&mut self, v: u64) {
        self.observe(v);
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` (clamped to `[0, 1]`): the upper bound of
    /// the log₂ bucket holding the `⌈q·count⌉`-th smallest observation,
    /// clamped to the observed `[min, max]`. Bucket resolution bounds the
    /// error at 2× — adequate for the p50/p95 regression gating these
    /// histograms exist for. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let hi = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

static REGISTRY: LazyLock<Mutex<Registry>> = LazyLock::new(|| Mutex::new(Registry::default()));

fn with_registry(f: impl FnOnce(&mut Registry)) {
    // A poisoned registry (a panic while holding the lock) only ever holds
    // counters; recover the data rather than propagating the poison.
    let mut guard = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    f(&mut guard);
}

/// Adds `delta` to counter `name`. No-op when tracing is disabled.
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    with_registry(|r| match r.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            r.counters.insert(name.to_owned(), delta);
        }
    });
}

/// Records `value` into histogram `name`. No-op when tracing is disabled.
pub fn observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    with_registry(|r| r.histograms.entry(name.to_owned()).or_default().observe(value));
}

/// A point-in-time copy of the metrics registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The value of counter `name` (0 if never charged).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter values whose name starts with `prefix`, name-sorted.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
            .collect()
    }

    /// Renders the snapshot as an aligned name/value listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.counters.keys().map(String::len).max().unwrap_or(0);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<width$}  count={} mean={:.1} min={} max={}",
                h.count,
                h.mean(),
                if h.count == 0 { 0 } else { h.min },
                h.max,
            );
        }
        out
    }
}

/// Copies the current metrics registry.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    with_registry(|r| {
        snap.counters = r.counters.clone();
        snap.histograms = r.histograms.clone();
    });
    snap
}

/// Zeroes every counter and histogram (process-wide).
pub fn reset_metrics() {
    with_registry(|r| {
        r.counters.clear();
        r.histograms.clear();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the enable/disable-manipulating tests in this module so
    /// they don't flip the global flag under each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _l = locked();
        disable();
        let mut s = span("x");
        assert!(!s.is_recording());
        assert!(!s.is_root());
        s.record("k", 1);
        drop(s);
        assert_eq!(take_profile().span_count(), 0);
    }

    #[test]
    fn span_tree_nests_and_orders() {
        let _l = locked();
        enable();
        let _ = take_profile(); // drain anything stale on this thread
        {
            let mut root = span("root");
            root.record("cells", 7);
            {
                let _a = span("a");
                record_complete("a1", Duration::from_micros(5), &[("w", 1)]);
                record_complete("a2", Duration::from_micros(6), &[]);
            }
            let mut b = span("b");
            b.note("fallback 0b11 -> 0b111");
            drop(b);
        }
        disable();
        let p = take_profile();
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.field("cells"), Some(7));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "a");
        assert_eq!(
            root.children[0].children.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            vec!["a1", "a2"],
        );
        assert_eq!(root.children[1].note.as_deref(), Some("fallback 0b11 -> 0b111"));
        assert_eq!(p.span_count(), 5);
        assert_eq!(p.field_total("w"), 1);
        let rendered = p.render();
        assert!(rendered.contains("root"));
        assert!(rendered.contains("└─ b"));
        assert!(rendered.contains("[fallback 0b11 -> 0b111]"));
    }

    #[test]
    fn profile_drain_is_per_thread() {
        let _l = locked();
        enable();
        let _ = take_profile();
        drop(span("mine"));
        let other = std::thread::spawn(|| {
            drop(span("theirs"));
            take_profile().span_count()
        })
        .join()
        .expect("worker");
        disable();
        assert_eq!(other, 1);
        let p = take_profile();
        assert_eq!(p.span_count(), 1);
        assert_eq!(p.roots[0].name, "mine");
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let _l = locked();
        enable();
        let base = snapshot().counter("test.trace.counter");
        counter("test.trace.counter", 3);
        counter("test.trace.counter", 4);
        observe("test.trace.hist", 0);
        observe("test.trace.hist", 9);
        let snap = snapshot();
        disable();
        assert_eq!(snap.counter("test.trace.counter") - base, 7);
        let h = &snap.histograms["test.trace.hist"];
        assert!(h.count >= 2);
        assert!(h.buckets[0] >= 1, "zero lands in bucket 0");
        assert!(h.buckets[4] >= 1, "9 lands in bucket 4 ([8,16))");
        assert!(snap.render().contains("test.trace.counter"));
        assert!(!snap.counters_with_prefix("test.trace.").is_empty());
    }

    #[test]
    fn disabled_counters_do_not_charge() {
        let _l = locked();
        disable();
        let before = snapshot().counter("test.trace.disabled");
        counter("test.trace.disabled", 100);
        assert_eq!(snapshot().counter("test.trace.disabled"), before);
    }

    #[test]
    fn record_overwrites_add_accumulates() {
        let _l = locked();
        enable();
        let _ = take_profile();
        {
            let mut s = span("fields");
            s.record("k", 1);
            s.record("k", 2);
            s.add("d", 3);
            s.add("d", 4);
        }
        disable();
        let p = take_profile();
        let n = p.find("fields").expect("span recorded");
        assert_eq!(n.field("k"), Some(2));
        assert_eq!(n.field("d"), Some(7));
        assert!(p.find("missing").is_none());
    }

    #[test]
    fn open_parent_makes_children_roots() {
        let _l = locked();
        enable();
        let _ = take_profile();
        let outer = span("still-open");
        drop(span("closed-child"));
        let p = take_profile();
        disable();
        assert_eq!(p.roots.len(), 1, "only the closed child was drained");
        assert_eq!(p.roots[0].name, "closed-child");
        drop(outer);
        let _ = take_profile(); // clean up the outer record
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.observe(2);
        h.observe(6);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 8);
        assert_eq!(h.min, 2);
        assert_eq!(h.max, 6);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.buckets[2], 1); // 2 in [2,4)
        assert_eq!(h.buckets[3], 1); // 6 in [4,8)
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 95 observations near 100, 5 near 5000: p50 in the low bucket,
        // p95+ in the high one, everything clamped to [min, max].
        for _ in 0..95 {
            h.record(100);
        }
        for _ in 0..5 {
            h.record(5000);
        }
        let p50 = h.quantile(0.5);
        assert!((100..200).contains(&p50), "p50={p50} should sit in 100's bucket");
        assert_eq!(h.quantile(0.99), 5000, "clamped to max");
        assert_eq!(h.quantile(1.0), 5000);
        let p0 = h.quantile(0.0);
        assert!((100..200).contains(&p0), "rank floors at the first observation's bucket");
        assert_eq!(h.quantile(-1.0), h.quantile(0.0), "q clamps");
        // Zeros land in bucket 0 and quantile 0 stays 0.
        let mut z = Histogram::default();
        z.record(0);
        z.record(0);
        assert_eq!(z.quantile(0.5), 0);
        // The 2^63.. bucket caps at u64::MAX, clamped to the observed max.
        let mut big = Histogram::default();
        big.record(u64::MAX - 3);
        assert_eq!(big.quantile(0.5), u64::MAX - 3);
    }
}
