//! Dictionary encoding of category values.
//!
//! Every category attribute (dimension level) has a finite set of *category
//! values* ("male", "civil engineer", "Alabama", …). The engine never carries
//! those strings through the hot paths; each level maintains a [`Dictionary`]
//! that interns values to dense `u32` ids, mirroring the encoding step of
//! paper Fig. 19 (\[WL+85\]).

use std::collections::HashMap;

/// A dense, insertion-ordered mapping between category-value strings and
/// `u32` ids.
///
/// Ids are assigned `0, 1, 2, …` in insertion order, so they double as array
/// indices everywhere (hierarchy edge tables, linearized arrays, bit-packed
/// columns).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary pre-populated with `values`, in order.
    /// Duplicate values collapse to the first occurrence.
    pub fn from_values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut d = Self::new();
        for v in values {
            d.intern(v.as_ref());
        }
        d
    }

    /// Returns the id of `value`, interning it if not yet present.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), id);
        id
    }

    /// Returns the id of `value` if it has been interned.
    pub fn id_of(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Returns the value for `id`, or `None` if out of range.
    pub fn value_of(&self, id: u32) -> Option<&str> {
        self.values.get(id as usize).map(String::as_str)
    }

    /// Number of distinct values (the *cardinality* of the category
    /// attribute).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str()))
    }

    /// All values in id order.
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(String::as_str)
    }

    /// Number of bits needed to encode any id of this dictionary
    /// (`ceil(log2(len))`, minimum 1) — the code width of Fig. 19.
    pub fn code_bits(&self) -> u32 {
        let n = self.values.len().max(1) as u64;
        if n <= 1 {
            1
        } else {
            64 - (n - 1).leading_zeros()
        }
    }

    /// True if both dictionaries contain the same values in the same order
    /// (so ids are interchangeable).
    pub fn same_coding(&self, other: &Dictionary) -> bool {
        self.values == other.values
    }
}

impl<S: AsRef<str>> FromIterator<S> for Dictionary {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Self::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("male");
        let b = d.intern("female");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(d.intern("male"), 0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_round_trips() {
        let d = Dictionary::from_values(["white", "black", "asian"]);
        for (id, v) in d.iter() {
            assert_eq!(d.id_of(v), Some(id));
            assert_eq!(d.value_of(id), Some(v));
        }
        assert_eq!(d.id_of("martian"), None);
        assert_eq!(d.value_of(99), None);
    }

    #[test]
    fn from_values_collapses_duplicates() {
        let d = Dictionary::from_values(["a", "b", "a", "c", "b"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.id_of("c"), Some(2));
    }

    #[test]
    fn code_bits_matches_cardinality() {
        assert_eq!(Dictionary::from_values(["x"]).code_bits(), 1);
        assert_eq!(Dictionary::from_values(["m", "f"]).code_bits(), 1);
        assert_eq!(Dictionary::from_values(["a", "b", "c"]).code_bits(), 2);
        assert_eq!(Dictionary::from_values((0..8).map(|i| i.to_string())).code_bits(), 3);
        assert_eq!(Dictionary::from_values((0..9).map(|i| i.to_string())).code_bits(), 4);
        // 50 states fit in 6 bits, as in the paper's encoding example.
        assert_eq!(Dictionary::from_values((0..50).map(|i| i.to_string())).code_bits(), 6);
    }

    #[test]
    fn same_coding_requires_order() {
        let a = Dictionary::from_values(["x", "y"]);
        let b = Dictionary::from_values(["y", "x"]);
        let c = Dictionary::from_values(["x", "y"]);
        assert!(!a.same_coding(&b));
        assert!(a.same_coding(&c));
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.code_bits(), 1);
    }
}
