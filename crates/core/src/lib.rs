//! # statcube-core
//!
//! The **Statistical Object** data type of Shoshani, *"OLAP and Statistical
//! Databases: Similarities and Differences"* (PODS 1997) — the paper's
//! conclusion argues this type should be supported natively by extensible
//! database systems, and this crate is that implementation.
//!
//! A statistical object (SDB term; OLAP: *data cube* / fact table) is:
//!
//! * one or more **summary measures** ([`measure::SummaryAttribute`]) with
//!   **summary functions** ([`measure::SummaryFunction`]),
//! * a set of **dimensions** ([`dimension::Dimension`]; SDB: *category
//!   attributes*),
//! * zero or more **classification hierarchies**
//!   ([`hierarchy::Hierarchy`]; OLAP: *dimension hierarchies*), and
//! * the macro-data cells over the cross product
//!   ([`object::StatisticalObject`]).
//!
//! On top of the model sit the operator algebra ([`ops`]), summarizability
//! enforcement ([`summarizability`]), STORM schema graphs
//! ([`schema_graph`]), automatic aggregation ([`auto_agg`]), 2-D statistical
//! tables with marginals ([`table2d`]), micro-data summarization and the
//! completeness homomorphism ([`microdata`]), classification matching
//! ([`matching`]), and higher-level statistics ([`stats`]).

#![warn(missing_docs)]

pub mod auto_agg;
pub mod catalog;
pub mod dictionary;
pub mod dimension;
pub mod error;
pub mod hierarchy;
pub mod matching;
pub mod measure;
pub mod microdata;
pub mod object;
pub mod ops;
pub mod plan;
pub mod schema;
pub mod schema_graph;
pub mod stats;
pub mod summarizability;
pub mod table2d;
pub mod timeseries;
pub mod trace;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::auto_agg::{Query, Selection};
    pub use crate::catalog::Catalog;
    pub use crate::dictionary::Dictionary;
    pub use crate::dimension::{Dimension, DimensionRole};
    pub use crate::error::{Error, Result, Violation};
    pub use crate::hierarchy::{Hierarchy, HierarchyBuilder, Level};
    pub use crate::measure::{AggState, MeasureKind, SummaryAttribute, SummaryFunction};
    pub use crate::microdata::MicroTable;
    pub use crate::object::StatisticalObject;
    pub use crate::ops::navigator::Navigator;
    pub use crate::ops::{
        disaggregate_by_proxy, s_aggregate, s_project, s_select, s_union, UnionPolicy,
    };
    pub use crate::plan::{
        Plan, PlanPredicate, PlannedQuery, Planner, PlannerConfig, PrivacyPolicy,
    };
    pub use crate::schema::{Schema, SchemaBuilder};
    pub use crate::schema_graph::SchemaGraph;
    pub use crate::summarizability::Verdict;
    pub use crate::table2d::Table2D;
    pub use crate::trace::{MetricsSnapshot, QueryProfile};
}
