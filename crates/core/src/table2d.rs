//! 2-D statistical tables with marginals (§2.1 Fig 1, §4.3 Fig 9, \[OOM85\]).
//!
//! The traditional statistics representation: dimensions are partitioned
//! (in an arbitrary, *ordered* way) into rows and columns, and summary
//! totals — the statisticians' **marginals** — appear on the margins.
//! [`Table2D`] lays a [`StatisticalObject`] out this way, computes marginals
//! from the cell states (or reports where stored marginals would be
//! required, §4.3), and supports the `attribute split`/`attribute merge`
//! operators of \[OOM85\] that move a category attribute between rows and
//! columns.

use std::fmt::Write as _;

use crate::error::{Error, Result};
use crate::measure::AggState;
use crate::object::StatisticalObject;

/// A 2-D layout of a statistical object.
#[derive(Debug, Clone)]
pub struct Table2D {
    obj: StatisticalObject,
    rows: Vec<usize>,
    cols: Vec<usize>,
    measure: usize,
    marginals: bool,
}

impl Table2D {
    /// Lays out `obj` with the named dimensions on rows and columns (each
    /// dimension exactly once, order meaningful — §2.1(i)).
    pub fn layout(obj: &StatisticalObject, rows: &[&str], cols: &[&str]) -> Result<Table2D> {
        let mut row_idx = Vec::with_capacity(rows.len());
        for r in rows {
            row_idx.push(obj.schema().dim_index(r)?);
        }
        let mut col_idx = Vec::with_capacity(cols.len());
        for c in cols {
            col_idx.push(obj.schema().dim_index(c)?);
        }
        let mut seen: Vec<usize> = row_idx.iter().chain(&col_idx).copied().collect();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != obj.schema().dim_count() || rows.len() + cols.len() != seen.len() {
            return Err(Error::InvalidSchema(
                "2-D layout must mention every dimension exactly once".into(),
            ));
        }
        Ok(Table2D { obj: obj.clone(), rows: row_idx, cols: col_idx, measure: 0, marginals: true })
    }

    /// Selects which measure the table shows (default 0).
    pub fn with_measure(mut self, m: usize) -> Result<Self> {
        if m >= self.obj.schema().measures().len() {
            return Err(Error::MeasureNotFound(format!("#{m}")));
        }
        self.measure = m;
        Ok(self)
    }

    /// Enables/disables marginal rows and columns (default on).
    pub fn with_marginals(mut self, on: bool) -> Self {
        self.marginals = on;
        self
    }

    /// Names of the row dimensions, in order.
    pub fn row_dims(&self) -> Vec<&str> {
        self.rows.iter().map(|&d| self.obj.schema().dimensions()[d].name()).collect()
    }

    /// Names of the column dimensions, in order.
    pub fn col_dims(&self) -> Vec<&str> {
        self.cols.iter().map(|&d| self.obj.schema().dimensions()[d].name()).collect()
    }

    fn keys(&self, dims: &[usize]) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        for &d in dims {
            let card = self.obj.schema().dimensions()[d].cardinality() as u32;
            let mut next = Vec::with_capacity(out.len() * card as usize);
            for prefix in &out {
                for m in 0..card {
                    let mut k = prefix.clone();
                    k.push(m);
                    next.push(k);
                }
            }
            out = next;
        }
        out
    }

    /// Cartesian product of row-dimension member ids, in row order.
    pub fn row_keys(&self) -> Vec<Vec<u32>> {
        self.keys(&self.rows)
    }

    /// Cartesian product of column-dimension member ids, in column order.
    pub fn col_keys(&self) -> Vec<Vec<u32>> {
        self.keys(&self.cols)
    }

    fn full_coords(&self, row_key: &[u32], col_key: &[u32]) -> Vec<u32> {
        let mut coords = vec![0u32; self.obj.schema().dim_count()];
        for (i, &d) in self.rows.iter().enumerate() {
            coords[d] = row_key[i];
        }
        for (i, &d) in self.cols.iter().enumerate() {
            coords[d] = col_key[i];
        }
        coords
    }

    /// The cell value at `(row_key, col_key)` under the measure's summary
    /// function.
    pub fn value(&self, row_key: &[u32], col_key: &[u32]) -> Option<f64> {
        let coords = self.full_coords(row_key, col_key);
        self.obj.eval(&coords, self.measure, self.obj.schema().function(self.measure))
    }

    fn merge_over_cols(&self, row_key: &[u32]) -> AggState {
        let mut acc = AggState::EMPTY;
        for ck in self.col_keys() {
            let coords = self.full_coords(row_key, &ck);
            if let Some(states) = self.obj.states_at(&coords) {
                acc.merge(&states[self.measure]);
            }
        }
        acc
    }

    fn merge_over_rows(&self, col_key: &[u32]) -> AggState {
        let mut acc = AggState::EMPTY;
        for rk in self.row_keys() {
            let coords = self.full_coords(&rk, col_key);
            if let Some(states) = self.obj.states_at(&coords) {
                acc.merge(&states[self.measure]);
            }
        }
        acc
    }

    /// Row marginal ("total" column of Fig 9).
    pub fn row_total(&self, row_key: &[u32]) -> Option<f64> {
        self.merge_over_cols(row_key).value(self.obj.schema().function(self.measure))
    }

    /// Column marginal (bottom "total" row).
    pub fn col_total(&self, col_key: &[u32]) -> Option<f64> {
        self.merge_over_rows(col_key).value(self.obj.schema().function(self.measure))
    }

    /// Grand total over the whole table.
    pub fn grand_total(&self) -> Option<f64> {
        self.obj.grand_total(self.measure)
    }

    /// Verifies marginal consistency: the sum of row marginals, the sum of
    /// column marginals, and the grand total must agree (for the additive
    /// part of the state this is exact up to float tolerance). This is the
    /// invariant that breaks when summarizability fails, which is why
    /// non-derivable marginals must be stored (§4.3).
    pub fn marginals_consistent(&self) -> bool {
        let grand = {
            let mut acc = AggState::EMPTY;
            for rk in self.row_keys() {
                acc.merge(&self.merge_over_cols(&rk));
            }
            acc
        };
        let grand2 = {
            let mut acc = AggState::EMPTY;
            for ck in self.col_keys() {
                acc.merge(&self.merge_over_rows(&ck));
            }
            acc
        };
        let direct: AggState = {
            let mut acc = AggState::EMPTY;
            for (_, states) in self.obj.cells() {
                acc.merge(&states[self.measure]);
            }
            acc
        };
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        close(grand.sum, direct.sum)
            && close(grand2.sum, direct.sum)
            && grand.count == direct.count
            && grand2.count == direct.count
    }

    /// *Attribute split/merge* (\[OOM85\]): moves a dimension from columns to
    /// the end of the rows.
    pub fn move_to_rows(&self, dim: &str) -> Result<Table2D> {
        let d = self.obj.schema().dim_index(dim)?;
        let pos = self
            .cols
            .iter()
            .position(|&x| x == d)
            .ok_or_else(|| Error::DimensionNotFound(format!("{dim} (not on columns)")))?;
        let mut t = self.clone();
        t.cols.remove(pos);
        t.rows.push(d);
        Ok(t)
    }

    /// *Attribute split/merge* (\[OOM85\]): moves a dimension from rows to
    /// the end of the columns.
    pub fn move_to_cols(&self, dim: &str) -> Result<Table2D> {
        let d = self.obj.schema().dim_index(dim)?;
        let pos = self
            .rows
            .iter()
            .position(|&x| x == d)
            .ok_or_else(|| Error::DimensionNotFound(format!("{dim} (not on rows)")))?;
        let mut t = self.clone();
        t.rows.remove(pos);
        t.cols.push(d);
        Ok(t)
    }

    fn label(&self, d: usize, id: u32) -> String {
        self.obj.schema().dimensions()[d].members().value_of(id).unwrap_or("?").to_owned()
    }

    /// Renders the table as fixed-width text: one header line per column
    /// dimension, one label column per row dimension, and (if enabled)
    /// marginal "total" column/row — the shape of paper Fig 9.
    pub fn render(&self) -> String {
        const W: usize = 14;
        let row_keys = self.row_keys();
        let col_keys = self.col_keys();
        let label_cols = self.rows.len().max(1);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.obj.schema().name());

        // Header lines: for each column dimension, first any classification
        // levels above the leaf (coarsest first — Fig 1 shows
        // "professional class" spanning above "profession"), then the leaf
        // members themselves.
        for (ci, &d) in self.cols.iter().enumerate() {
            let dim = &self.obj.schema().dimensions()[d];
            let mut header_rows: Vec<Vec<String>> = Vec::new();
            if let Some(h) = dim.default_hierarchy() {
                for level in (1..h.level_count()).rev() {
                    let row: Vec<String> = col_keys
                        .iter()
                        .map(|ck| {
                            let hid = dim.leaf_to_hierarchy(0, ck[ci]);
                            let ancestors = h.ancestors_at(hid, level);
                            match ancestors.as_slice() {
                                [a] => {
                                    h.level(level).members().value_of(*a).unwrap_or("?").to_owned()
                                }
                                [] => String::new(),
                                _ => "(multiple)".to_owned(),
                            }
                        })
                        .collect();
                    header_rows.push(row);
                }
            }
            header_rows.push(col_keys.iter().map(|ck| self.label(d, ck[ci])).collect());
            for (hi, row) in header_rows.iter().enumerate() {
                for _ in 0..label_cols {
                    let _ = write!(out, "{:>W$}", "", W = W);
                }
                // Blank out repeats so a parent appears once per span, as
                // in the paper's tables.
                let mut prev: Option<&str> = None;
                let is_leaf_row = hi + 1 == header_rows.len();
                for cell in row {
                    let shown = if !is_leaf_row && prev == Some(cell.as_str()) {
                        ""
                    } else {
                        cell.as_str()
                    };
                    let _ = write!(out, "{:>W$}", shown, W = W);
                    prev = Some(cell.as_str());
                }
                if self.marginals && ci == 0 && is_leaf_row {
                    let _ = write!(out, "{:>W$}", "total", W = W);
                }
                let _ = writeln!(out);
            }
        }

        // Data rows.
        for rk in &row_keys {
            for (ri, &d) in self.rows.iter().enumerate() {
                let _ = write!(out, "{:>W$}", self.label(d, rk[ri]), W = W);
            }
            if self.rows.is_empty() {
                let _ = write!(out, "{:>W$}", "", W = W);
            }
            for ck in &col_keys {
                match self.value(rk, ck) {
                    Some(v) => {
                        let _ = write!(out, "{:>W$.1}", v, W = W);
                    }
                    None => {
                        let _ = write!(out, "{:>W$}", ".", W = W);
                    }
                }
            }
            if self.marginals {
                match self.row_total(rk) {
                    Some(v) => {
                        let _ = write!(out, "{:>W$.1}", v, W = W);
                    }
                    None => {
                        let _ = write!(out, "{:>W$}", ".", W = W);
                    }
                }
            }
            let _ = writeln!(out);
        }

        // Marginal bottom row.
        if self.marginals {
            let _ = write!(out, "{:>W$}", "total", W = W);
            for _ in 1..label_cols {
                let _ = write!(out, "{:>W$}", "", W = W);
            }
            for ck in &col_keys {
                match self.col_total(ck) {
                    Some(v) => {
                        let _ = write!(out, "{:>W$.1}", v, W = W);
                    }
                    None => {
                        let _ = write!(out, "{:>W$}", ".", W = W);
                    }
                }
            }
            match self.grand_total() {
                Some(v) => {
                    let _ = write!(out, "{:>W$.1}", v, W = W);
                }
                None => {
                    let _ = write!(out, "{:>W$}", ".", W = W);
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use crate::schema::Schema;

    fn employment() -> StatisticalObject {
        let schema = Schema::builder("Employment in California")
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .dimension(Dimension::temporal("year", ["91", "92"]))
            .dimension(Dimension::categorical(
                "profession",
                ["chemical engineer", "civil engineer", "junior secretary"],
            ))
            .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["male", "91", "chemical engineer"], 197_700.0).unwrap();
        o.insert(&["male", "91", "civil engineer"], 241_100.0).unwrap();
        o.insert(&["male", "92", "chemical engineer"], 209_900.0).unwrap();
        o.insert(&["female", "91", "junior secretary"], 667_300.0).unwrap();
        o.insert(&["female", "92", "junior secretary"], 692_500.0).unwrap();
        o
    }

    #[test]
    fn fig1_layout() {
        let o = employment();
        let t = Table2D::layout(&o, &["sex", "year"], &["profession"]).unwrap();
        assert_eq!(t.row_dims(), vec!["sex", "year"]);
        assert_eq!(t.row_keys().len(), 4);
        assert_eq!(t.col_keys().len(), 3);
        // male, 91, civil engineer
        assert_eq!(t.value(&[0, 0], &[1]), Some(241_100.0));
        assert_eq!(t.value(&[1, 0], &[1]), None);
    }

    #[test]
    fn marginals_match_fig9() {
        let o = employment();
        let t = Table2D::layout(&o, &["sex", "year"], &["profession"]).unwrap();
        // Row total for (male, 91): 197700 + 241100.
        assert_eq!(t.row_total(&[0, 0]), Some(438_800.0));
        // Column total for junior secretary across all rows.
        assert_eq!(t.col_total(&[2]), Some(667_300.0 + 692_500.0));
        assert_eq!(t.grand_total(), Some(2_008_500.0));
        assert!(t.marginals_consistent());
    }

    #[test]
    fn attribute_split_and_merge_preserve_content() {
        let o = employment();
        let t = Table2D::layout(&o, &["sex", "year"], &["profession"]).unwrap();
        let t2 = t.move_to_rows("profession").unwrap().move_to_cols("year").unwrap();
        assert_eq!(t2.row_dims(), vec!["sex", "profession"]);
        assert_eq!(t2.col_dims(), vec!["year"]);
        // Same cell, new coordinates: (male, chemical engineer) x (91).
        assert_eq!(t2.value(&[0, 0], &[0]), Some(197_700.0));
        assert_eq!(t2.grand_total(), t.grand_total());
        assert!(t2.marginals_consistent());
    }

    #[test]
    fn move_errors_when_dimension_not_on_that_side() {
        let o = employment();
        let t = Table2D::layout(&o, &["sex", "year"], &["profession"]).unwrap();
        assert!(t.move_to_rows("sex").is_err());
        assert!(t.move_to_cols("profession").is_err());
    }

    #[test]
    fn layout_must_partition_dimensions() {
        let o = employment();
        assert!(Table2D::layout(&o, &["sex"], &["profession"]).is_err());
        assert!(Table2D::layout(&o, &["sex", "year"], &["profession", "sex"]).is_err());
        assert!(Table2D::layout(&o, &["sex", "year", "profession"], &[]).is_ok());
    }

    #[test]
    fn render_contains_headers_cells_and_totals() {
        let o = employment();
        let t = Table2D::layout(&o, &["sex", "year"], &["profession"]).unwrap();
        let s = t.render();
        assert!(s.contains("Employment in California"));
        assert!(s.contains("civil engineer"));
        assert!(s.contains("male"));
        assert!(s.contains("241100.0"));
        assert!(s.contains("total"));
        assert!(s.contains("2008500.0"));
        // Unpopulated cells render as '.'.
        assert!(s.contains('.'));
    }

    #[test]
    fn hierarchy_column_headers_span_like_fig1() {
        use crate::hierarchy::Hierarchy;
        let profession = Hierarchy::builder("profession")
            .level("profession")
            .level("professional class")
            .edge("chemical engineer", "engineer")
            .edge("civil engineer", "engineer")
            .edge("junior secretary", "secretary")
            .build()
            .unwrap();
        let schema = Schema::builder("Employment")
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .dimension(Dimension::classified("profession", profession))
            .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["male", "civil engineer"], 10.0).unwrap();
        o.insert(&["male", "junior secretary"], 20.0).unwrap();
        let t = Table2D::layout(&o, &["sex"], &["profession"]).unwrap();
        let s = t.render();
        // The class header row sits above the profession row, each parent
        // shown once per span.
        let class_line = s
            .lines()
            .find(|l| l.contains("engineer") && !l.contains("civil"))
            .expect("class header row");
        assert!(class_line.contains("secretary"));
        assert_eq!(class_line.matches("engineer").count(), 1, "{class_line}");
        let leaf_line_idx = s.lines().position(|l| l.contains("civil engineer")).unwrap();
        let class_line_idx = s.lines().position(|l| l == class_line).unwrap();
        assert!(class_line_idx < leaf_line_idx);
        assert!(t.marginals_consistent());
    }

    #[test]
    fn avg_table_marginals_compose_correctly() {
        let schema = Schema::builder("avg income")
            .dimension(Dimension::categorical("sex", ["m", "f"]))
            .dimension(Dimension::categorical("year", ["91"]))
            .measure(SummaryAttribute::new("income", MeasureKind::ValuePerUnit))
            .function(SummaryFunction::Avg)
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["m", "91"], 10.0).unwrap();
        o.insert(&["m", "91"], 20.0).unwrap();
        o.insert(&["f", "91"], 60.0).unwrap();
        let t = Table2D::layout(&o, &["sex"], &["year"]).unwrap();
        // The marginal avg is the avg of the underlying values (30), not the
        // avg of cell averages (37.5) — exactly why states carry counts.
        assert_eq!(t.col_total(&[0]), Some(30.0));
        assert!(t.marginals_consistent());
    }
}
