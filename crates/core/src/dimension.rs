//! Dimensions (the paper's *category attributes*).
//!
//! A [`Dimension`] names one axis of the multidimensional space, carries its
//! leaf member dictionary, a semantic [`DimensionRole`] (temporal dimensions
//! interact with measure kinds in the summarizability rules), and zero or
//! more classification hierarchies. §3.2(i) observes that products can be
//! classified "in many different ways, such as by type … or by price range";
//! we support such *multiple classifications over the same dimension* by
//! letting each extra hierarchy carry its own leaf-id remapping.

use crate::dictionary::Dictionary;
use crate::error::{Error, Result};
use crate::hierarchy::Hierarchy;

/// Semantic role of a dimension, used by the summarizability checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimensionRole {
    /// Ordinary categorical axis (sex, race, product).
    Categorical,
    /// Time axis (year, day). Stocks are not additive over it.
    Temporal,
    /// Geographic axis (state, county). Treated as categorical for
    /// summarizability, tagged for the modeling layer.
    Spatial,
}

/// One axis of a statistical object.
#[derive(Debug, Clone, PartialEq)]
pub struct Dimension {
    name: String,
    role: DimensionRole,
    leaf: Dictionary,
    /// Hierarchies over this dimension. Each pairs the hierarchy with a map
    /// from dimension leaf id → hierarchy level-0 id.
    hierarchies: Vec<(Hierarchy, Vec<u32>)>,
}

impl Dimension {
    /// A flat categorical dimension.
    pub fn categorical<I, S>(name: impl Into<String>, members: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self {
            name: name.into(),
            role: DimensionRole::Categorical,
            leaf: Dictionary::from_values(members),
            hierarchies: Vec::new(),
        }
    }

    /// A flat temporal dimension.
    pub fn temporal<I, S>(name: impl Into<String>, members: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self { role: DimensionRole::Temporal, ..Self::categorical(name, members) }
    }

    /// A flat spatial dimension.
    pub fn spatial<I, S>(name: impl Into<String>, members: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self { role: DimensionRole::Spatial, ..Self::categorical(name, members) }
    }

    /// A dimension classified by `hierarchy`: the dimension's members are
    /// the hierarchy's leaf members, in the same id order.
    pub fn classified(name: impl Into<String>, hierarchy: Hierarchy) -> Self {
        let leaf = hierarchy.leaf().members().clone();
        let identity: Vec<u32> = (0..leaf.len() as u32).collect();
        Self {
            name: name.into(),
            role: DimensionRole::Categorical,
            leaf,
            hierarchies: vec![(hierarchy, identity)],
        }
    }

    /// Like [`Dimension::classified`] with a temporal role (the
    /// year→month→day ID-dependent hierarchy of §2.2(ii)).
    pub fn classified_temporal(name: impl Into<String>, hierarchy: Hierarchy) -> Self {
        Self { role: DimensionRole::Temporal, ..Self::classified(name, hierarchy) }
    }

    /// Overrides the role.
    pub fn with_role(mut self, role: DimensionRole) -> Self {
        self.role = role;
        self
    }

    /// Attaches an *additional* classification over the same members
    /// (§3.2(i): classify products by type **and** by price range). The
    /// hierarchy's leaf member set must equal the dimension's member set
    /// (order may differ; ids are remapped).
    pub fn with_extra_hierarchy(mut self, hierarchy: Hierarchy) -> Result<Self> {
        let hleaf = hierarchy.leaf().members();
        if hleaf.len() != self.leaf.len() {
            return Err(Error::InvalidSchema(format!(
                "hierarchy `{}` classifies {} members, dimension `{}` has {}",
                hierarchy.name(),
                hleaf.len(),
                self.name,
                self.leaf.len()
            )));
        }
        let mut map = Vec::with_capacity(self.leaf.len());
        for v in self.leaf.values() {
            match hleaf.id_of(v) {
                Some(id) => map.push(id),
                None => {
                    return Err(Error::InvalidSchema(format!(
                        "hierarchy `{}` does not classify member `{}` of dimension `{}`",
                        hierarchy.name(),
                        v,
                        self.name
                    )))
                }
            }
        }
        self.hierarchies.push((hierarchy, map));
        Ok(self)
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimension's semantic role.
    pub fn role(&self) -> DimensionRole {
        self.role
    }

    /// The leaf member dictionary.
    pub fn members(&self) -> &Dictionary {
        &self.leaf
    }

    /// Cardinality of the dimension.
    pub fn cardinality(&self) -> usize {
        self.leaf.len()
    }

    /// All hierarchies over this dimension.
    pub fn hierarchies(&self) -> impl Iterator<Item = &Hierarchy> {
        self.hierarchies.iter().map(|(h, _)| h)
    }

    /// The default (first) hierarchy, if any.
    pub fn default_hierarchy(&self) -> Option<&Hierarchy> {
        self.hierarchies.first().map(|(h, _)| h)
    }

    /// Finds a hierarchy by name.
    pub fn hierarchy(&self, name: &str) -> Result<&Hierarchy> {
        self.hierarchies.iter().map(|(h, _)| h).find(|h| h.name() == name).ok_or_else(|| {
            Error::HierarchyNotFound { dimension: self.name.clone(), hierarchy: name.to_owned() }
        })
    }

    /// Maps a dimension leaf id into hierarchy `h_idx`'s level-0 id space.
    pub fn leaf_to_hierarchy(&self, h_idx: usize, leaf_id: u32) -> u32 {
        self.hierarchies[h_idx].1[leaf_id as usize]
    }

    /// Finds the index of a hierarchy by name, or the default hierarchy for
    /// `None`.
    pub fn hierarchy_index(&self, name: Option<&str>) -> Result<usize> {
        match name {
            None if !self.hierarchies.is_empty() => Ok(0),
            None => Err(Error::HierarchyNotFound {
                dimension: self.name.clone(),
                hierarchy: "<default>".to_owned(),
            }),
            Some(n) => self.hierarchies.iter().position(|(h, _)| h.name() == n).ok_or_else(|| {
                Error::HierarchyNotFound { dimension: self.name.clone(), hierarchy: n.to_owned() }
            }),
        }
    }

    /// Resolves a member name to its id.
    pub fn member_id(&self, member: &str) -> Result<u32> {
        self.leaf.id_of(member).ok_or_else(|| Error::UnknownMember {
            dimension: self.name.clone(),
            member: member.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_dimensions() {
        let d = Dimension::categorical("sex", ["male", "female"]);
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.role(), DimensionRole::Categorical);
        assert!(d.default_hierarchy().is_none());
        assert_eq!(d.member_id("female").unwrap(), 1);
        assert!(d.member_id("other").is_err());

        let t = Dimension::temporal("year", ["1990", "1991"]);
        assert_eq!(t.role(), DimensionRole::Temporal);
    }

    #[test]
    fn classified_dimension_shares_leaf_ids() {
        let h = Hierarchy::builder("geo")
            .level("city")
            .level("state")
            .edge("sf", "ca")
            .edge("la", "ca")
            .edge("reno", "nv")
            .build()
            .unwrap();
        let d = Dimension::classified("location", h);
        assert_eq!(d.cardinality(), 3);
        let sf = d.member_id("sf").unwrap();
        assert_eq!(d.leaf_to_hierarchy(0, sf), sf);
    }

    #[test]
    fn multiple_classifications_remap() {
        // Products classified by type AND by price range (§3.2(i)).
        let by_type = Hierarchy::builder("by type")
            .level("product")
            .level("type")
            .edge("banana", "produce")
            .edge("milk", "dairy")
            .edge("cheese", "dairy")
            .build()
            .unwrap();
        // Deliberately different leaf insertion order.
        let by_price = Hierarchy::builder("by price")
            .level("product")
            .level("price range")
            .edge("cheese", "premium")
            .edge("banana", "budget")
            .edge("milk", "budget")
            .build()
            .unwrap();
        let d = Dimension::classified("product", by_type).with_extra_hierarchy(by_price).unwrap();
        assert_eq!(d.hierarchies().count(), 2);
        let cheese = d.member_id("cheese").unwrap();
        let h_idx = d.hierarchy_index(Some("by price")).unwrap();
        let hier_cheese = d.leaf_to_hierarchy(h_idx, cheese);
        let h = d.hierarchy("by price").unwrap();
        assert_eq!(h.leaf().members().value_of(hier_cheese), Some("cheese"));
        let premium = h.level(1).members().id_of("premium").unwrap();
        assert_eq!(h.parent(0, hier_cheese), Some(premium));
    }

    #[test]
    fn extra_hierarchy_must_cover_members() {
        let by_type = Hierarchy::builder("by type")
            .level("product")
            .level("type")
            .edge("banana", "produce")
            .build()
            .unwrap();
        let wrong = Hierarchy::builder("wrong")
            .level("product")
            .level("x")
            .edge("not-banana", "y")
            .build()
            .unwrap();
        let d = Dimension::classified("product", by_type);
        assert!(d.with_extra_hierarchy(wrong).is_err());
    }

    #[test]
    fn hierarchy_lookup_errors() {
        let d = Dimension::categorical("sex", ["m", "f"]);
        assert!(d.hierarchy("nope").is_err());
        assert!(d.hierarchy_index(None).is_err());
    }
}
