//! Summary attributes (measures), summary functions, and aggregation states.
//!
//! A statistical object carries one or more *summary attributes* (the paper's
//! "summary measure" / OLAP "measure" / fact column) each with a *summary
//! function*. The measure's [`MeasureKind`] drives the temporal
//! summarizability rules of §3.3.2 / \[LS97\]: flows add over time, stocks do
//! not, and value-per-unit measures never add.

use std::fmt;

/// Semantic type of a summary measure, following \[LS97\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Events accumulated over an interval (sales, accident counts, births).
    /// Additive over every dimension, including time.
    Flow,
    /// A level observed at an instant (population, inventory, water level).
    /// Additive over non-temporal dimensions only.
    Stock,
    /// A ratio or rate (price, average income, exchange rate). Never
    /// additive; only order statistics and averages are meaningful.
    ValuePerUnit,
}

impl fmt::Display for MeasureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MeasureKind::Flow => "flow",
            MeasureKind::Stock => "stock",
            MeasureKind::ValuePerUnit => "value-per-unit",
        };
        f.write_str(s)
    }
}

/// A summary attribute: the paper's "summary measure" (SDB: *summary
/// attribute*, OLAP: *measure* / fact column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryAttribute {
    name: String,
    kind: MeasureKind,
    unit: Option<String>,
}

impl SummaryAttribute {
    /// Creates a measure of the given semantic kind with no unit.
    pub fn new(name: impl Into<String>, kind: MeasureKind) -> Self {
        Self { name: name.into(), kind, unit: None }
    }

    /// Attaches a unit (e.g. "dollars" for `quantity sold`, §2.2(iii)).
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = Some(unit.into());
        self
    }

    /// The measure's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The measure's semantic kind.
    pub fn kind(&self) -> MeasureKind {
        self.kind
    }

    /// The measure's unit, if any. Measures born of a `count` summarization
    /// have none (§2.2(iii)).
    pub fn unit(&self) -> Option<&str> {
        self.unit.as_deref()
    }
}

/// The summary function attached to a statistical object (§2.1(iv)).
///
/// Databases traditionally provide exactly these five (§5.6); richer
/// statistics (stddev, percentiles, trimmed means) live in [`crate::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SummaryFunction {
    /// Total of the underlying values.
    Sum,
    /// Number of underlying micro units.
    Count,
    /// Mean of the underlying values (maintained as sum/count so it
    /// composes under roll-up, §5.1(iv)).
    Avg,
    /// Minimum of the underlying values.
    Min,
    /// Maximum of the underlying values.
    Max,
}

impl SummaryFunction {
    /// All five functions, handy for exhaustive tests.
    pub const ALL: [SummaryFunction; 5] = [
        SummaryFunction::Sum,
        SummaryFunction::Count,
        SummaryFunction::Avg,
        SummaryFunction::Min,
        SummaryFunction::Max,
    ];

    /// True if the function is *additive* — i.e. double-counting an input
    /// changes the result. `Min`/`Max` are duplicate-insensitive, so they
    /// survive non-strict hierarchies that break `Sum`/`Count`/`Avg`.
    pub fn is_duplicate_sensitive(self) -> bool {
        matches!(self, SummaryFunction::Sum | SummaryFunction::Count | SummaryFunction::Avg)
    }
}

impl fmt::Display for SummaryFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SummaryFunction::Sum => "sum",
            SummaryFunction::Count => "count",
            SummaryFunction::Avg => "avg",
            SummaryFunction::Min => "min",
            SummaryFunction::Max => "max",
        };
        f.write_str(s)
    }
}

/// The composable aggregation state of one cell.
///
/// Carrying `(sum, count, min, max)` lets every [`SummaryFunction`] be
/// evaluated from the same state *and* lets states merge losslessly under
/// roll-up — the paper notes that to support `average` one maintains the
/// `sum` and `count` of each cell (§5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggState {
    /// Sum of merged values.
    pub sum: f64,
    /// Number of merged micro units.
    pub count: u64,
    /// Minimum merged value (`+inf` when empty).
    pub min: f64,
    /// Maximum merged value (`-inf` when empty).
    pub max: f64,
}

impl Default for AggState {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl AggState {
    /// The identity state: merging it into anything is a no-op.
    pub const EMPTY: AggState =
        AggState { sum: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY };

    /// State representing a single observed value.
    pub fn from_value(v: f64) -> Self {
        AggState { sum: v, count: 1, min: v, max: v }
    }

    /// State representing a pre-aggregated `(sum, count)` pair, e.g. a
    /// published macro-data cell whose min/max are unknown.
    pub fn from_sum_count(sum: f64, count: u64) -> Self {
        AggState { sum, count, min: f64::NAN, max: f64::NAN }
    }

    /// Merges another state into this one.
    pub fn merge(&mut self, other: &AggState) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the merge of two states.
    #[must_use]
    pub fn merged(mut self, other: &AggState) -> Self {
        self.merge(other);
        self
    }

    /// Merges a run of `n` identical observed values `v` in O(1) — the
    /// RLE-aware kernel primitive: `run_length × value` feeds `sum` and
    /// `count`, the run's single value feeds `min`/`max`, without ever
    /// decompressing the run. Merging a run of zero values is a no-op.
    pub fn merge_run(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.sum += v * n as f64;
        self.count += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds any number of states into one, starting from [`Self::EMPTY`].
    ///
    /// Because `merge` is associative and commutative with `EMPTY` as
    /// identity (the partial-aggregation monoid), the result is independent
    /// of how the inputs were grouped — the property the partition-parallel
    /// cube engine relies on to merge per-partition cuboids losslessly.
    /// (For `sum`, floating-point addition is associative only up to
    /// rounding; `count`/`min`/`max` are exact under any grouping.)
    pub fn merge_many<'a>(states: impl IntoIterator<Item = &'a AggState>) -> AggState {
        let mut out = AggState::EMPTY;
        for s in states {
            out.merge(s);
        }
        out
    }

    /// True if no value has been merged.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.sum == 0.0
    }

    /// Evaluates the state under a summary function. Returns `None` for
    /// `Avg` of an empty state and for `Min`/`Max` of empty or
    /// min/max-less states.
    pub fn value(&self, f: SummaryFunction) -> Option<f64> {
        match f {
            SummaryFunction::Sum => Some(self.sum),
            SummaryFunction::Count => Some(self.count as f64),
            SummaryFunction::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum / self.count as f64)
                }
            }
            SummaryFunction::Min => {
                if self.min.is_finite() {
                    Some(self.min)
                } else {
                    None
                }
            }
            SummaryFunction::Max => {
                if self.max.is_finite() {
                    Some(self.max)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = AggState::from_value(1.0);
        let b = AggState::from_value(5.0);
        let c = AggState::from_value(-2.0);
        let ab_c = a.merged(&b).merged(&c);
        let a_bc = a.merged(&b.merged(&c));
        let c_ba = c.merged(&b).merged(&a);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, c_ba);
    }

    #[test]
    fn empty_is_identity() {
        let a = AggState::from_value(7.5);
        assert_eq!(a.merged(&AggState::EMPTY), a);
        assert_eq!(AggState::EMPTY.merged(&a), a);
    }

    #[test]
    fn all_functions_evaluate() {
        let s = AggState::from_value(2.0).merged(&AggState::from_value(4.0));
        assert_eq!(s.value(SummaryFunction::Sum), Some(6.0));
        assert_eq!(s.value(SummaryFunction::Count), Some(2.0));
        assert_eq!(s.value(SummaryFunction::Avg), Some(3.0));
        assert_eq!(s.value(SummaryFunction::Min), Some(2.0));
        assert_eq!(s.value(SummaryFunction::Max), Some(4.0));
    }

    #[test]
    fn empty_state_values() {
        let e = AggState::EMPTY;
        assert_eq!(e.value(SummaryFunction::Sum), Some(0.0));
        assert_eq!(e.value(SummaryFunction::Count), Some(0.0));
        assert_eq!(e.value(SummaryFunction::Avg), None);
        assert_eq!(e.value(SummaryFunction::Min), None);
        assert_eq!(e.value(SummaryFunction::Max), None);
    }

    #[test]
    fn merge_run_equals_repeated_merges() {
        let mut run = AggState::EMPTY;
        run.merge_run(2.5, 4);
        let mut loop_state = AggState::EMPTY;
        for _ in 0..4 {
            loop_state.merge(&AggState::from_value(2.5));
        }
        assert_eq!(run, loop_state);
        let before = run;
        run.merge_run(99.0, 0);
        assert_eq!(run, before, "zero-length run is identity");
    }

    #[test]
    fn avg_composes_under_merge() {
        // avg of {1,2,3} merged with avg of {10} must be exact 4.0,
        // which naive avg-of-avgs would get wrong.
        let left = AggState::from_value(1.0)
            .merged(&AggState::from_value(2.0))
            .merged(&AggState::from_value(3.0));
        let right = AggState::from_value(10.0);
        assert_eq!(left.merged(&right).value(SummaryFunction::Avg), Some(4.0));
    }

    #[test]
    fn sum_count_state_has_no_order_statistics() {
        let s = AggState::from_sum_count(100.0, 4);
        assert_eq!(s.value(SummaryFunction::Avg), Some(25.0));
        assert_eq!(s.value(SummaryFunction::Min), None);
        assert_eq!(s.value(SummaryFunction::Max), None);
    }

    #[test]
    fn duplicate_sensitivity_classification() {
        assert!(SummaryFunction::Sum.is_duplicate_sensitive());
        assert!(SummaryFunction::Count.is_duplicate_sensitive());
        assert!(SummaryFunction::Avg.is_duplicate_sensitive());
        assert!(!SummaryFunction::Min.is_duplicate_sensitive());
        assert!(!SummaryFunction::Max.is_duplicate_sensitive());
    }

    #[test]
    fn measure_units() {
        let m = SummaryAttribute::new("quantity sold", MeasureKind::Flow).with_unit("dollars");
        assert_eq!(m.unit(), Some("dollars"));
        let c = SummaryAttribute::new("employment", MeasureKind::Stock);
        assert_eq!(c.unit(), None);
        assert_eq!(c.kind(), MeasureKind::Stock);
    }
}
