//! Automatic aggregation (§5.1, Fig 13, \[S82\]).
//!
//! Given the well-defined semantics of a statistical object, a query can
//! state a *minimum* number of conditions and the system infers the rest:
//! circling "engineer" and "1980" on the schema graph means *sum over all
//! engineer professions, over all sexes, of the 1980 values* — no explicit
//! `GROUP BY`/aggregation expression needed. This module implements that
//! inference and reports, step by step, what was inferred (the E07 harness
//! prints it).

use crate::error::{Error, Result};
use crate::object::StatisticalObject;
use crate::ops;

/// What the user circled on one dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Leaf member(s) circled: keep exactly these, stay at leaf level.
    Members(Vec<String>),
    /// A member of a *non-leaf* level circled ("engineer"): aggregate to
    /// that level and keep these members.
    AtLevel {
        /// Level name within the dimension's default hierarchy.
        level: String,
        /// Members kept at that level.
        members: Vec<String>,
    },
    /// Nothing circled: summarize over all elements of the dimension
    /// (inference rule (ii) of §5.1).
    All,
}

/// A minimal query: selections for *some* dimensions; omitted dimensions
/// default to [`Selection::All`].
#[derive(Debug, Clone, Default)]
pub struct Query {
    selections: Vec<(String, Selection)>,
}

impl Query {
    /// An empty query (grand total over everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Circles leaf members of a dimension.
    pub fn members<I, S>(mut self, dim: &str, members: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.selections.push((
            dim.to_owned(),
            Selection::Members(members.into_iter().map(Into::into).collect()),
        ));
        self
    }

    /// Circles a single member at a (possibly non-leaf) hierarchy level.
    pub fn at_level(mut self, dim: &str, level: &str, member: &str) -> Self {
        self.selections.push((
            dim.to_owned(),
            Selection::AtLevel { level: level.to_owned(), members: vec![member.to_owned()] },
        ));
        self
    }

    /// The explicit selections.
    pub fn selections(&self) -> &[(String, Selection)] {
        &self.selections
    }
}

/// The inferred, fully-resolved query and its result.
#[derive(Debug, Clone)]
pub struct AutoAggResult {
    /// The resulting statistical object (one dimension per explicit
    /// selection; omitted dimensions summarized away).
    pub object: StatisticalObject,
    /// Human-readable inference trace, one line per inferred step.
    pub inference: Vec<String>,
}

impl AutoAggResult {
    /// If the result is a single cell, its value (single-measure objects).
    pub fn scalar(&self) -> Option<f64> {
        if self.object.cell_count() == 1 && self.object.schema().measures().len() == 1 {
            let (coords, _) = self.object.cells().next()?;
            self.object.eval(coords, 0, self.object.schema().function(0))
        } else {
            None
        }
    }
}

/// Executes a minimal query against a statistical object, inferring the
/// full aggregation. Summarizability is enforced on every inferred
/// summarization — an automatic query cannot silently produce a wrong
/// total.
pub fn execute(obj: &StatisticalObject, query: &Query) -> Result<AutoAggResult> {
    let mut inference = Vec::new();
    let mut cur = obj.clone();

    // Validate the query mentions real dimensions, and each at most once.
    for (i, (dim, _)) in query.selections.iter().enumerate() {
        obj.schema().dim_index(dim)?;
        if query.selections[..i].iter().any(|(d, _)| d == dim) {
            return Err(Error::InvalidSchema(format!("dimension `{dim}` selected more than once")));
        }
    }

    // Pass 1: aggregate dimensions whose selection is at a non-leaf level.
    for (dim, sel) in &query.selections {
        if let Selection::AtLevel { level, .. } = sel {
            let d = cur.schema().dim_index(dim)?;
            let leaf = cur.schema().dimensions()[d]
                .default_hierarchy()
                .map(|h| h.leaf().name().to_owned());
            if leaf.as_deref() != Some(level.as_str()) {
                inference.push(format!(
                    "`{dim}` circled at non-leaf level `{level}`: summarize over all its \
                     descendants (S-aggregation)"
                ));
                cur = ops::s_aggregate(&cur, dim, level)?;
            }
        }
    }

    // Pass 2: filter to the circled members.
    for (dim, sel) in &query.selections {
        let members: &[String] = match sel {
            Selection::Members(m) => m,
            Selection::AtLevel { members, .. } => members,
            Selection::All => continue,
        };
        let refs: Vec<&str> = members.iter().map(String::as_str).collect();
        inference.push(format!("`{dim}`: keep {{{}}} (S-selection)", members.join(", ")));
        cur = ops::s_select(&cur, dim, &refs)?;
    }

    // Pass 3: summarize over every dimension not mentioned (or marked All)
    // — inference rule (ii): "leaving out any selection … implies
    // summarization over all elements of that dimension".
    let unmentioned: Vec<String> = cur
        .schema()
        .dimensions()
        .iter()
        .map(|d| d.name().to_owned())
        .filter(|name| {
            !query.selections.iter().any(|(dim, sel)| dim == name && !matches!(sel, Selection::All))
        })
        .collect();
    for dim in unmentioned {
        inference
            .push(format!("`{dim}` not selected: summarize over all its elements (S-projection)"));
        cur = ops::s_project(&cur, &dim)?;
    }

    inference.push(format!(
        "summary measure `{}` and function `{}` inferred from the statistical object",
        cur.schema().measures()[0].name(),
        cur.schema().function(0)
    ));
    Ok(AutoAggResult { object: cur, inference })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::hierarchy::Hierarchy;
    use crate::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use crate::schema::Schema;

    /// The Fig 13 object: average income by sex by year by profession.
    fn fig13() -> StatisticalObject {
        let profession = Hierarchy::builder("profession")
            .level("profession")
            .level("professional class")
            .edge("chemical engineer", "engineer")
            .edge("civil engineer", "engineer")
            .edge("junior secretary", "secretary")
            .build()
            .unwrap();
        let schema = Schema::builder("average income")
            .dimension(Dimension::categorical("sex", ["M", "F"]))
            .dimension(Dimension::temporal("year", ["80", "87"]))
            .dimension(Dimension::classified("profession", profession))
            .measure(SummaryAttribute::new("income", MeasureKind::ValuePerUnit))
            .function(SummaryFunction::Avg)
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        // Each insert is one micro observation; avg composes from sum/count.
        o.insert(&["M", "80", "chemical engineer"], 30_000.0).unwrap();
        o.insert(&["M", "80", "civil engineer"], 34_000.0).unwrap();
        o.insert(&["F", "80", "civil engineer"], 32_000.0).unwrap();
        o.insert(&["F", "80", "junior secretary"], 20_000.0).unwrap();
        o.insert(&["M", "87", "civil engineer"], 40_000.0).unwrap();
        o
    }

    #[test]
    fn fig13_engineers_in_1980() {
        // Circle year=80 and professional class=engineer: the paper's
        // example query "find the average income of engineers in 1980".
        let q = Query::new().members("year", ["80"]).at_level(
            "profession",
            "professional class",
            "engineer",
        );
        let r = execute(&fig13(), &q).unwrap();
        // Engineers in 1980: 30k, 34k, 32k over both sexes → avg 32k.
        assert_eq!(r.scalar(), Some(32_000.0));
        // The inference trace mentions every inferred step.
        let trace = r.inference.join("\n");
        assert!(trace.contains("S-aggregation"));
        assert!(trace.contains("`sex` not selected"));
        assert!(trace.contains("avg"));
    }

    #[test]
    fn empty_query_yields_grand_total() {
        let q = Query::new();
        let r = execute(&fig13(), &q).unwrap();
        assert_eq!(r.scalar(), Some((30.0 + 34.0 + 32.0 + 20.0 + 40.0) * 1000.0 / 5.0));
    }

    #[test]
    fn leaf_member_selection_keeps_level() {
        let q = Query::new().members("profession", ["civil engineer"]);
        let r = execute(&fig13(), &q).unwrap();
        assert_eq!(r.object.schema().dim_count(), 1);
        assert_eq!(r.scalar(), Some((34_000.0 + 32_000.0 + 40_000.0) / 3.0));
    }

    #[test]
    fn multi_member_result_is_not_scalar() {
        let q = Query::new().members("sex", ["M", "F"]).members("year", ["80"]);
        let r = execute(&fig13(), &q).unwrap();
        assert_eq!(r.scalar(), None);
        assert_eq!(r.object.cell_count(), 2);
        assert_eq!(r.object.get(&["F", "80"]).unwrap(), Some(26_000.0));
    }

    #[test]
    fn duplicate_dimension_rejected() {
        let q = Query::new().members("sex", ["M"]).members("sex", ["F"]);
        assert!(execute(&fig13(), &q).is_err());
    }

    #[test]
    fn unknown_dimension_or_member_rejected() {
        assert!(execute(&fig13(), &Query::new().members("planet", ["earth"])).is_err());
        assert!(execute(&fig13(), &Query::new().members("sex", ["X"])).is_err());
        assert!(
            execute(&fig13(), &Query::new().at_level("profession", "galaxy", "engineer")).is_err()
        );
    }

    #[test]
    fn summarizability_is_enforced_on_inferred_steps() {
        // A SUM of a stock over time: the inferred projection over `year`
        // must fail rather than silently add populations over months.
        let schema = Schema::builder("population")
            .dimension(Dimension::temporal("year", ["80", "81"]))
            .dimension(Dimension::spatial("state", ["CA"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["80", "CA"], 100.0).unwrap();
        o.insert(&["81", "CA"], 110.0).unwrap();
        let q = Query::new().members("state", ["CA"]);
        assert!(matches!(execute(&o, &q), Err(Error::Summarizability(_))));
        // Selecting a single year makes it fine.
        let q = Query::new().members("state", ["CA"]).members("year", ["81"]);
        assert_eq!(execute(&o, &q).unwrap().scalar(), Some(110.0));
    }
}
