//! The schema of a statistical object.
//!
//! §2 distills both the SDB and OLAP examples to the same four components —
//! *summary measure(s)*, *summary function*, *dimensions*, *classification
//! hierarchies* — plus singleton context such as `state = California`. A
//! [`Schema`] is exactly that record; a *complex statistical object* (several
//! measures over the same dimensions, §2.2) is a schema with several
//! measures.

use crate::dimension::Dimension;
use crate::error::{Error, Result};
use crate::measure::{SummaryAttribute, SummaryFunction};

/// The schema of a [`crate::object::StatisticalObject`].
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    name: String,
    dimensions: Vec<Dimension>,
    measures: Vec<SummaryAttribute>,
    functions: Vec<SummaryFunction>,
    /// Singleton context: dimensions fixed to one value and dropped from the
    /// cross product ("Employment **in California**", §2.1(iii)). Slicing
    /// appends here.
    context: Vec<(String, String)>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            schema: Schema {
                name: name.into(),
                dimensions: Vec::new(),
                measures: Vec::new(),
                functions: Vec::new(),
                context: Vec::new(),
            },
            error: None,
        }
    }

    /// The dataset's title.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimensions, in declaration order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Number of dimensions.
    pub fn dim_count(&self) -> usize {
        self.dimensions.len()
    }

    /// Dimension cardinalities, in order — the shape of the cross product.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.dimensions.iter().map(Dimension::cardinality).collect()
    }

    /// Size of the full cross-product space (§4.3's storage concern).
    pub fn cross_product_size(&self) -> usize {
        self.dimensions.iter().map(Dimension::cardinality).product()
    }

    /// Looks up a dimension index by name.
    pub fn dim_index(&self, name: &str) -> Result<usize> {
        self.dimensions
            .iter()
            .position(|d| d.name() == name)
            .ok_or_else(|| Error::DimensionNotFound(name.to_owned()))
    }

    /// The dimension with the given name.
    pub fn dimension(&self, name: &str) -> Result<&Dimension> {
        Ok(&self.dimensions[self.dim_index(name)?])
    }

    /// The summary measures.
    pub fn measures(&self) -> &[SummaryAttribute] {
        &self.measures
    }

    /// The summary function for measure `i`.
    pub fn function(&self, i: usize) -> SummaryFunction {
        self.functions[i]
    }

    /// All summary functions, parallel to [`Schema::measures`].
    pub fn functions(&self) -> &[SummaryFunction] {
        &self.functions
    }

    /// Looks up a measure index by name.
    pub fn measure_index(&self, name: &str) -> Result<usize> {
        self.measures
            .iter()
            .position(|m| m.name() == name)
            .ok_or_else(|| Error::MeasureNotFound(name.to_owned()))
    }

    /// The singleton context (fixed dimensions like `state = California`).
    pub fn context(&self) -> &[(String, String)] {
        &self.context
    }

    /// Converts member names to a coordinate id vector.
    pub fn coords_of(&self, members: &[&str]) -> Result<Vec<u32>> {
        if members.len() != self.dimensions.len() {
            return Err(Error::ArityMismatch {
                expected: self.dimensions.len(),
                got: members.len(),
            });
        }
        members.iter().zip(&self.dimensions).map(|(m, d)| d.member_id(m)).collect()
    }

    /// Converts a coordinate id vector back to member names.
    pub fn names_of(&self, coords: &[u32]) -> Result<Vec<&str>> {
        if coords.len() != self.dimensions.len() {
            return Err(Error::ArityMismatch {
                expected: self.dimensions.len(),
                got: coords.len(),
            });
        }
        coords
            .iter()
            .zip(&self.dimensions)
            .map(|(&c, d)| {
                d.members().value_of(c).ok_or_else(|| Error::UnknownMember {
                    dimension: d.name().to_owned(),
                    member: format!("#{c}"),
                })
            })
            .collect()
    }

    /// True if two schemas are compatible for `S-union`: same dimensions
    /// (names, roles) and same measures/functions. Member sets may differ —
    /// that is the point of the union.
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.dimensions.len() == other.dimensions.len()
            && self
                .dimensions
                .iter()
                .zip(&other.dimensions)
                .all(|(a, b)| a.name() == b.name() && a.role() == b.role())
            && self.measures == other.measures
            && self.functions == other.functions
    }

    pub(crate) fn with_dimensions(&self, dimensions: Vec<Dimension>) -> Schema {
        Schema {
            name: self.name.clone(),
            dimensions,
            measures: self.measures.clone(),
            functions: self.functions.clone(),
            context: self.context.clone(),
        }
    }

    pub(crate) fn push_context(&mut self, dim: String, member: String) {
        self.context.push((dim, member));
    }

    /// Renames the dataset (useful after derivations).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }
}

/// Builder for [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    schema: Schema,
    error: Option<Error>,
}

impl SchemaBuilder {
    /// Adds a dimension.
    pub fn dimension(mut self, d: Dimension) -> Self {
        if self.schema.dimensions.iter().any(|x| x.name() == d.name()) {
            self.record(Error::InvalidSchema(format!("duplicate dimension `{}`", d.name())));
        } else {
            self.schema.dimensions.push(d);
        }
        self
    }

    /// Adds a summary measure with default function `Sum`.
    pub fn measure(mut self, m: SummaryAttribute) -> Self {
        if self.schema.measures.iter().any(|x| x.name() == m.name()) {
            self.record(Error::InvalidSchema(format!("duplicate measure `{}`", m.name())));
        } else {
            self.schema.measures.push(m);
            self.schema.functions.push(SummaryFunction::Sum);
        }
        self
    }

    /// Sets the summary function of the most recently added measure.
    pub fn function(mut self, f: SummaryFunction) -> Self {
        match self.schema.functions.last_mut() {
            Some(slot) => *slot = f,
            None => self.record(Error::InvalidSchema("function() before any measure".into())),
        }
        self
    }

    /// Records singleton context, e.g. `.context("state", "California")`.
    pub fn context(mut self, dim: impl Into<String>, member: impl Into<String>) -> Self {
        self.schema.context.push((dim.into(), member.into()));
        self
    }

    fn record(&mut self, e: Error) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Finishes the schema, validating it has at least one dimension and one
    /// measure and that no dimension is empty.
    pub fn build(mut self) -> Result<Schema> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.schema.dimensions.is_empty() {
            return Err(Error::InvalidSchema("schema needs at least one dimension".into()));
        }
        if self.schema.measures.is_empty() {
            return Err(Error::InvalidSchema("schema needs at least one measure".into()));
        }
        for d in &self.schema.dimensions {
            if d.cardinality() == 0 {
                return Err(Error::InvalidSchema(format!(
                    "dimension `{}` has no members",
                    d.name()
                )));
            }
        }
        Ok(self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureKind;

    fn schema() -> Schema {
        Schema::builder("Employment in California")
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .dimension(Dimension::temporal("year", ["1991", "1992"]))
            .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
            .function(SummaryFunction::Sum)
            .context("state", "California")
            .build()
            .unwrap()
    }

    #[test]
    fn basic_lookups() {
        let s = schema();
        assert_eq!(s.dim_count(), 2);
        assert_eq!(s.cardinalities(), vec![2, 2]);
        assert_eq!(s.cross_product_size(), 4);
        assert_eq!(s.dim_index("year").unwrap(), 1);
        assert!(s.dim_index("race").is_err());
        assert_eq!(s.measure_index("employment").unwrap(), 0);
        assert_eq!(s.function(0), SummaryFunction::Sum);
        assert_eq!(s.context(), &[("state".to_owned(), "California".to_owned())]);
    }

    #[test]
    fn coords_round_trip() {
        let s = schema();
        let c = s.coords_of(&["female", "1992"]).unwrap();
        assert_eq!(c, vec![1, 1]);
        assert_eq!(s.names_of(&c).unwrap(), vec!["female", "1992"]);
        assert!(s.coords_of(&["female"]).is_err());
        assert!(s.coords_of(&["female", "1890"]).is_err());
    }

    #[test]
    fn union_compatibility() {
        let a = schema();
        let b = schema();
        assert!(a.union_compatible(&b));
        let c = Schema::builder("other")
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .dimension(Dimension::categorical("year", ["1991"])) // role differs
            .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
            .build()
            .unwrap();
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn builder_rejects_duplicates_and_empties() {
        let dup = Schema::builder("x")
            .dimension(Dimension::categorical("a", ["1"]))
            .dimension(Dimension::categorical("a", ["2"]))
            .measure(SummaryAttribute::new("m", MeasureKind::Flow))
            .build();
        assert!(dup.is_err());

        let nodim =
            Schema::builder("x").measure(SummaryAttribute::new("m", MeasureKind::Flow)).build();
        assert!(nodim.is_err());

        let nomeasure = Schema::builder("x").dimension(Dimension::categorical("a", ["1"])).build();
        assert!(nomeasure.is_err());

        let empty = Schema::builder("x")
            .dimension(Dimension::categorical("a", Vec::<String>::new()))
            .measure(SummaryAttribute::new("m", MeasureKind::Flow))
            .build();
        assert!(empty.is_err());
    }

    #[test]
    fn complex_statistical_object_schema() {
        // Several measures over the same dimensions (§2.2).
        let s = Schema::builder("population and avg income")
            .dimension(Dimension::spatial("state", ["AL", "CA"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .function(SummaryFunction::Sum)
            .measure(
                SummaryAttribute::new("avg income", MeasureKind::ValuePerUnit).with_unit("dollars"),
            )
            .function(SummaryFunction::Avg)
            .build()
            .unwrap();
        assert_eq!(s.measures().len(), 2);
        assert_eq!(s.function(1), SummaryFunction::Avg);
    }
}
