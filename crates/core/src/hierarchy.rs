//! Classification hierarchies (the paper's *category hierarchies*, OLAP's
//! *dimension hierarchies*).
//!
//! A [`Hierarchy`] is an ordered stack of levels — level 0 is the finest
//! (leaf) level — with an edge set between each adjacent pair mapping every
//! lower member to its parent(s). The model deliberately supports everything
//! §4.2 / Fig. 8 calls out:
//!
//! * **non-strict** structures (a member with several parents, like "lung
//!   cancer" under both "cancer" and "respiratory") — children keep a *list*
//!   of parents and strictness is *checked*, never assumed;
//! * **incomplete** structures (cities that don't cover the state) — an edge
//!   set can be declared incomplete relative to the measure;
//! * **ID dependency** ("store #1" only unique within "seattle") — flagged
//!   per level so user interfaces can concatenate identifiers;
//! * members with **properties** (the ISA example: brand, sound system) that
//!   queries can filter on.

use std::collections::HashMap;

use crate::dictionary::Dictionary;
use crate::error::{Error, Result};

/// One level of a classification hierarchy: a named category attribute plus
/// the dictionary of its category values.
#[derive(Debug, Clone, PartialEq)]
pub struct Level {
    name: String,
    members: Dictionary,
    /// True if members are only identified relative to their parent
    /// (§2.2(i): store numbers within cities; days within months).
    id_dependent: bool,
}

impl Level {
    /// The level's name (the *category attribute*).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level's category values.
    pub fn members(&self) -> &Dictionary {
        &self.members
    }

    /// True if member identity depends on the parent member.
    pub fn is_id_dependent(&self) -> bool {
        self.id_dependent
    }
}

/// A multi-level classification structure over one dimension.
///
/// Built with [`Hierarchy::builder`]; immutable afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    name: String,
    levels: Vec<Level>,
    /// `edges[i][child_id]` = parent ids at level `i+1` (sorted, deduped).
    edges: Vec<Vec<Vec<u32>>>,
    /// Declared completeness of each edge set relative to the measure.
    complete: Vec<bool>,
    /// Optional per-member properties: `properties[level][member] -> kv`.
    properties: Vec<HashMap<u32, HashMap<String, String>>>,
}

impl Hierarchy {
    /// Starts building a hierarchy. Declare levels finest-first with
    /// [`HierarchyBuilder::level`], then connect adjacent levels with
    /// [`HierarchyBuilder::edge`].
    pub fn builder(name: impl Into<String>) -> HierarchyBuilder {
        HierarchyBuilder {
            name: name.into(),
            levels: Vec::new(),
            edges: Vec::new(),
            complete: Vec::new(),
            properties: Vec::new(),
            error: None,
        }
    }

    /// Builds a single-level "hierarchy" holding just a flat category
    /// attribute — what a plain dimension uses internally.
    pub fn flat<I, S>(name: impl Into<String>, members: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let name = name.into();
        Hierarchy {
            levels: vec![Level {
                name: name.clone(),
                members: Dictionary::from_values(members),
                id_dependent: false,
            }],
            name,
            edges: Vec::new(),
            complete: Vec::new(),
            properties: vec![HashMap::new()],
        }
    }

    /// The hierarchy's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels (≥ 1).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The levels, finest first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Looks up a level index by name.
    pub fn level_index(&self, level: &str) -> Result<usize> {
        self.levels.iter().position(|l| l.name == level).ok_or_else(|| Error::LevelNotFound {
            hierarchy: self.name.clone(),
            level: level.to_owned(),
        })
    }

    /// The level at `idx`.
    pub fn level(&self, idx: usize) -> &Level {
        &self.levels[idx]
    }

    /// The leaf (finest) level.
    pub fn leaf(&self) -> &Level {
        &self.levels[0]
    }

    /// Parent ids of `member` (a level-`level` id) at level `level + 1`.
    /// Empty slice if the member has no parent (uncovered) or `level` is the
    /// root level.
    pub fn parents(&self, level: usize, member: u32) -> &[u32] {
        match self.edges.get(level) {
            Some(e) => e.get(member as usize).map(Vec::as_slice).unwrap_or(&[]),
            None => &[],
        }
    }

    /// The unique parent of `member`, if the edge is strict there.
    pub fn parent(&self, level: usize, member: u32) -> Option<u32> {
        match self.parents(level, member) {
            [p] => Some(*p),
            _ => None,
        }
    }

    /// All ancestors of a leaf member at `level` (transitive closure of
    /// `parents`). Deduplicated, unsorted. For a strict path this is a
    /// single id.
    pub fn ancestors_at(&self, leaf_member: u32, level: usize) -> Vec<u32> {
        let mut current = vec![leaf_member];
        for l in 0..level {
            let mut next: Vec<u32> = Vec::new();
            for m in current {
                for &p in self.parents(l, m) {
                    if !next.contains(&p) {
                        next.push(p);
                    }
                }
            }
            current = next;
        }
        current
    }

    /// True if every member of `level` has exactly one parent — the
    /// *strictness* condition for additive summarizability (§3.3.2).
    pub fn is_strict_at(&self, level: usize) -> bool {
        self.strictness_witness(level).is_none()
    }

    /// Returns a member of `level` with ≠ 1 parents, if any (the witness the
    /// summarizability checker reports).
    pub fn strictness_witness(&self, level: usize) -> Option<u32> {
        let edges = self.edges.get(level)?;
        edges.iter().position(|p| p.len() > 1).map(|i| i as u32)
    }

    /// Returns a member of `level` with no parent, if any.
    pub fn coverage_witness(&self, level: usize) -> Option<u32> {
        let edges = self.edges.get(level)?;
        let n = self.levels[level].members.len();
        (0..n).find(|&i| edges.get(i).map(Vec::is_empty).unwrap_or(true)).map(|i| i as u32)
    }

    /// True if the hierarchy is strict on every edge set.
    pub fn is_strict(&self) -> bool {
        (0..self.edges.len()).all(|l| self.is_strict_at(l))
    }

    /// Declared completeness of the edge set above `level` (semantic:
    /// "do the children account for the whole parent, relative to the
    /// measure?" — the museums-are-only-in-cities example of §4.2).
    pub fn is_declared_complete_at(&self, level: usize) -> bool {
        self.complete.get(level).copied().unwrap_or(true)
    }

    /// Children of `member` (a level-`level` id) at level `level - 1`.
    pub fn children(&self, level: usize, member: u32) -> Vec<u32> {
        if level == 0 || level > self.edges.len() {
            return Vec::new();
        }
        let edge = &self.edges[level - 1];
        edge.iter()
            .enumerate()
            .filter(|(_, ps)| ps.contains(&member))
            .map(|(c, _)| c as u32)
            .collect()
    }

    /// Leaf descendants of `member` at `level` (transitive children).
    pub fn leaf_descendants(&self, level: usize, member: u32) -> Vec<u32> {
        let mut current = vec![member];
        for l in (1..=level).rev() {
            let mut next = Vec::new();
            for m in current {
                for c in self.children(l, m) {
                    if !next.contains(&c) {
                        next.push(c);
                    }
                }
            }
            current = next;
        }
        current
    }

    /// A property attached to a member (\[LRT96\]-style feature extension).
    pub fn property(&self, level: usize, member: u32, key: &str) -> Option<&str> {
        self.properties.get(level)?.get(&member)?.get(key).map(String::as_str)
    }

    /// Drops all levels below `level`, producing the hierarchy an object
    /// rolled up to `level` carries. Level `level` becomes the new leaf.
    pub fn truncate_below(&self, level: usize) -> Hierarchy {
        Hierarchy {
            name: self.name.clone(),
            levels: self.levels[level..].to_vec(),
            edges: self.edges.get(level..).map(|e| e.to_vec()).unwrap_or_default(),
            complete: self.complete.get(level..).map(|c| c.to_vec()).unwrap_or_default(),
            properties: self.properties[level..].to_vec(),
        }
    }

    /// Checks every structural invariant; builders call this, tests may too.
    pub fn validate(&self) -> Result<()> {
        if self.levels.is_empty() {
            return Err(Error::InvalidSchema(format!("hierarchy `{}` has no levels", self.name)));
        }
        if self.edges.len() + 1 != self.levels.len() {
            return Err(Error::InvalidSchema(format!(
                "hierarchy `{}` has {} levels but {} edge sets",
                self.name,
                self.levels.len(),
                self.edges.len()
            )));
        }
        for (l, edge) in self.edges.iter().enumerate() {
            if edge.len() != self.levels[l].members.len() {
                return Err(Error::InvalidSchema(format!(
                    "hierarchy `{}`: edge set at level {} covers {} members, level has {}",
                    self.name,
                    l,
                    edge.len(),
                    self.levels[l].members.len()
                )));
            }
            let parent_card = self.levels[l + 1].members.len() as u32;
            for parents in edge {
                if parents.iter().any(|&p| p >= parent_card) {
                    return Err(Error::InvalidSchema(format!(
                        "hierarchy `{}`: dangling parent id at level {}",
                        self.name, l
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`Hierarchy`]. Methods record the first error and report it
/// from [`HierarchyBuilder::build`], so calls can be chained without
/// intermediate `?`.
#[derive(Debug)]
pub struct HierarchyBuilder {
    name: String,
    levels: Vec<Level>,
    edges: Vec<Vec<Vec<u32>>>,
    complete: Vec<bool>,
    properties: Vec<HashMap<u32, HashMap<String, String>>>,
    error: Option<Error>,
}

impl HierarchyBuilder {
    /// Declares the next level, finest first (`day`, then `month`, then
    /// `year`).
    pub fn level(mut self, name: impl Into<String>) -> Self {
        self.levels.push(Level {
            name: name.into(),
            members: Dictionary::new(),
            id_dependent: false,
        });
        if self.levels.len() > 1 {
            self.edges.push(Vec::new());
            self.complete.push(true);
        }
        self.properties.push(HashMap::new());
        self
    }

    /// Marks the most recently declared level as ID-dependent on its parent.
    pub fn id_dependent(mut self) -> Self {
        match self.levels.last_mut() {
            Some(l) => l.id_dependent = true,
            None => self.record(Error::InvalidSchema("id_dependent before any level".into())),
        }
        self
    }

    /// Declares the edge set between the two most recently declared levels
    /// incomplete relative to the measure.
    pub fn declare_incomplete(mut self) -> Self {
        match self.complete.last_mut() {
            Some(c) => *c = false,
            None => {
                self.record(Error::InvalidSchema("declare_incomplete before two levels".into()))
            }
        }
        self
    }

    /// Adds an edge between the two most recently declared levels: `child`
    /// (interned at the second-to-last level) is classified under `parent`
    /// (interned at the last level). Call repeatedly; a child mentioned with
    /// several parents yields a non-strict structure.
    pub fn edge(self, child: &str, parent: &str) -> Self {
        let lower = match self.levels.len().checked_sub(2) {
            Some(l) => l,
            None => {
                let mut s = self;
                s.record(Error::InvalidSchema("edge() requires two levels".into()));
                return s;
            }
        };
        self.edge_at(lower, child, parent)
    }

    /// Adds an edge between explicit adjacent levels: `child` at
    /// `lower_level`, `parent` at `lower_level + 1`.
    pub fn edge_at(mut self, lower_level: usize, child: &str, parent: &str) -> Self {
        if lower_level + 1 >= self.levels.len() {
            self.record(Error::InvalidSchema(format!(
                "edge_at({lower_level}) out of range for {} levels",
                self.levels.len()
            )));
            return self;
        }
        let child_id = self.levels[lower_level].members.intern(child) as usize;
        let parent_id = self.levels[lower_level + 1].members.intern(parent);
        let edge = &mut self.edges[lower_level];
        if edge.len() <= child_id {
            edge.resize(child_id + 1, Vec::new());
        }
        if !edge[child_id].contains(&parent_id) {
            edge[child_id].push(parent_id);
            edge[child_id].sort_unstable();
        }
        self
    }

    /// Interns a member at the most recent level without connecting it (used
    /// to model uncovered members, or root-level members with no children
    /// yet).
    pub fn member(mut self, value: &str) -> Self {
        match self.levels.last_mut() {
            Some(l) => {
                l.members.intern(value);
            }
            None => self.record(Error::InvalidSchema("member() before any level".into())),
        }
        self
    }

    /// Attaches a key/value property to a member of the most recent level
    /// (the \[LRT96\] feature extension: `brand=Sanyo`).
    pub fn property(mut self, member: &str, key: &str, value: &str) -> Self {
        let level = self.levels.len().saturating_sub(1);
        match self.levels.last_mut() {
            Some(l) => {
                let id = l.members.intern(member);
                self.properties[level].entry(id).or_default().insert(key.into(), value.into());
            }
            None => self.record(Error::InvalidSchema("property() before any level".into())),
        }
        self
    }

    fn record(&mut self, e: Error) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Finishes the hierarchy, validating structure.
    pub fn build(mut self) -> Result<Hierarchy> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        // Pad edge vectors so every member has an (possibly empty) entry.
        for (l, edge) in self.edges.iter_mut().enumerate() {
            edge.resize(self.levels[l].members.len(), Vec::new());
        }
        let h = Hierarchy {
            name: self.name,
            levels: self.levels,
            edges: self.edges,
            complete: self.complete,
            properties: self.properties,
        };
        h.validate()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profession() -> Hierarchy {
        Hierarchy::builder("profession")
            .level("profession")
            .level("professional class")
            .edge("chemical engineer", "engineer")
            .edge("civil engineer", "engineer")
            .edge("junior secretary", "secretary")
            .edge("executive secretary", "secretary")
            .edge("elementary teacher", "teacher")
            .edge("high school teacher", "teacher")
            .build()
            .unwrap()
    }

    fn time3() -> Hierarchy {
        Hierarchy::builder("time")
            .level("day")
            .level("month")
            .edge("1996-11-13", "1996-11")
            .edge("1996-11-14", "1996-11")
            .edge("1996-12-01", "1996-12")
            .level("year")
            .edge_at(1, "1996-11", "1996")
            .edge_at(1, "1996-12", "1996")
            .build()
            .unwrap()
    }

    #[test]
    fn two_level_structure() {
        let h = profession();
        assert_eq!(h.level_count(), 2);
        assert_eq!(h.leaf().members().len(), 6);
        assert_eq!(h.level(1).members().len(), 3);
        assert!(h.is_strict());
        let civil = h.leaf().members().id_of("civil engineer").unwrap();
        let engineer = h.level(1).members().id_of("engineer").unwrap();
        assert_eq!(h.parent(0, civil), Some(engineer));
    }

    #[test]
    fn three_level_ancestors_and_descendants() {
        let h = time3();
        let day = h.leaf().members().id_of("1996-11-13").unwrap();
        let year = h.level_index("year").unwrap();
        let y1996 = h.level(year).members().id_of("1996").unwrap();
        assert_eq!(h.ancestors_at(day, year), vec![y1996]);
        let mut leaves = h.leaf_descendants(year, y1996);
        leaves.sort_unstable();
        assert_eq!(leaves.len(), 3);
    }

    #[test]
    fn non_strict_hierarchy_detected() {
        // HMO example (§3.2): lung cancer under both cancer and respiratory.
        let h = Hierarchy::builder("disease")
            .level("disease")
            .level("category")
            .edge("lung cancer", "cancer")
            .edge("lung cancer", "respiratory")
            .edge("asthma", "respiratory")
            .build()
            .unwrap();
        assert!(!h.is_strict());
        let lung = h.leaf().members().id_of("lung cancer").unwrap();
        assert_eq!(h.strictness_witness(0), Some(lung));
        assert_eq!(h.parents(0, lung).len(), 2);
        assert_eq!(h.parent(0, lung), None);
        // Minneapolis-St. Paul style ancestors: both categories reachable.
        assert_eq!(h.ancestors_at(lung, 1).len(), 2);
    }

    #[test]
    fn uncovered_member_detected() {
        let h = Hierarchy::builder("geo")
            .level("city")
            .level("state")
            .edge("fresno", "california")
            .member("orphanville")
            .build();
        // member() applies to the *last* level (state); intern at city level
        // instead via a second builder:
        let h2 = Hierarchy::builder("geo")
            .level("city")
            .member("orphanville")
            .level("state")
            .edge("fresno", "california")
            .build()
            .unwrap();
        let orphan = h2.leaf().members().id_of("orphanville").unwrap();
        assert_eq!(h2.coverage_witness(0), Some(orphan));
        assert!(h.is_ok()); // the first shape is legal too, just different
    }

    #[test]
    fn incomplete_declaration() {
        let h = Hierarchy::builder("geo")
            .level("city")
            .level("state")
            .edge("san francisco", "california")
            .edge("los angeles", "california")
            .declare_incomplete()
            .build()
            .unwrap();
        assert!(!h.is_declared_complete_at(0));
    }

    #[test]
    fn id_dependency_flag() {
        let h = Hierarchy::builder("store location")
            .level("store")
            .id_dependent()
            .level("city")
            .edge("seattle/s#1", "seattle")
            .build()
            .unwrap();
        assert!(h.leaf().is_id_dependent());
        assert!(!h.level(1).is_id_dependent());
    }

    #[test]
    fn member_properties() {
        // Fig. 8 middle: video products with ISA-style properties.
        let h = Hierarchy::builder("product")
            .level("product")
            .property("vcr-100", "brand", "Sanyo")
            .property("vcr-100", "sound", "stereo")
            .level("category")
            .edge("vcr-100", "home VCR")
            .build()
            .unwrap();
        let id = h.leaf().members().id_of("vcr-100").unwrap();
        assert_eq!(h.property(0, id, "brand"), Some("Sanyo"));
        assert_eq!(h.property(0, id, "missing"), None);
    }

    #[test]
    fn truncate_below_reroots() {
        let h = time3();
        let month = h.truncate_below(1);
        assert_eq!(month.level_count(), 2);
        assert_eq!(month.leaf().name(), "month");
        let nov = month.leaf().members().id_of("1996-11").unwrap();
        let y = month.level(1).members().id_of("1996").unwrap();
        assert_eq!(month.parent(0, nov), Some(y));
    }

    #[test]
    fn children_inverse_of_parents() {
        let h = profession();
        let engineer = h.level(1).members().id_of("engineer").unwrap();
        let kids = h.children(1, engineer);
        assert_eq!(kids.len(), 2);
        for k in kids {
            assert_eq!(h.parent(0, k), Some(engineer));
        }
    }

    #[test]
    fn flat_hierarchy() {
        let h = Hierarchy::flat("sex", ["male", "female"]);
        assert_eq!(h.level_count(), 1);
        assert!(h.is_strict());
        assert_eq!(h.parents(0, 0), &[] as &[u32]);
    }

    #[test]
    fn builder_error_reported_at_build() {
        let err = Hierarchy::builder("bad").edge("a", "b").build();
        assert!(matches!(err, Err(Error::InvalidSchema(_))));
        let err2 = Hierarchy::builder("bad2").level("x").edge_at(3, "a", "b").build();
        assert!(matches!(err2, Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let h = Hierarchy::builder("h")
            .level("c")
            .level("p")
            .edge("a", "x")
            .edge("a", "x")
            .build()
            .unwrap();
        assert_eq!(h.parents(0, 0), &[0]);
    }

    #[test]
    fn validate_rejects_dangling_parent() {
        let mut h = profession();
        h.edges[0][0] = vec![99];
        assert!(h.validate().is_err());
    }
}
