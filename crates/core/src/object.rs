//! The Statistical Object: macro-data cells over a multidimensional space.
//!
//! This is the data type the paper's conclusion argues systems should
//! support natively. Cells are stored sparsely (coordinate vector →
//! aggregation states, one per measure); the dense physical organizations of
//! §6 live in `statcube-storage` and convert to/from this logical form.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::measure::{AggState, SummaryFunction};
use crate::schema::Schema;

/// A statistical object: a [`Schema`] plus sparse macro-data cells.
#[derive(Debug, Clone, PartialEq)]
pub struct StatisticalObject {
    schema: Schema,
    cells: HashMap<Box<[u32]>, Vec<AggState>>,
}

impl StatisticalObject {
    /// An object with no cells yet.
    pub fn empty(schema: Schema) -> Self {
        Self { schema, cells: HashMap::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of populated cells (not the cross-product size).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// True if no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Density of the object: populated cells / cross-product size.
    pub fn density(&self) -> f64 {
        let total = self.schema.cross_product_size();
        if total == 0 {
            0.0
        } else {
            self.cells.len() as f64 / total as f64
        }
    }

    /// Inserts (merges) a single observation for a single-measure object,
    /// addressed by member names.
    pub fn insert(&mut self, members: &[&str], value: f64) -> Result<()> {
        self.insert_row(members, &[value])
    }

    /// Inserts (merges) one observation per measure, addressed by member
    /// names.
    pub fn insert_row(&mut self, members: &[&str], values: &[f64]) -> Result<()> {
        let coords = self.schema.coords_of(members)?;
        self.insert_ids(&coords, values)
    }

    /// Inserts (merges) one observation per measure, addressed by
    /// coordinate ids. The fast path used by bulk loaders.
    pub fn insert_ids(&mut self, coords: &[u32], values: &[f64]) -> Result<()> {
        if values.len() != self.schema.measures().len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.measures().len(),
                got: values.len(),
            });
        }
        self.check_coords(coords)?;
        let states =
            self.cells.entry(coords.into()).or_insert_with(|| vec![AggState::EMPTY; values.len()]);
        for (s, &v) in states.iter_mut().zip(values) {
            s.merge(&AggState::from_value(v));
        }
        Ok(())
    }

    /// Merges pre-built aggregation states into a cell (used by operators
    /// and storage loaders).
    pub fn merge_states(&mut self, coords: &[u32], states: &[AggState]) -> Result<()> {
        if states.len() != self.schema.measures().len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.measures().len(),
                got: states.len(),
            });
        }
        self.check_coords(coords)?;
        let slot =
            self.cells.entry(coords.into()).or_insert_with(|| vec![AggState::EMPTY; states.len()]);
        for (dst, src) in slot.iter_mut().zip(states) {
            dst.merge(src);
        }
        Ok(())
    }

    fn check_coords(&self, coords: &[u32]) -> Result<()> {
        if coords.len() != self.schema.dim_count() {
            return Err(Error::ArityMismatch {
                expected: self.schema.dim_count(),
                got: coords.len(),
            });
        }
        for (c, d) in coords.iter().zip(self.schema.dimensions()) {
            if *c as usize >= d.cardinality() {
                return Err(Error::UnknownMember {
                    dimension: d.name().to_owned(),
                    member: format!("#{c}"),
                });
            }
        }
        Ok(())
    }

    /// Reads a cell's summary value (single-measure convenience), evaluated
    /// under the schema's summary function. `Ok(None)` if the cell is
    /// unpopulated.
    pub fn get(&self, members: &[&str]) -> Result<Option<f64>> {
        if self.schema.measures().len() != 1 {
            return Err(Error::MultipleMeasures(self.schema.measures().len()));
        }
        self.get_measure(members, 0)
    }

    /// Reads measure `m` of a cell, evaluated under its summary function.
    pub fn get_measure(&self, members: &[&str], m: usize) -> Result<Option<f64>> {
        let coords = self.schema.coords_of(members)?;
        Ok(self
            .cells
            .get(coords.as_slice())
            .and_then(|states| states[m].value(self.schema.function(m))))
    }

    /// Reads the raw aggregation states of a cell by coordinates.
    pub fn states_at(&self, coords: &[u32]) -> Option<&[AggState]> {
        self.cells.get(coords).map(Vec::as_slice)
    }

    /// Iterates over `(coordinates, states)` for all populated cells, in
    /// unspecified order.
    pub fn cells(&self) -> impl Iterator<Item = (&[u32], &[AggState])> {
        self.cells.iter().map(|(k, v)| (&**k, v.as_slice()))
    }

    /// Iterates over cells in coordinate-sorted order (deterministic output
    /// for rendering and tests).
    pub fn cells_sorted(&self) -> Vec<(&[u32], &[AggState])> {
        let mut v: Vec<_> = self.cells().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Total of measure `m` over all cells, under its summary function
    /// composition (sum of sums, merge of all states).
    pub fn grand_total(&self, m: usize) -> Option<f64> {
        let f = self.schema.function(m);
        let mut acc = AggState::EMPTY;
        for (_, states) in self.cells() {
            acc.merge(&states[m]);
        }
        acc.value(f)
    }

    /// Evaluates one cell's state under an explicit function (for marginals
    /// rendered with a different function, used by `table2d`).
    pub fn eval(&self, coords: &[u32], m: usize, f: SummaryFunction) -> Option<f64> {
        self.cells.get(coords).and_then(|s| s[m].value(f))
    }

    pub(crate) fn from_parts(schema: Schema, cells: HashMap<Box<[u32]>, Vec<AggState>>) -> Self {
        Self { schema, cells }
    }

    pub(crate) fn cells_mut(&mut self) -> &mut HashMap<Box<[u32]>, Vec<AggState>> {
        &mut self.cells
    }

    pub(crate) fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute};

    fn obj() -> StatisticalObject {
        let schema = Schema::builder("t")
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .dimension(Dimension::categorical("year", ["1991", "1992"]))
            .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
            .build()
            .unwrap();
        StatisticalObject::empty(schema)
    }

    #[test]
    fn insert_and_get() {
        let mut o = obj();
        o.insert(&["male", "1991"], 100.0).unwrap();
        o.insert(&["female", "1992"], 50.0).unwrap();
        assert_eq!(o.get(&["male", "1991"]).unwrap(), Some(100.0));
        assert_eq!(o.get(&["male", "1992"]).unwrap(), None);
        assert_eq!(o.cell_count(), 2);
        assert_eq!(o.density(), 0.5);
    }

    #[test]
    fn insert_merges() {
        let mut o = obj();
        o.insert(&["male", "1991"], 100.0).unwrap();
        o.insert(&["male", "1991"], 25.0).unwrap();
        assert_eq!(o.get(&["male", "1991"]).unwrap(), Some(125.0));
        let coords = o.schema().coords_of(&["male", "1991"]).unwrap();
        assert_eq!(o.states_at(&coords).unwrap()[0].count, 2);
    }

    #[test]
    fn arity_and_membership_errors() {
        let mut o = obj();
        assert!(o.insert(&["male"], 1.0).is_err());
        assert!(o.insert(&["alien", "1991"], 1.0).is_err());
        assert!(o.insert_row(&["male", "1991"], &[1.0, 2.0]).is_err());
        assert!(o.insert_ids(&[0, 9], &[1.0]).is_err());
    }

    #[test]
    fn grand_total_and_eval() {
        let mut o = obj();
        o.insert(&["male", "1991"], 10.0).unwrap();
        o.insert(&["female", "1991"], 30.0).unwrap();
        assert_eq!(o.grand_total(0), Some(40.0));
        let coords = o.schema().coords_of(&["female", "1991"]).unwrap();
        assert_eq!(o.eval(&coords, 0, SummaryFunction::Count), Some(1.0));
        assert_eq!(o.eval(&coords, 0, SummaryFunction::Avg), Some(30.0));
    }

    #[test]
    fn multi_measure_get_requires_index() {
        let schema = Schema::builder("t")
            .dimension(Dimension::categorical("state", ["AL"]))
            .measure(SummaryAttribute::new("pop", MeasureKind::Stock))
            .measure(SummaryAttribute::new("income", MeasureKind::ValuePerUnit))
            .function(SummaryFunction::Avg)
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert_row(&["AL"], &[1000.0, 35_000.0]).unwrap();
        assert!(o.get(&["AL"]).is_err());
        assert_eq!(o.get_measure(&["AL"], 0).unwrap(), Some(1000.0));
        assert_eq!(o.get_measure(&["AL"], 1).unwrap(), Some(35_000.0));
    }

    #[test]
    fn cells_sorted_is_deterministic() {
        let mut o = obj();
        o.insert(&["female", "1992"], 1.0).unwrap();
        o.insert(&["male", "1991"], 2.0).unwrap();
        o.insert(&["male", "1992"], 3.0).unwrap();
        let sorted = o.cells_sorted();
        let keys: Vec<&[u32]> = sorted.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![&[0u32, 0][..], &[0, 1], &[1, 1]]);
    }
}
