//! A subject directory of statistical objects (\[CS81\]: *"SUBJECT: A
//! Directory driven System for Organizing and Accessing Large Statistical
//! Databases"*, cited in §4.1 as the origin of the graph model).
//!
//! Statistical agencies hold thousands of summary datasets; SUBJECT's idea
//! was a *directory-driven* organization — a tree of subject areas whose
//! leaves are the datasets — plus search over the datasets' category and
//! summary attributes. [`Catalog`] is that directory for
//! [`StatisticalObject`]s.

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::object::StatisticalObject;

#[derive(Debug, Clone, Default)]
struct SubjectNode {
    children: BTreeMap<String, SubjectNode>,
    datasets: BTreeMap<String, StatisticalObject>,
}

/// A directory tree of subject areas holding statistical objects.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    root: SubjectNode,
}

/// A search hit: the dataset's subject path and name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Subject path, root-first.
    pub path: Vec<String>,
    /// Dataset name within its subject.
    pub name: String,
}

impl Hit {
    /// Renders as `economy/energy/oil production`.
    pub fn to_path_string(&self) -> String {
        let mut parts = self.path.clone();
        parts.push(self.name.clone());
        parts.join("/")
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn node_mut(&mut self, path: &[&str]) -> &mut SubjectNode {
        let mut cur = &mut self.root;
        for p in path {
            cur = cur.children.entry((*p).to_owned()).or_default();
        }
        cur
    }

    fn node(&self, path: &[&str]) -> Result<&SubjectNode> {
        let mut cur = &self.root;
        for p in path {
            cur = cur
                .children
                .get(*p)
                .ok_or_else(|| Error::ColumnError(format!("no subject `{p}` in catalog")))?;
        }
        Ok(cur)
    }

    /// Files a dataset under a subject path (intermediate subjects are
    /// created). Replacing an existing dataset of the same name is an
    /// error — directories are curated, not clobbered.
    pub fn insert(
        &mut self,
        path: &[&str],
        name: impl Into<String>,
        object: StatisticalObject,
    ) -> Result<()> {
        let name = name.into();
        let node = self.node_mut(path);
        if node.datasets.contains_key(&name) {
            return Err(Error::InvalidSchema(format!(
                "dataset `{name}` already filed under {path:?}"
            )));
        }
        node.datasets.insert(name, object);
        Ok(())
    }

    /// Fetches a dataset by subject path and name.
    pub fn get(&self, path: &[&str], name: &str) -> Result<&StatisticalObject> {
        self.node(path)?
            .datasets
            .get(name)
            .ok_or_else(|| Error::ColumnError(format!("no dataset `{name}` under {path:?}")))
    }

    /// Lists a subject's child subjects and datasets (both sorted).
    pub fn list(&self, path: &[&str]) -> Result<(Vec<&str>, Vec<&str>)> {
        let node = self.node(path)?;
        Ok((
            node.children.keys().map(String::as_str).collect(),
            node.datasets.keys().map(String::as_str).collect(),
        ))
    }

    /// Number of datasets in the whole catalog.
    pub fn len(&self) -> usize {
        fn count(n: &SubjectNode) -> usize {
            n.datasets.len() + n.children.values().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// True if no dataset is filed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn search(&self, pred: impl Fn(&StatisticalObject) -> bool) -> Vec<Hit> {
        fn rec(
            node: &SubjectNode,
            path: &mut Vec<String>,
            pred: &impl Fn(&StatisticalObject) -> bool,
            out: &mut Vec<Hit>,
        ) {
            for (name, obj) in &node.datasets {
                if pred(obj) {
                    out.push(Hit { path: path.clone(), name: name.clone() });
                }
            }
            for (name, child) in &node.children {
                path.push(name.clone());
                rec(child, path, pred, out);
                path.pop();
            }
        }
        let mut out = Vec::new();
        rec(&self.root, &mut Vec::new(), &pred, &mut out);
        out
    }

    /// Finds datasets having a dimension (category attribute) of the given
    /// name — the directory-driven access path: "which datasets break down
    /// by `sex`?"
    pub fn find_by_category(&self, dimension: &str) -> Vec<Hit> {
        self.search(|o| o.schema().dimensions().iter().any(|d| d.name() == dimension))
    }

    /// Finds datasets having a summary attribute of the given name.
    pub fn find_by_measure(&self, measure: &str) -> Vec<Hit> {
        self.search(|o| o.schema().measures().iter().any(|m| m.name() == measure))
    }

    /// Finds datasets whose title contains `keyword` (case-insensitive).
    pub fn find_by_keyword(&self, keyword: &str) -> Vec<Hit> {
        let kw = keyword.to_lowercase();
        self.search(|o| o.schema().name().to_lowercase().contains(&kw))
    }

    /// Renders the directory as an indented tree.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        fn rec(node: &SubjectNode, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            for (name, obj) in &node.datasets {
                let dims: Vec<&str> = obj.schema().dimensions().iter().map(|d| d.name()).collect();
                let _ = writeln!(out, "{pad}· {name} [{}]", dims.join(" × "));
            }
            for (name, child) in &node.children {
                let _ = writeln!(out, "{pad}{name}/");
                rec(child, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(&self.root, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute};
    use crate::schema::Schema;

    fn obj(title: &str, dims: &[&str], measure: &str) -> StatisticalObject {
        let mut b = Schema::builder(title);
        for d in dims {
            b = b.dimension(Dimension::categorical(*d, ["a", "b"]));
        }
        let schema = b.measure(SummaryAttribute::new(measure, MeasureKind::Flow)).build().unwrap();
        StatisticalObject::empty(schema)
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            &["socio-economic", "census"],
            "employment",
            obj("Employment in California", &["sex", "year", "profession"], "employment"),
        )
        .unwrap();
        c.insert(
            &["socio-economic", "census"],
            "income",
            obj("Average income", &["sex", "race", "state"], "income"),
        )
        .unwrap();
        c.insert(
            &["economy", "energy"],
            "oil production",
            obj("Crude oil production", &["product", "county", "month"], "barrels"),
        )
        .unwrap();
        c
    }

    #[test]
    fn insert_get_list() {
        let c = catalog();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        let o = c.get(&["socio-economic", "census"], "employment").unwrap();
        assert_eq!(o.schema().name(), "Employment in California");
        let (subjects, datasets) = c.list(&["socio-economic"]).unwrap();
        assert_eq!(subjects, vec!["census"]);
        assert!(datasets.is_empty());
        let (_, datasets) = c.list(&["socio-economic", "census"]).unwrap();
        assert_eq!(datasets, vec!["employment", "income"]);
        assert!(c.get(&["nope"], "x").is_err());
        assert!(c.get(&["economy"], "x").is_err());
    }

    #[test]
    fn duplicate_filing_rejected() {
        let mut c = catalog();
        assert!(c
            .insert(&["socio-economic", "census"], "employment", obj("dup", &["d"], "m"))
            .is_err());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn directory_driven_search() {
        let c = catalog();
        let by_sex = c.find_by_category("sex");
        assert_eq!(by_sex.len(), 2);
        assert!(by_sex.iter().all(|h| h.path[0] == "socio-economic"));
        let by_barrels = c.find_by_measure("barrels");
        assert_eq!(by_barrels.len(), 1);
        assert_eq!(by_barrels[0].to_path_string(), "economy/energy/oil production");
        let by_kw = c.find_by_keyword("CALIFORNIA");
        assert_eq!(by_kw.len(), 1);
        assert!(c.find_by_category("planet").is_empty());
    }

    #[test]
    fn render_shows_tree() {
        let s = catalog().render();
        assert!(s.contains("socio-economic/"));
        assert!(s.contains("  census/"));
        assert!(s.contains("· employment [sex × year × profession]"));
    }

    #[test]
    fn empty_catalog() {
        let c = Catalog::new();
        assert!(c.is_empty());
        assert!(c.find_by_category("x").is_empty());
        let (s, d) = c.list(&[]).unwrap();
        assert!(s.is_empty() && d.is_empty());
    }
}
