//! Micro-data, macro-data, and the completeness homomorphism (§3.3.3, §5.5,
//! Fig 16, \[MRS92\]).
//!
//! The SDB literature calls the base records about individuals the
//! **micro-data** and a summarized dataset the **macro-data**. A
//! [`MicroTable`] holds micro-data in columnar form; [`MicroTable::summarize`]
//! derives a [`StatisticalObject`] (macro-data).
//!
//! §5.5's completeness argument is a *homomorphism* (Fig 16): for every
//! relational-algebra operation on micro-data, some statistical-algebra
//! operation on the macro-data yields the same result as re-summarizing.
//! The `homomorphism_*` functions check the square commutes for
//! select/project/union against S-select/S-project/S-union; the E09 harness
//! and property tests exercise them over generated data.

use std::collections::HashMap;

use crate::dictionary::Dictionary;
use crate::dimension::{Dimension, DimensionRole};
use crate::error::{Error, Result};
use crate::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use crate::object::StatisticalObject;
use crate::ops;
use crate::schema::Schema;

/// Columnar micro-data: categorical columns (dictionary-encoded) plus
/// numeric columns, all of equal length.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroTable {
    cat_names: Vec<String>,
    cat_dicts: Vec<Dictionary>,
    cat_data: Vec<Vec<u32>>,
    num_names: Vec<String>,
    num_data: Vec<Vec<f64>>,
    len: usize,
}

impl MicroTable {
    /// Creates an empty table with the given categorical and numeric column
    /// names.
    pub fn new(categorical: &[&str], numeric: &[&str]) -> Self {
        Self {
            cat_names: categorical.iter().map(|s| (*s).to_owned()).collect(),
            cat_dicts: vec![Dictionary::new(); categorical.len()],
            cat_data: vec![Vec::new(); categorical.len()],
            num_names: numeric.iter().map(|s| (*s).to_owned()).collect(),
            num_data: vec![Vec::new(); numeric.len()],
            len: 0,
        }
    }

    /// Appends one micro record.
    pub fn push(&mut self, cats: &[&str], nums: &[f64]) -> Result<()> {
        if cats.len() != self.cat_names.len() || nums.len() != self.num_names.len() {
            return Err(Error::ArityMismatch {
                expected: self.cat_names.len() + self.num_names.len(),
                got: cats.len() + nums.len(),
            });
        }
        for (i, c) in cats.iter().enumerate() {
            let id = self.cat_dicts[i].intern(c);
            self.cat_data[i].push(id);
        }
        for (i, &v) in nums.iter().enumerate() {
            self.num_data[i].push(v);
        }
        self.len += 1;
        Ok(())
    }

    /// Number of micro records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Categorical column names.
    pub fn categorical_names(&self) -> &[String] {
        &self.cat_names
    }

    /// Numeric column names.
    pub fn numeric_names(&self) -> &[String] {
        &self.num_names
    }

    fn cat_index(&self, name: &str) -> Result<usize> {
        self.cat_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| Error::ColumnError(format!("no categorical column `{name}`")))
    }

    fn num_index(&self, name: &str) -> Result<usize> {
        self.num_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| Error::ColumnError(format!("no numeric column `{name}`")))
    }

    /// The dictionary of a categorical column.
    pub fn dictionary(&self, name: &str) -> Result<&Dictionary> {
        Ok(&self.cat_dicts[self.cat_index(name)?])
    }

    /// The categorical value of column `name` at `row`.
    pub fn cat_value(&self, name: &str, row: usize) -> Result<&str> {
        let c = self.cat_index(name)?;
        self.cat_dicts[c]
            .value_of(self.cat_data[c][row])
            .ok_or_else(|| Error::ColumnError(format!("row {row} out of range")))
    }

    /// The numeric value of column `name` at `row`.
    pub fn num_value(&self, name: &str, row: usize) -> Result<f64> {
        let c = self.num_index(name)?;
        self.num_data[c]
            .get(row)
            .copied()
            .ok_or_else(|| Error::ColumnError(format!("row {row} out of range")))
    }

    fn keep_rows(&self, keep: &[bool]) -> MicroTable {
        let mut out = MicroTable {
            cat_names: self.cat_names.clone(),
            cat_dicts: self.cat_dicts.clone(), // keep dictionaries stable
            cat_data: vec![Vec::new(); self.cat_names.len()],
            num_names: self.num_names.clone(),
            num_data: vec![Vec::new(); self.num_names.len()],
            len: 0,
        };
        for row in 0..self.len {
            if keep[row] {
                for (i, col) in self.cat_data.iter().enumerate() {
                    out.cat_data[i].push(col[row]);
                }
                for (i, col) in self.num_data.iter().enumerate() {
                    out.num_data[i].push(col[row]);
                }
                out.len += 1;
            }
        }
        out
    }

    /// Relational `SELECT` (restriction): rows where `column == value`.
    /// Dictionaries are kept stable so derived macro-data stays comparable.
    pub fn select_eq(&self, column: &str, value: &str) -> Result<MicroTable> {
        let c = self.cat_index(column)?;
        let id = self.cat_dicts[c].id_of(value);
        let keep: Vec<bool> = match id {
            Some(id) => self.cat_data[c].iter().map(|&x| x == id).collect(),
            None => vec![false; self.len],
        };
        Ok(self.keep_rows(&keep))
    }

    /// Relational `SELECT` with an arbitrary predicate over a numeric
    /// column.
    pub fn select_num(&self, column: &str, pred: impl Fn(f64) -> bool) -> Result<MicroTable> {
        let c = self.num_index(column)?;
        let keep: Vec<bool> = self.num_data[c].iter().map(|&v| pred(v)).collect();
        Ok(self.keep_rows(&keep))
    }

    /// Relational `UNION` (bag semantics: concatenation). Schemas must
    /// match by name; categorical ids are remapped into `self`'s
    /// dictionaries.
    pub fn union(&self, other: &MicroTable) -> Result<MicroTable> {
        if self.cat_names != other.cat_names || self.num_names != other.num_names {
            return Err(Error::SchemaMismatch("micro tables differ in columns".into()));
        }
        let mut out = self.clone();
        for row in 0..other.len {
            for (i, col) in other.cat_data.iter().enumerate() {
                let v = other.cat_dicts[i].value_of(col[row]).expect("valid id");
                let id = out.cat_dicts[i].intern(v);
                out.cat_data[i].push(id);
            }
            for (i, col) in other.num_data.iter().enumerate() {
                out.num_data[i].push(col[row]);
            }
            out.len += 1;
        }
        Ok(out)
    }

    /// Summarizes the micro-data into macro-data: groups by the given
    /// categorical columns and aggregates `measure` (a numeric column, or
    /// `None` to count records) under `function`.
    ///
    /// The resulting dimensions use the micro columns' full dictionaries,
    /// so objects summarized from subsets of the same table are
    /// cell-comparable — which is what makes the Fig 16 square checkable.
    pub fn summarize(
        &self,
        group_by: &[&str],
        measure: Option<&str>,
        function: SummaryFunction,
        kind: MeasureKind,
    ) -> Result<StatisticalObject> {
        if group_by.is_empty() {
            return Err(Error::InvalidSchema("summarize needs at least one group column".into()));
        }
        let group_idx: Vec<usize> =
            group_by.iter().map(|g| self.cat_index(g)).collect::<Result<_>>()?;
        let measure_idx = match measure {
            Some(m) => Some(self.num_index(m)?),
            None => None,
        };
        let mut builder =
            Schema::builder(format!("{} by {}", measure.unwrap_or("count"), group_by.join(" by ")));
        for (&gi, name) in group_idx.iter().zip(group_by) {
            let dict = &self.cat_dicts[gi];
            builder = builder.dimension(
                Dimension::categorical(*name, dict.values()).with_role(DimensionRole::Categorical),
            );
        }
        let schema = builder
            .measure(SummaryAttribute::new(measure.unwrap_or("count"), kind))
            .function(function)
            .build()?;
        let mut obj = StatisticalObject::empty(schema);
        let mut coords = vec![0u32; group_idx.len()];
        for row in 0..self.len {
            for (k, &gi) in group_idx.iter().enumerate() {
                coords[k] = self.cat_data[gi][row];
            }
            let v = match measure_idx {
                Some(mi) => self.num_data[mi][row],
                None => 1.0,
            };
            obj.insert_ids(&coords, &[v])?;
        }
        Ok(obj)
    }
}

/// Checks the Fig 16 square for relational **select** vs `S-select`:
/// `summarize(σ_{col=v}(micro))` must equal `S-select(summarize(micro))`.
pub fn homomorphism_select(
    micro: &MicroTable,
    group_by: &[&str],
    measure: Option<&str>,
    function: SummaryFunction,
    column: &str,
    value: &str,
) -> Result<bool> {
    let kind = MeasureKind::Flow;
    let left = micro.select_eq(column, value)?.summarize(group_by, measure, function, kind)?;
    let macro_data = micro.summarize(group_by, measure, function, kind)?;
    let right = ops::s_select(&macro_data, column, &[value]).or_else(|e| match e {
        // Value absent from the data: selection keeps nothing.
        Error::UnknownMember { .. } => {
            ops::s_select_ids(&macro_data, macro_data.schema().dim_index(column)?, &[])
        }
        other => Err(other),
    })?;
    Ok(objects_agree(&left, &right))
}

/// Checks the Fig 16 square for relational **project** (dropping a grouping
/// column before summarizing) vs `S-project`.
pub fn homomorphism_project(
    micro: &MicroTable,
    group_by: &[&str],
    measure: Option<&str>,
    function: SummaryFunction,
    drop: &str,
) -> Result<bool> {
    let kind = MeasureKind::Flow;
    let remaining: Vec<&str> = group_by.iter().copied().filter(|g| g != &drop).collect();
    let left = micro.summarize(&remaining, measure, function, kind)?;
    let macro_data = micro.summarize(group_by, measure, function, kind)?;
    let right = ops::s_project(&macro_data, drop)?;
    Ok(objects_agree(&left, &right))
}

/// Checks the Fig 16 square for relational **union** (bag) vs
/// `S-union(MergeStates)`.
pub fn homomorphism_union(
    a: &MicroTable,
    b: &MicroTable,
    group_by: &[&str],
    measure: Option<&str>,
    function: SummaryFunction,
) -> Result<bool> {
    let kind = MeasureKind::Flow;
    let left = a.union(b)?.summarize(group_by, measure, function, kind)?;
    let right = ops::s_union(
        &a.summarize(group_by, measure, function, kind)?,
        &b.summarize(group_by, measure, function, kind)?,
        ops::UnionPolicy::MergeStates,
    )?;
    Ok(objects_agree(&left, &right))
}

impl MicroTable {
    /// Relational "update": returns a copy with every value of categorical
    /// `column` replaced by `f(value)` — how micro-data is reclassified to
    /// a coarser category before summarizing (the left path of the roll-up
    /// homomorphism square).
    pub fn map_column(&self, column: &str, f: impl Fn(&str) -> String) -> Result<MicroTable> {
        let c = self.cat_index(column)?;
        let mut out = MicroTable {
            cat_names: self.cat_names.clone(),
            cat_dicts: self.cat_dicts.clone(),
            cat_data: self.cat_data.clone(),
            num_names: self.num_names.clone(),
            num_data: self.num_data.clone(),
            len: self.len,
        };
        let mut dict = Dictionary::new();
        let mapped: Vec<u32> = self.cat_data[c]
            .iter()
            .map(|&id| {
                let v = self.cat_dicts[c].value_of(id).expect("valid id");
                dict.intern(&f(v))
            })
            .collect();
        out.cat_dicts[c] = dict;
        out.cat_data[c] = mapped;
        Ok(out)
    }
}

/// Checks the Fig 16 square for **roll-up**: reclassifying the micro-data
/// to the hierarchy's parent level and summarizing must equal
/// `S-aggregation` of the macro-data through the same hierarchy.
///
/// `hierarchy` must be a two-level hierarchy classifying every value the
/// micro-data's `column` carries.
pub fn homomorphism_aggregate(
    micro: &MicroTable,
    group_by: &[&str],
    measure: Option<&str>,
    function: SummaryFunction,
    column: &str,
    hierarchy: &crate::hierarchy::Hierarchy,
) -> Result<bool> {
    use crate::hierarchy::Hierarchy;

    let kind = MeasureKind::Flow;
    let parent_of = |v: &str| -> Result<String> {
        let leaf = hierarchy.leaf().members().id_of(v).ok_or_else(|| Error::UnknownMember {
            dimension: column.to_owned(),
            member: v.to_owned(),
        })?;
        let p = hierarchy.parent(0, leaf).ok_or_else(|| {
            Error::InvalidSchema(format!("`{v}` lacks a unique parent (non-strict?)"))
        })?;
        Ok(hierarchy.level(1).members().value_of(p).expect("valid parent").to_owned())
    };

    // Left path: reclassify micro-data, then summarize. Pre-resolve every
    // dictionary value so an uncovered member is a clean error, not a
    // panic inside the mapping closure.
    let c_dict = micro.dictionary(column)?;
    let parent_names: Vec<String> = c_dict.values().map(parent_of).collect::<Result<_>>()?;
    let mapped = micro.map_column(column, |v| {
        parent_names[c_dict.id_of(v).expect("dictionary value") as usize].clone()
    })?;
    let left = mapped.summarize(group_by, measure, function, kind)?;

    // Right path: summarize, then S-aggregate the macro-data. The macro
    // object's dimension is flat, so rebuild it classified by a hierarchy
    // whose leaf order matches the macro dictionary.
    let macro_obj = micro.summarize(group_by, measure, function, kind)?;
    let d = macro_obj.schema().dim_index(column)?;
    let macro_dim = &macro_obj.schema().dimensions()[d];
    let parent_level_name = hierarchy.level(1).name().to_owned();
    let mut b = Hierarchy::builder(hierarchy.name())
        .level(hierarchy.leaf().name())
        .level(&parent_level_name);
    for v in macro_dim.members().values() {
        let p = parent_of(v)?;
        b = b.edge(v, &p);
    }
    let classified = Dimension::classified(column, b.build()?).with_role(macro_dim.role());
    let mut dims = macro_obj.schema().dimensions().to_vec();
    dims[d] = classified;
    let schema = Schema::builder(macro_obj.schema().name());
    let mut schema = dims.into_iter().fold(schema, |s, dim| s.dimension(dim));
    for (m, f) in macro_obj.schema().measures().iter().zip(macro_obj.schema().functions()) {
        schema = schema.measure(m.clone()).function(*f);
    }
    let mut rebuilt = StatisticalObject::empty(schema.build()?);
    for (coords, states) in macro_obj.cells() {
        rebuilt.merge_states(coords, states)?;
    }
    let right = ops::s_aggregate(&rebuilt, column, &parent_level_name)?;
    Ok(objects_agree(&left, &right))
}

/// Compares two statistical objects cell-wise *by member names* and
/// evaluated summary values (their dictionaries may order members
/// differently).
pub fn objects_agree(a: &StatisticalObject, b: &StatisticalObject) -> bool {
    let functions = a.schema().functions();
    if functions != b.schema().functions() {
        return false;
    }
    let key_of = |o: &StatisticalObject, coords: &[u32]| -> Option<Vec<String>> {
        o.schema().names_of(coords).ok().map(|ns| ns.iter().map(|s| (*s).to_owned()).collect())
    };
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    let collect = |o: &StatisticalObject| -> Option<HashMap<Vec<String>, Vec<Option<f64>>>> {
        let mut m = HashMap::new();
        for (coords, states) in o.cells() {
            let vals: Vec<Option<f64>> =
                states.iter().zip(functions).map(|(s, &f)| s.value(f)).collect();
            m.insert(key_of(o, coords)?, vals);
        }
        Some(m)
    };
    let (Some(ma), Some(mb)) = (collect(a), collect(b)) else { return false };
    if ma.len() != mb.len() {
        return false;
    }
    for (k, va) in &ma {
        match mb.get(k) {
            Some(vb) => {
                for (x, y) in va.iter().zip(vb) {
                    match (x, y) {
                        (Some(x), Some(y)) if close(*x, *y) => {}
                        (None, None) => {}
                        _ => return false,
                    }
                }
            }
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn census() -> MicroTable {
        let mut t = MicroTable::new(&["state", "sex", "race"], &["income"]);
        let rows: &[(&str, &str, &str, f64)] = &[
            ("AL", "male", "white", 30_000.0),
            ("AL", "male", "black", 28_000.0),
            ("AL", "female", "white", 27_000.0),
            ("CA", "male", "white", 45_000.0),
            ("CA", "female", "white", 44_000.0),
            ("CA", "female", "black", 41_000.0),
            ("CA", "female", "black", 39_000.0),
        ];
        for (s, x, r, v) in rows {
            t.push(&[s, x, r], &[*v]).unwrap();
        }
        t
    }

    #[test]
    fn push_and_access() {
        let t = census();
        assert_eq!(t.len(), 7);
        assert_eq!(t.cat_value("state", 3).unwrap(), "CA");
        assert_eq!(t.num_value("income", 0).unwrap(), 30_000.0);
        assert!(t.cat_value("planet", 0).is_err());
        assert!(t.num_value("age", 0).is_err());
    }

    #[test]
    fn summarize_count_and_sum() {
        let t = census();
        let counts =
            t.summarize(&["state"], None, SummaryFunction::Count, MeasureKind::Flow).unwrap();
        assert_eq!(counts.get(&["AL"]).unwrap(), Some(3.0));
        assert_eq!(counts.get(&["CA"]).unwrap(), Some(4.0));

        let sums = t
            .summarize(&["state", "sex"], Some("income"), SummaryFunction::Sum, MeasureKind::Flow)
            .unwrap();
        assert_eq!(sums.get(&["CA", "female"]).unwrap(), Some(124_000.0));
    }

    #[test]
    fn select_filters_micro_rows() {
        let t = census();
        let ca = t.select_eq("state", "CA").unwrap();
        assert_eq!(ca.len(), 4);
        // Dictionaries stay stable: "AL" still has an id in the filtered
        // table even though no row carries it.
        assert!(ca.dictionary("state").unwrap().id_of("AL").is_some());
        let rich = t.select_num("income", |v| v > 40_000.0).unwrap();
        assert_eq!(rich.len(), 3);
        assert!(t.select_eq("state", "XX").unwrap().is_empty());
    }

    #[test]
    fn union_remaps_dictionaries() {
        let mut a = MicroTable::new(&["state"], &["income"]);
        a.push(&["AL"], &[1.0]).unwrap();
        let mut b = MicroTable::new(&["state"], &["income"]);
        b.push(&["CA"], &[2.0]).unwrap();
        b.push(&["AL"], &[3.0]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.cat_value("state", 1).unwrap(), "CA");
        assert_eq!(u.cat_value("state", 2).unwrap(), "AL");

        let mismatched = MicroTable::new(&["county"], &["income"]);
        assert!(a.union(&mismatched).is_err());
    }

    #[test]
    fn fig16_select_square_commutes() {
        let t = census();
        for f in SummaryFunction::ALL {
            assert!(
                homomorphism_select(&t, &["state", "sex"], Some("income"), f, "sex", "female")
                    .unwrap(),
                "select square failed for {f}"
            );
        }
        // Selecting an absent value also commutes (empty results).
        assert!(homomorphism_select(
            &t,
            &["state"],
            Some("income"),
            SummaryFunction::Sum,
            "state",
            "TX"
        )
        .unwrap());
    }

    #[test]
    fn fig16_project_square_commutes() {
        let t = census();
        for f in SummaryFunction::ALL {
            assert!(
                homomorphism_project(&t, &["state", "sex", "race"], Some("income"), f, "race")
                    .unwrap(),
                "project square failed for {f}"
            );
        }
    }

    #[test]
    fn fig16_union_square_commutes() {
        let t = census();
        let a = t.select_eq("state", "AL").unwrap();
        let b = t.select_eq("state", "CA").unwrap();
        for f in SummaryFunction::ALL {
            assert!(
                homomorphism_union(&a, &b, &["state", "sex"], Some("income"), f).unwrap(),
                "union square failed for {f}"
            );
        }
    }

    #[test]
    fn map_column_reclassifies() {
        let t = census();
        let mapped = t.map_column("state", |s| format!("region-{s}")).unwrap();
        assert_eq!(mapped.len(), t.len());
        assert_eq!(mapped.cat_value("state", 0).unwrap(), "region-AL");
        // Other columns untouched.
        assert_eq!(mapped.cat_value("sex", 0).unwrap(), t.cat_value("sex", 0).unwrap());
        assert!(t.map_column("planet", |s| s.to_owned()).is_err());
    }

    #[test]
    fn fig16_aggregate_square_commutes() {
        use crate::hierarchy::Hierarchy;
        let t = census();
        let geo = Hierarchy::builder("geo")
            .level("state")
            .level("region")
            .edge("AL", "south")
            .edge("CA", "west")
            .build()
            .unwrap();
        for f in SummaryFunction::ALL {
            assert!(
                homomorphism_aggregate(&t, &["state", "sex"], Some("income"), f, "state", &geo)
                    .unwrap(),
                "aggregate square failed for {f}"
            );
        }
        // A hierarchy not covering a member errors rather than mis-counts.
        let partial = Hierarchy::builder("geo")
            .level("state")
            .level("region")
            .edge("AL", "south")
            .build()
            .unwrap();
        assert!(homomorphism_aggregate(
            &t,
            &["state"],
            Some("income"),
            SummaryFunction::Sum,
            "state",
            &partial
        )
        .is_err());
    }

    #[test]
    fn objects_agree_detects_differences() {
        let t = census();
        let a = t
            .summarize(&["state"], Some("income"), SummaryFunction::Sum, MeasureKind::Flow)
            .unwrap();
        let mut b = a.clone();
        b.insert(&["AL"], 1.0).unwrap();
        assert!(objects_agree(&a, &a));
        assert!(!objects_agree(&a, &b));
    }
}
