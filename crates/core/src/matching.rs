//! Classification matching (§5.7, Fig 17).
//!
//! Merging statistical results from different sources fails when their
//! category schemes disagree. The paper shows two shapes:
//!
//! * **non-overlapping granularities** — two age-group classifications with
//!   different bin boundaries; analysts interpolate "in a way that is not
//!   documented". [`IntervalClassification`] makes the interpolation a
//!   first-class, *documented* operation: [`realign`] reapportions an
//!   interval-classified dimension onto another boundary set under an
//!   explicit uniform-within-bin assumption and returns the method record
//!   with the data.
//! * **time-varying categories** — the industry list gains "internet" in
//!   1991. [`VersionedClassification`] tracks category sets per version and
//!   [`VersionedClassification::diff`] reports exactly which categories are
//!   comparable across versions.

use std::collections::BTreeMap;

use crate::dimension::Dimension;
use crate::error::{Error, Result};
use crate::measure::AggState;
use crate::object::StatisticalObject;

/// A classification of a numeric axis into labeled half-open intervals
/// `[lo, hi)`, e.g. age groups.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalClassification {
    name: String,
    /// `(lo, hi, label)`, sorted by `lo`, non-overlapping.
    bins: Vec<(f64, f64, String)>,
}

impl IntervalClassification {
    /// Builds a classification from `(lo, hi, label)` bins. Bins must be
    /// non-empty, non-overlapping, and sorted ascending.
    pub fn new(
        name: impl Into<String>,
        bins: impl IntoIterator<Item = (f64, f64, String)>,
    ) -> Result<Self> {
        let bins: Vec<(f64, f64, String)> = bins.into_iter().collect();
        if bins.is_empty() {
            return Err(Error::InvalidSchema("interval classification needs bins".into()));
        }
        for w in bins.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(Error::InvalidSchema(format!(
                    "bins `{}` and `{}` overlap",
                    w[0].2, w[1].2
                )));
            }
        }
        for (lo, hi, label) in &bins {
            if lo >= hi {
                return Err(Error::InvalidSchema(format!("bin `{label}` is empty")));
            }
        }
        Ok(Self { name: name.into(), bins })
    }

    /// Convenience: consecutive bins from boundary points
    /// (`[b0,b1), [b1,b2), …`) labeled `"lo-hi"`.
    pub fn from_boundaries(name: impl Into<String>, bounds: &[f64]) -> Result<Self> {
        if bounds.len() < 2 {
            return Err(Error::InvalidSchema("need at least two boundaries".into()));
        }
        let bins = bounds
            .windows(2)
            .map(|w| (w[0], w[1], format!("{}-{}", w[0], w[1])))
            .collect::<Vec<_>>();
        Self::new(name, bins)
    }

    /// The classification's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bins, in order.
    pub fn bins(&self) -> &[(f64, f64, String)] {
        &self.bins
    }

    /// Bin labels, in order.
    pub fn labels(&self) -> Vec<&str> {
        self.bins.iter().map(|(_, _, l)| l.as_str()).collect()
    }

    /// The *combined* classification of Fig 17: bins split at the union of
    /// both boundary sets, so each result bin lies inside exactly one bin of
    /// each input.
    pub fn combine(&self, other: &IntervalClassification) -> Result<IntervalClassification> {
        let mut bounds: Vec<f64> = Vec::new();
        for (lo, hi, _) in self.bins.iter().chain(&other.bins) {
            bounds.push(*lo);
            bounds.push(*hi);
        }
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let bins = bounds
            .windows(2)
            .filter(|w| {
                // Keep only spans covered by at least one input.
                let mid = (w[0] + w[1]) / 2.0;
                self.bins.iter().chain(&other.bins).any(|(lo, hi, _)| *lo <= mid && mid < *hi)
            })
            .map(|w| (w[0], w[1], format!("{}-{}", w[0], w[1])))
            .collect::<Vec<_>>();
        IntervalClassification::new(format!("{} ∩ {}", self.name, other.name), bins)
    }

    /// Fractional overlap of `self`'s bin `i` with `other`'s bin `j`,
    /// relative to the width of bin `i` (the uniform-density assumption).
    pub fn overlap_fraction(&self, i: usize, other: &IntervalClassification, j: usize) -> f64 {
        let (alo, ahi, _) = &self.bins[i];
        let (blo, bhi, _) = &other.bins[j];
        let lo = alo.max(*blo);
        let hi = ahi.min(*bhi);
        if hi <= lo {
            0.0
        } else {
            (hi - lo) / (ahi - alo)
        }
    }
}

/// Documentation of how a realignment was computed — the "metadata of the
/// methods used" the paper insists must be kept with the database.
#[derive(Debug, Clone, PartialEq)]
pub struct RealignReport {
    /// Source classification name.
    pub from: String,
    /// Target classification name.
    pub to: String,
    /// The interpolation assumption applied.
    pub method: String,
    /// Per-target-bin provenance: `(target label, Vec<(source label,
    /// fraction)>)`.
    pub provenance: Vec<(String, Vec<(String, f64)>)>,
}

/// Reapportions dimension `dim` of `obj` — whose members must be exactly
/// `from`'s bin labels — onto the bins of `to`, assuming values are
/// uniformly distributed within each source bin. Returns the realigned
/// object and a [`RealignReport`] documenting the interpolation.
pub fn realign(
    obj: &StatisticalObject,
    dim: &str,
    from: &IntervalClassification,
    to: &IntervalClassification,
) -> Result<(StatisticalObject, RealignReport)> {
    let d = obj.schema().dim_index(dim)?;
    let dim_ref = &obj.schema().dimensions()[d];
    // Map dimension member id -> `from` bin index.
    let mut member_bin = Vec::with_capacity(dim_ref.cardinality());
    for v in dim_ref.members().values() {
        match from.bins.iter().position(|(_, _, l)| l == v) {
            Some(i) => member_bin.push(i),
            None => {
                return Err(Error::UnknownMember {
                    dimension: format!("{dim} (classification {})", from.name),
                    member: v.to_owned(),
                })
            }
        }
    }
    // fractions[i][j]: share of from-bin i flowing into to-bin j.
    let fractions: Vec<Vec<f64>> = (0..from.bins.len())
        .map(|i| (0..to.bins.len()).map(|j| from.overlap_fraction(i, to, j)).collect())
        .collect();

    let new_dim = Dimension::categorical(dim_ref.name(), to.labels()).with_role(dim_ref.role());
    let mut dims = obj.schema().dimensions().to_vec();
    dims[d] = new_dim;
    let schema = obj.schema().with_dimensions(dims);
    let mut out = StatisticalObject::empty(schema);
    for (coords, states) in obj.cells() {
        let i = member_bin[coords[d] as usize];
        for (j, &w) in fractions[i].iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            let mut key = coords.to_vec();
            key[d] = j as u32;
            let estimated: Vec<AggState> = states
                .iter()
                .map(|s| AggState::from_sum_count(s.sum * w, (s.count as f64 * w).round() as u64))
                .collect();
            out.merge_states(&key, &estimated)?;
        }
    }

    let provenance = to
        .bins
        .iter()
        .enumerate()
        .map(|(j, (_, _, tl))| {
            let sources = from
                .bins
                .iter()
                .enumerate()
                .filter(|(i, _)| fractions[*i][j] > 0.0)
                .map(|(i, (_, _, sl))| (sl.clone(), fractions[i][j]))
                .collect();
            (tl.clone(), sources)
        })
        .collect();
    let report = RealignReport {
        from: from.name.clone(),
        to: to.name.clone(),
        method: "uniform-within-bin linear interpolation".to_owned(),
        provenance,
    };
    Ok((out, report))
}

/// The difference between two category versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionDiff {
    /// Categories present in both versions (directly comparable).
    pub retained: Vec<String>,
    /// Categories only in the later version (e.g. "internet" in 1991).
    pub added: Vec<String>,
    /// Categories only in the earlier version.
    pub removed: Vec<String>,
}

/// A classification whose category set varies over time (Fig 17, bottom).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VersionedClassification {
    /// version key (e.g. year) → ordered category list.
    versions: BTreeMap<String, Vec<String>>,
}

impl VersionedClassification {
    /// An empty versioned classification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the category list of one version.
    pub fn add_version<I, S>(&mut self, version: impl Into<String>, categories: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.versions.insert(version.into(), categories.into_iter().map(Into::into).collect());
    }

    /// Version keys, ascending.
    pub fn versions(&self) -> impl Iterator<Item = &str> {
        self.versions.keys().map(String::as_str)
    }

    /// The categories of a version.
    pub fn categories(&self, version: &str) -> Result<&[String]> {
        self.versions
            .get(version)
            .map(Vec::as_slice)
            .ok_or_else(|| Error::ColumnError(format!("no version `{version}`")))
    }

    /// Compares two versions.
    pub fn diff(&self, earlier: &str, later: &str) -> Result<VersionDiff> {
        let a = self.categories(earlier)?;
        let b = self.categories(later)?;
        Ok(VersionDiff {
            retained: a.iter().filter(|c| b.contains(c)).cloned().collect(),
            added: b.iter().filter(|c| !a.contains(c)).cloned().collect(),
            removed: a.iter().filter(|c| !b.contains(c)).cloned().collect(),
        })
    }

    /// The union of all versions' categories (ordered by first appearance
    /// across ascending versions) — the domain a cross-version summary must
    /// use.
    pub fn union_categories(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for cats in self.versions.values() {
            for c in cats {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
        }
        out
    }

    /// True if `category` existed in `version` — summaries must not treat a
    /// missing category as a zero observation.
    pub fn existed(&self, category: &str, version: &str) -> bool {
        self.versions.get(version).map(|c| c.iter().any(|x| x == category)).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute};
    use crate::schema::Schema;

    fn db1() -> IntervalClassification {
        // Fig 17 left: 0-5, 6-10, 11-15, 16-20 → model as [0,6),[6,11),[11,16),[16,21)
        IntervalClassification::from_boundaries("db1 age groups", &[0.0, 6.0, 11.0, 16.0, 21.0])
            .unwrap()
    }

    fn db2() -> IntervalClassification {
        // Fig 17 right: 0-1, 2-10, 11-20 → [0,2),[2,11),[11,21)
        IntervalClassification::from_boundaries("db2 age groups", &[0.0, 2.0, 11.0, 21.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(IntervalClassification::from_boundaries("x", &[0.0]).is_err());
        assert!(IntervalClassification::new(
            "x",
            [(0.0, 5.0, "a".to_owned()), (3.0, 8.0, "b".to_owned())]
        )
        .is_err());
        assert!(IntervalClassification::new("x", [(5.0, 5.0, "empty".to_owned())]).is_err());
        assert!(IntervalClassification::new("x", Vec::new()).is_err());
    }

    #[test]
    fn combine_splits_at_all_boundaries() {
        let c = db1().combine(&db2()).unwrap();
        let labels = c.labels();
        // Boundaries: 0,2,6,11,16,21 → 5 bins.
        assert_eq!(labels, vec!["0-2", "2-6", "6-11", "11-16", "16-21"]);
    }

    #[test]
    fn overlap_fractions_partition_unity() {
        let a = db1();
        let b = db2();
        for i in 0..a.bins().len() {
            let total: f64 = (0..b.bins().len()).map(|j| a.overlap_fraction(i, &b, j)).sum();
            assert!((total - 1.0).abs() < 1e-12, "bin {i} fractions sum to {total}");
        }
    }

    fn age_object(classes: &IntervalClassification, values: &[f64]) -> StatisticalObject {
        let schema = Schema::builder("population by age group")
            .dimension(Dimension::categorical("age group", classes.labels()))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        for (label, &v) in classes.labels().iter().zip(values) {
            o.insert(&[label], v).unwrap();
        }
        o
    }

    #[test]
    fn realign_preserves_totals_and_documents_method() {
        let from = db1();
        let to = db2();
        let o = age_object(&from, &[600.0, 500.0, 500.0, 500.0]);
        let (aligned, report) = realign(&o, "age group", &from, &to).unwrap();
        // Total population is conserved by reapportioning.
        assert!((aligned.grand_total(0).unwrap() - 2100.0).abs() < 1e-9);
        // [0,2) gets 2/6 of the [0,6) bin = 200.
        assert!((aligned.get(&["0-2"]).unwrap().unwrap() - 200.0).abs() < 1e-9);
        // [2,11): 4/6 of [0,6) = 400, plus all of [6,11) = 500 → 900.
        assert!((aligned.get(&["2-11"]).unwrap().unwrap() - 900.0).abs() < 1e-9);
        // [11,21): 500 + 500 = 1000.
        assert!((aligned.get(&["11-21"]).unwrap().unwrap() - 1000.0).abs() < 1e-9);
        assert_eq!(report.method, "uniform-within-bin linear interpolation");
        let (label, sources) = &report.provenance[1];
        assert_eq!(label, "2-11");
        assert_eq!(sources.len(), 2);
    }

    #[test]
    fn realign_identity_is_noop() {
        let c = db1();
        let o = age_object(&c, &[1.0, 2.0, 3.0, 4.0]);
        let (aligned, _) = realign(&o, "age group", &c, &c).unwrap();
        for l in c.labels() {
            assert_eq!(aligned.get(&[l]).unwrap(), o.get(&[l]).unwrap());
        }
    }

    #[test]
    fn realign_rejects_unknown_members() {
        let schema = Schema::builder("x")
            .dimension(Dimension::categorical("age group", ["weird"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .build()
            .unwrap();
        let o = StatisticalObject::empty(schema);
        assert!(realign(&o, "age group", &db1(), &db2()).is_err());
    }

    #[test]
    fn versioned_classification_diff() {
        // Fig 17 bottom: internet added in 1991.
        let mut v = VersionedClassification::new();
        v.add_version("1990", ["agriculture", "automobiles"]);
        v.add_version("1991", ["agriculture", "automobiles", "internet"]);
        let d = v.diff("1990", "1991").unwrap();
        assert_eq!(d.added, vec!["internet"]);
        assert!(d.removed.is_empty());
        assert_eq!(d.retained.len(), 2);
        assert!(v.existed("internet", "1991"));
        assert!(!v.existed("internet", "1990"));
        assert_eq!(v.union_categories(), vec!["agriculture", "automobiles", "internet"]);
        assert!(v.diff("1990", "2050").is_err());
    }
}
