//! Higher-level statistical operations (§5.6, \[OR95\]).
//!
//! Database systems traditionally provide only count/sum/avg/min/max; for
//! standard deviation, percentiles, trimmed means, and sampling one had to
//! ship the data to an external statistical package. The paper argues the
//! only compelling reason to push such functions *into* the database is
//! efficiency — sampling being the flagship example, since extracting a
//! large collection only to sample it outside is wasteful. These
//! implementations are what the engine offers in-process; experiment E20
//! measures the in-engine vs. extract-then-sample difference.

/// Streaming mean/variance accumulator (Welford's algorithm): numerically
/// stable single-pass standard deviation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance (divide by n).
    pub fn variance_population(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample variance (divide by n−1).
    pub fn variance_sample(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn stddev_sample(&self) -> Option<f64> {
        self.variance_sample().map(f64::sqrt)
    }

    /// Population standard deviation.
    pub fn stddev_population(&self) -> Option<f64> {
        self.variance_population().map(f64::sqrt)
    }

    /// Merges another accumulator (parallel/Chan et al. combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        *self = Welford { n, mean, m2 };
    }
}

/// Linear-interpolation percentile (the common "type 7" estimator).
/// `p` in `[0, 100]`. Returns `None` for empty input or out-of-range `p`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Trimmed mean: mean after discarding the lowest and highest `trim`
/// fraction of observations (`trim` in `[0, 0.5)`). The paper's example of
/// a statistic databases should hand off or support ("find the trimmed
/// means over a sample of the data").
pub fn trimmed_mean(values: &[f64], trim: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..0.5).contains(&trim) {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let cut = (v.len() as f64 * trim).floor() as usize;
    let kept = &v[cut..v.len() - cut];
    if kept.is_empty() {
        return None;
    }
    Some(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// A small deterministic PRNG (SplitMix64) so core stays dependency-free
/// while sampling remains reproducible under a caller-supplied seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        // Rejection-free modulo is fine here: n is far below 2^64 in all
        // engine uses, so bias is negligible for simulation purposes.
        self.next_u64() % n.max(1)
    }
}

/// Reservoir sampling (Algorithm R, \[OR95\]'s simple-random-sample workhorse):
/// a uniform `k`-sample from a stream of unknown length, in one pass.
pub fn reservoir_sample<T, I>(items: I, k: usize, seed: u64) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut rng = SplitMix64::new(seed);
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, item) in items.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.next_below(i as u64 + 1) as usize;
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.stddev_population().unwrap() - 2.0).abs() < 1e-12);
        let sample_var = xs.iter().map(|x| (x - 5.0f64).powi(2)).sum::<f64>() / 7.0;
        assert!((w.variance_sample().unwrap() - sample_var).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance_sample(), None);
        let mut w1 = Welford::new();
        w1.push(3.0);
        assert_eq!(w1.mean(), Some(3.0));
        assert_eq!(w1.variance_population(), Some(0.0));
        assert_eq!(w1.variance_sample(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.m2 - whole.m2).abs() < 1e-6);
        // Merging an empty accumulator is a no-op in both directions.
        let mut e = Welford::new();
        e.merge(&whole);
        assert!((e.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        whole.merge(&Welford::new());
        assert_eq!(whole.count(), 100);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(percentile(&xs, 25.0), Some(1.75));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&xs, 101.0), None);
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn trimmed_mean_discards_tails() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        // 20% trim drops one value from each end.
        assert_eq!(trimmed_mean(&xs, 0.2), Some(3.0));
        // 0 trim is the plain mean.
        assert_eq!(trimmed_mean(&xs, 0.0), Some(22.0));
        assert_eq!(trimmed_mean(&[], 0.1), None);
        assert_eq!(trimmed_mean(&xs, 0.5), None);
    }

    #[test]
    fn reservoir_is_right_size_and_deterministic() {
        let s1 = reservoir_sample(0..1000, 10, 42);
        let s2 = reservoir_sample(0..1000, 10, 42);
        let s3 = reservoir_sample(0..1000, 10, 43);
        assert_eq!(s1.len(), 10);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        // Stream shorter than k: everything kept.
        assert_eq!(reservoir_sample(0..3, 10, 1).len(), 3);
        assert!(reservoir_sample(0..100, 0, 1).is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Each of 100 items should appear in a 10-sample with p = 0.1;
        // over 2000 trials every item lands between loose bounds.
        let mut hits = [0u32; 100];
        for trial in 0..2000u64 {
            for &x in &reservoir_sample(0..100u32, 10, trial) {
                hits[x as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((120..=280).contains(&h), "item {i} drawn {h} times");
        }
    }
}
