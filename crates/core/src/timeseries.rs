//! Time-series support (§3.2(ii)).
//!
//! "The most obvious feature of a stock market database is its temporal
//! dimension. It is usually represented as a time series … A classification
//! hierarchy over time may exist such as for generating weekly or monthly
//! averages, highs and lows." Weekly averages/highs/lows come free from
//! [`crate::ops::s_aggregate`] because cells carry full
//! [`AggState`](crate::measure::AggState)s; this module adds what roll-up
//! cannot express: series extraction along the temporal axis, moving
//! windows, and period-over-period change.

use crate::dimension::DimensionRole;
use crate::error::{Error, Result};
use crate::measure::SummaryFunction;
use crate::object::StatisticalObject;

/// Extracts the series of measure `m` along temporal dimension `dim`, with
/// every other dimension fixed by `fixed` (`(dimension, member)` pairs).
/// The order is the dimension's member (insertion) order — the time order
/// for generated and loaded calendars. Missing observations are `None`.
pub fn series(
    obj: &StatisticalObject,
    dim: &str,
    fixed: &[(&str, &str)],
    m: usize,
    f: SummaryFunction,
) -> Result<Vec<Option<f64>>> {
    let d = obj.schema().dim_index(dim)?;
    if obj.schema().dimensions()[d].role() != DimensionRole::Temporal {
        return Err(Error::InvalidSchema(format!("dimension `{dim}` is not temporal")));
    }
    if fixed.len() + 1 != obj.schema().dim_count() {
        return Err(Error::InvalidSchema(
            "series() needs every non-temporal dimension fixed".into(),
        ));
    }
    let mut coords = vec![0u32; obj.schema().dim_count()];
    for (fd, member) in fixed {
        let fi = obj.schema().dim_index(fd)?;
        if fi == d {
            return Err(Error::InvalidSchema(format!("`{dim}` is the series axis")));
        }
        coords[fi] = obj.schema().dimensions()[fi].member_id(member)?;
    }
    let card = obj.schema().dimensions()[d].cardinality();
    let mut out = Vec::with_capacity(card);
    for t in 0..card as u32 {
        coords[d] = t;
        out.push(obj.eval(&coords, m, f));
    }
    Ok(out)
}

/// Simple moving average over a window of `window` observations (trailing,
/// missing values skipped; `None` until at least one observation is in the
/// window).
pub fn moving_average(series: &[Option<f64>], window: usize) -> Result<Vec<Option<f64>>> {
    if window == 0 {
        return Err(Error::InvalidSchema("window must be at least 1".into()));
    }
    let mut out = Vec::with_capacity(series.len());
    for t in 0..series.len() {
        let lo = t.saturating_sub(window - 1);
        let vals: Vec<f64> = series[lo..=t].iter().flatten().copied().collect();
        out.push(if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        });
    }
    Ok(out)
}

/// Trailing rolling minimum ("lows") over `window` observations.
pub fn rolling_min(series: &[Option<f64>], window: usize) -> Result<Vec<Option<f64>>> {
    rolling(series, window, |vals| vals.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Trailing rolling maximum ("highs") over `window` observations.
pub fn rolling_max(series: &[Option<f64>], window: usize) -> Result<Vec<Option<f64>>> {
    rolling(series, window, |vals| vals.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

fn rolling(
    series: &[Option<f64>],
    window: usize,
    f: impl Fn(&[f64]) -> f64,
) -> Result<Vec<Option<f64>>> {
    if window == 0 {
        return Err(Error::InvalidSchema("window must be at least 1".into()));
    }
    let mut out = Vec::with_capacity(series.len());
    for t in 0..series.len() {
        let lo = t.saturating_sub(window - 1);
        let vals: Vec<f64> = series[lo..=t].iter().flatten().copied().collect();
        out.push(if vals.is_empty() { None } else { Some(f(&vals)) });
    }
    Ok(out)
}

/// Period-over-period relative change (`(x_t − x_{t−1}) / x_{t−1}`), `None`
/// where either side is missing or the base is zero.
pub fn returns(series: &[Option<f64>]) -> Vec<Option<f64>> {
    let mut out = vec![None];
    for w in series.windows(2) {
        out.push(match (w[0], w[1]) {
            (Some(a), Some(b)) if a != 0.0 => Some((b - a) / a),
            _ => None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute};
    use crate::schema::Schema;

    fn prices() -> StatisticalObject {
        let schema = Schema::builder("prices")
            .dimension(Dimension::categorical("stock", ["aa", "bb"]))
            .dimension(Dimension::temporal("day", ["d0", "d1", "d2", "d3", "d4"]))
            .measure(SummaryAttribute::new("price", MeasureKind::ValuePerUnit))
            .function(SummaryFunction::Avg)
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        for (d, v) in [("d0", 10.0), ("d1", 12.0), ("d2", 11.0), ("d4", 14.0)] {
            o.insert(&["aa", d], v).unwrap();
        }
        o.insert(&["bb", "d0"], 100.0).unwrap();
        o
    }

    #[test]
    fn series_extraction_preserves_time_order_and_gaps() {
        let o = prices();
        let s = series(&o, "day", &[("stock", "aa")], 0, SummaryFunction::Avg).unwrap();
        assert_eq!(s, vec![Some(10.0), Some(12.0), Some(11.0), None, Some(14.0)]);
        // Validation paths.
        assert!(series(&o, "stock", &[("day", "d0")], 0, SummaryFunction::Avg).is_err());
        assert!(series(&o, "day", &[], 0, SummaryFunction::Avg).is_err());
        assert!(series(&o, "day", &[("stock", "zz")], 0, SummaryFunction::Avg).is_err());
        assert!(series(&o, "day", &[("day", "d0")], 0, SummaryFunction::Avg).is_err());
    }

    #[test]
    fn moving_average_skips_gaps() {
        let s = vec![Some(10.0), Some(12.0), Some(11.0), None, Some(14.0)];
        let ma = moving_average(&s, 2).unwrap();
        assert_eq!(ma[0], Some(10.0));
        assert_eq!(ma[1], Some(11.0));
        assert_eq!(ma[2], Some(11.5));
        assert_eq!(ma[3], Some(11.0)); // only d2 in window
        assert_eq!(ma[4], Some(14.0)); // only d4 in window
        assert!(moving_average(&s, 0).is_err());
        // Window 1 is the identity on present values.
        assert_eq!(moving_average(&s, 1).unwrap(), s);
    }

    #[test]
    fn highs_and_lows() {
        let s = vec![Some(10.0), Some(12.0), Some(11.0), Some(9.0)];
        assert_eq!(
            rolling_max(&s, 3).unwrap(),
            vec![Some(10.0), Some(12.0), Some(12.0), Some(12.0)]
        );
        assert_eq!(
            rolling_min(&s, 3).unwrap(),
            vec![Some(10.0), Some(10.0), Some(10.0), Some(9.0)]
        );
        let empty: Vec<Option<f64>> = vec![None, None];
        assert_eq!(rolling_max(&empty, 2).unwrap(), vec![None, None]);
    }

    #[test]
    fn returns_handle_gaps_and_zero_base() {
        let s = vec![Some(10.0), Some(12.0), None, Some(14.0), Some(0.0), Some(7.0)];
        let r = returns(&s);
        assert_eq!(r.len(), s.len());
        assert_eq!(r[0], None);
        assert!((r[1].unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(r[2], None);
        assert_eq!(r[3], None);
        assert_eq!(r[5], None); // base 0.0
    }

    #[test]
    fn weekly_high_low_via_rollup_matches_rolling() {
        // The paper's "weekly averages, highs and lows" via S-aggregation.
        use crate::hierarchy::Hierarchy;
        let mut cal = Hierarchy::builder("cal").level("day").level("week");
        for d in 0..10 {
            cal = cal.edge(&format!("d{d}"), &format!("w{}", d / 5));
        }
        let cal = cal.build().unwrap();
        let schema = Schema::builder("p")
            .dimension(Dimension::classified_temporal("day", cal))
            .measure(SummaryAttribute::new("price", MeasureKind::ValuePerUnit))
            .function(SummaryFunction::Max)
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        for d in 0..10 {
            o.insert(&[&format!("d{d}")], (d * d % 7) as f64).unwrap();
        }
        let weekly = o.roll_up("day", "week").unwrap();
        let w0_high = weekly.get(&["w0"]).unwrap().unwrap();
        let expected = (0..5).map(|d| (d * d % 7) as f64).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(w0_high, expected);
    }
}
