//! STORM schema graphs (§4.1, Figs 3–7, \[RS90\], \[CS81\]).
//!
//! The graph model represents a statistical object's *schema* with three
//! node kinds: **S** (summary attribute), **X** (cross product), and **C**
//! (category attribute). Its advantages over 2-D tables, per the paper:
//! dimensions need not be split into rows/columns, the representation is
//! insensitive to node permutation, and classification hierarchies are
//! explicit so a higher-level category attribute cannot be confused with a
//! dimension.
//!
//! Also implemented here:
//!
//! * **X-node grouping** (Fig 5): partitioning dimensions into semantic
//!   subject groups via nested X nodes;
//! * the **Fig 6 equivalence**: nested X nodes flatten away, so grouping is
//!   presentation, not semantics — [`SchemaGraph::flatten`] +
//!   [`SchemaGraph::equivalent`] make that a checkable property;
//! * **Fig 7 layout capture**: ordered `rows`/`columns` X nodes that record
//!   a legacy 2-D layout.

use std::fmt::Write as _;

use crate::error::{Error, Result};
use crate::schema::Schema;

/// A node of a STORM schema graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// S-node: the summary attribute. Root of the graph; its single child
    /// is the cross-product node.
    Summary {
        /// Summary attribute name(s), e.g. "Average Income in California".
        name: String,
        /// The cross-product child.
        child: Box<Node>,
    },
    /// X-node: a cross product of the children. A nested X groups
    /// dimensions for semantic clarity (Fig 5) or layout (Fig 7).
    Cross {
        /// Optional subject-group label ("Socio-Economic Categories") or
        /// layout role ("rows"/"columns").
        label: Option<String>,
        /// Whether child order is semantically meaningful (true only for
        /// layout capture; plain X nodes are permutation-insensitive).
        ordered: bool,
        /// Grouped dimensions or nested groups.
        children: Vec<Node>,
    },
    /// C-node: a category attribute. A chain of C nodes is a classification
    /// hierarchy, coarsest at the top ("Professional class" above
    /// "Profession", Fig 4).
    Category {
        /// The category attribute's name.
        name: String,
        /// The next finer category attribute, if any.
        child: Option<Box<Node>>,
    },
}

impl Node {
    /// Convenience constructor for a C chain, coarsest first.
    pub fn category_chain(names: &[&str]) -> Node {
        let mut node: Option<Box<Node>> = None;
        for name in names.iter().rev() {
            node = Some(Box::new(Node::Category { name: (*name).to_owned(), child: node }));
        }
        *node.expect("category_chain needs at least one name")
    }

    fn sort_key(&self) -> String {
        match self {
            Node::Summary { name, .. } => format!("S:{name}"),
            Node::Cross { label, .. } => format!("X:{}", label.as_deref().unwrap_or("")),
            Node::Category { name, child } => match child {
                Some(c) => format!("C:{name}/{}", c.sort_key()),
                None => format!("C:{name}"),
            },
        }
    }
}

/// A STORM schema graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaGraph {
    root: Node,
}

impl SchemaGraph {
    /// Wraps an explicit root node. The root must be an S node whose child
    /// is an X node.
    pub fn new(root: Node) -> Result<Self> {
        match &root {
            Node::Summary { child, .. } if matches!(**child, Node::Cross { .. }) => {
                Ok(Self { root })
            }
            _ => Err(Error::InvalidSchema("schema graph root must be S(name, X(...))".into())),
        }
    }

    /// Derives the graph of a [`Schema`] (Fig 4): one C chain per
    /// dimension, coarsest category attribute at the top.
    pub fn from_schema(schema: &Schema) -> Self {
        let mut children = Vec::with_capacity(schema.dim_count());
        for dim in schema.dimensions() {
            let node = match dim.default_hierarchy() {
                Some(h) => {
                    let names: Vec<&str> = h.levels().iter().rev().map(|l| l.name()).collect();
                    Node::category_chain(&names)
                }
                None => Node::Category { name: dim.name().to_owned(), child: None },
            };
            children.push(node);
        }
        let mut name = schema.measures().iter().map(|m| m.name()).collect::<Vec<_>>().join(", ");
        for (dim, member) in schema.context() {
            let _ = write!(name, " [{dim}={member}]");
        }
        Self {
            root: Node::Summary {
                name,
                child: Box::new(Node::Cross { label: None, ordered: false, children }),
            },
        }
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Groups the dimensions whose *top* category attribute is named in
    /// `dims` under a nested X node labeled `label` (Fig 5). Dimensions not
    /// found are an error.
    pub fn group(&self, label: &str, dims: &[&str]) -> Result<SchemaGraph> {
        let Node::Summary { name, child } = &self.root else { unreachable!() };
        let Node::Cross { label: xl, ordered, children } = child.as_ref() else { unreachable!() };
        let mut grouped = Vec::new();
        let mut rest = Vec::new();
        for c in children {
            let top = match c {
                Node::Category { name, .. } => name.as_str(),
                Node::Cross { label, .. } => label.as_deref().unwrap_or(""),
                Node::Summary { .. } => "",
            };
            if dims.contains(&top) {
                grouped.push(c.clone());
            } else {
                rest.push(c.clone());
            }
        }
        if grouped.len() != dims.len() {
            return Err(Error::InvalidSchema(format!(
                "group `{label}`: found {} of {} dimensions",
                grouped.len(),
                dims.len()
            )));
        }
        rest.push(Node::Cross { label: Some(label.to_owned()), ordered: false, children: grouped });
        Ok(SchemaGraph {
            root: Node::Summary {
                name: name.clone(),
                child: Box::new(Node::Cross {
                    label: xl.clone(),
                    ordered: *ordered,
                    children: rest,
                }),
            },
        })
    }

    /// Captures a legacy 2-D layout (Fig 7): ordered `rows` and `columns`
    /// groups. The named dimensions keep the given order.
    pub fn two_d_layout(&self, rows: &[&str], cols: &[&str]) -> Result<SchemaGraph> {
        let Node::Summary { name, child } = &self.root else { unreachable!() };
        let Node::Cross { children, .. } = child.as_ref() else { unreachable!() };
        // A dimension is matched by its leaf level name or its chain-top
        // name (classified dimensions render as the coarse attribute).
        fn chain_matches(node: &Node, dim: &str) -> bool {
            match node {
                Node::Category { name, child } => {
                    name == dim || child.as_deref().map(|c| chain_matches(c, dim)).unwrap_or(false)
                }
                _ => false,
            }
        }
        let find = |dim: &str| -> Result<Node> {
            children
                .iter()
                .find(|c| chain_matches(c, dim))
                .cloned()
                .ok_or_else(|| Error::DimensionNotFound(dim.to_owned()))
        };
        let row_nodes: Vec<Node> = rows.iter().map(|d| find(d)).collect::<Result<_>>()?;
        let col_nodes: Vec<Node> = cols.iter().map(|d| find(d)).collect::<Result<_>>()?;
        if row_nodes.len() + col_nodes.len() != children.len() {
            return Err(Error::InvalidSchema(
                "2-D layout must mention every dimension exactly once".into(),
            ));
        }
        Ok(SchemaGraph {
            root: Node::Summary {
                name: name.clone(),
                child: Box::new(Node::Cross {
                    label: None,
                    ordered: true,
                    children: vec![
                        Node::Cross {
                            label: Some("rows".into()),
                            ordered: true,
                            children: row_nodes,
                        },
                        Node::Cross {
                            label: Some("columns".into()),
                            ordered: true,
                            children: col_nodes,
                        },
                    ],
                }),
            },
        })
    }

    /// Flattens nested unordered X nodes (the Fig 6 equivalence): grouping
    /// is presentation only, so `X(a, X(b, c)) ≡ X(a, b, c)`.
    pub fn flatten(&self) -> SchemaGraph {
        fn flatten_node(n: &Node) -> Node {
            match n {
                Node::Summary { name, child } => {
                    Node::Summary { name: name.clone(), child: Box::new(flatten_node(child)) }
                }
                Node::Cross { label, ordered, children } => {
                    let mut out = Vec::new();
                    for c in children {
                        match flatten_node(c) {
                            Node::Cross { ordered: false, children: inner, .. } => {
                                out.extend(inner)
                            }
                            other => out.push(other),
                        }
                    }
                    Node::Cross { label: label.clone(), ordered: *ordered, children: out }
                }
                c @ Node::Category { .. } => c.clone(),
            }
        }
        let root = match flatten_node(&self.root) {
            // The top-level X keeps its identity even if it was the only
            // child; re-wrap if flattening dissolved it entirely.
            Node::Summary { name, child } => {
                let child = match *child {
                    x @ Node::Cross { .. } => x,
                    other => Node::Cross { label: None, ordered: false, children: vec![other] },
                };
                Node::Summary { name, child: Box::new(child) }
            }
            other => other,
        };
        SchemaGraph { root }
    }

    /// Canonical form: flattened, with unordered X children sorted — the
    /// permutation-insensitivity advantage (§4.1(ii)).
    pub fn canonical(&self) -> SchemaGraph {
        fn canon(n: &Node) -> Node {
            match n {
                Node::Summary { name, child } => {
                    Node::Summary { name: name.clone(), child: Box::new(canon(child)) }
                }
                Node::Cross { label, ordered, children } => {
                    let mut kids: Vec<Node> = children.iter().map(canon).collect();
                    if !*ordered {
                        kids.sort_by_key(Node::sort_key);
                    }
                    Node::Cross { label: label.clone(), ordered: *ordered, children: kids }
                }
                c @ Node::Category { .. } => c.clone(),
            }
        }
        let flat = self.flatten();
        SchemaGraph { root: canon(&flat.root) }
    }

    /// True if two graphs denote the same multidimensional schema — equal
    /// up to X-node grouping and child permutation.
    pub fn equivalent(&self, other: &SchemaGraph) -> bool {
        self.canonical() == other.canonical()
    }

    /// Renders the graph as an indented ASCII tree.
    pub fn render(&self) -> String {
        fn rec(n: &Node, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match n {
                Node::Summary { name, child } => {
                    let _ = writeln!(out, "{pad}S: {name}");
                    rec(child, depth + 1, out);
                }
                Node::Cross { label, ordered, children } => {
                    let tag = if *ordered { "X (ordered)" } else { "X" };
                    match label {
                        Some(l) => {
                            let _ = writeln!(out, "{pad}{tag}: {l}");
                        }
                        None => {
                            let _ = writeln!(out, "{pad}{tag}");
                        }
                    }
                    for c in children {
                        rec(c, depth + 1, out);
                    }
                }
                Node::Category { name, child } => {
                    let _ = writeln!(out, "{pad}C: {name}");
                    if let Some(c) = child {
                        rec(c, depth + 1, out);
                    }
                }
            }
        }
        let mut s = String::new();
        rec(&self.root, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::hierarchy::Hierarchy;
    use crate::measure::{MeasureKind, SummaryAttribute};
    use crate::schema::Schema;

    fn fig4_schema() -> Schema {
        let profession = Hierarchy::builder("profession")
            .level("Profession")
            .level("Professional class")
            .edge("civil engineer", "engineer")
            .build()
            .unwrap();
        Schema::builder("Average Income in California")
            .dimension(Dimension::categorical("Sex", ["M", "F"]))
            .dimension(Dimension::temporal("Year", ["88"]))
            .dimension(Dimension::classified("Profession", profession))
            .measure(SummaryAttribute::new("Average Income", MeasureKind::ValuePerUnit))
            .context("state", "California")
            .build()
            .unwrap()
    }

    #[test]
    fn from_schema_builds_fig4_shape() {
        let g = SchemaGraph::from_schema(&fig4_schema());
        let rendered = g.render();
        assert!(rendered.contains("S: Average Income [state=California]"));
        assert!(rendered.contains("C: Professional class"));
        // Professional class sits ABOVE Profession in the chain.
        let pc = rendered.find("Professional class").unwrap();
        let p = rendered.find("C: Profession\n").unwrap();
        assert!(pc < p);
    }

    #[test]
    fn fig6_grouping_equivalence() {
        let g = SchemaGraph::from_schema(&fig4_schema());
        let grouped = g.group("Socio-Economic Categories", &["Sex", "Year"]).unwrap();
        assert_ne!(g, grouped);
        assert!(g.equivalent(&grouped));
        // Iterated grouping stays equivalent too.
        let twice = grouped.group("Outer", &["Socio-Economic Categories"]).unwrap();
        assert!(g.equivalent(&twice));
    }

    #[test]
    fn permutation_insensitivity() {
        let a = SchemaGraph::new(Node::Summary {
            name: "m".into(),
            child: Box::new(Node::Cross {
                label: None,
                ordered: false,
                children: vec![Node::category_chain(&["a"]), Node::category_chain(&["b"])],
            }),
        })
        .unwrap();
        let b = SchemaGraph::new(Node::Summary {
            name: "m".into(),
            child: Box::new(Node::Cross {
                label: None,
                ordered: false,
                children: vec![Node::category_chain(&["b"]), Node::category_chain(&["a"])],
            }),
        })
        .unwrap();
        assert!(a.equivalent(&b));
    }

    #[test]
    fn different_hierarchies_not_equivalent() {
        let a = SchemaGraph::new(Node::Summary {
            name: "m".into(),
            child: Box::new(Node::Cross {
                label: None,
                ordered: false,
                children: vec![Node::category_chain(&["class", "profession"])],
            }),
        })
        .unwrap();
        let b = SchemaGraph::new(Node::Summary {
            name: "m".into(),
            child: Box::new(Node::Cross {
                label: None,
                ordered: false,
                children: vec![
                    Node::category_chain(&["class"]),
                    Node::category_chain(&["profession"]),
                ],
            }),
        })
        .unwrap();
        // A hierarchy is NOT the same as two dimensions — the confusion the
        // graph model exists to prevent (§4.1(iii)).
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn two_d_layout_is_ordered_and_not_equivalent_to_unordered() {
        let g = SchemaGraph::from_schema(&fig4_schema());
        let layout = g.two_d_layout(&["Sex", "Year"], &["Profession"]).unwrap();
        let rendered = layout.render();
        assert!(rendered.contains("X (ordered): rows"));
        assert!(rendered.contains("X (ordered): columns"));
        // Ordered layout nodes do not flatten away.
        assert!(!g.equivalent(&layout));
        // Swapping row order changes the layout.
        let layout2 = g.two_d_layout(&["Year", "Sex"], &["Profession"]).unwrap();
        assert_ne!(layout.canonical(), layout2.canonical());
    }

    #[test]
    fn two_d_layout_must_cover_all_dims() {
        let g = SchemaGraph::from_schema(&fig4_schema());
        assert!(g.two_d_layout(&["Sex"], &["Profession"]).is_err());
        assert!(g.two_d_layout(&["Sex", "Year"], &["Nope"]).is_err());
    }

    #[test]
    fn group_unknown_dimension_fails() {
        let g = SchemaGraph::from_schema(&fig4_schema());
        assert!(g.group("g", &["Sex", "Nope"]).is_err());
    }

    #[test]
    fn root_must_be_s_over_x() {
        assert!(SchemaGraph::new(Node::category_chain(&["a"])).is_err());
    }
}
