//! Batch-at-a-time kernels for the plan executor.
//!
//! The §6 storage survey's organizations (transposed, bit-encoded, RLE)
//! were designed for *batch* consumption, but the original executor walked
//! cells one tuple at a time through a `HashMap`. This module supplies the
//! columnar representation and the fused kernels the batched executor
//! ([`crate::plan::exec::execute`]) runs on instead:
//!
//! * [`CellBlock`] — a sorted, structure-of-arrays cuboid block: row-major
//!   dictionary-coded keys, one [`StateColumns`] per measure slot, and a
//!   per-row suppression flag for the privacy pass.
//! * [`derive_block`] — the fused scan + filter + aggregate kernel: scans a
//!   source block in fixed-size batches ([`BATCH`] rows), materializes a
//!   selection vector from the pushed-down filters, and aggregates the
//!   selected rows into the target grouping — by sorted-run accumulation
//!   when the target keys are a prefix of the (sorted) source keys, and by
//!   a batch-hashed open-addressing group table otherwise.
//! * [`merge_blocks`] — the key-wise monoid merge of two blocks, the
//!   block-level image of [`AggState::merge`].
//!
//! Blocks hold *pre-enforcement* data when produced by derivation; the
//! privacy operators in [`crate::plan::enforce`] flip the suppression
//! flags in place (via `Arc::make_mut`, so cache-shared blocks are never
//! mutated through a shared handle).

use crate::measure::{AggState, SummaryFunction};

/// Rows per processing batch: small enough that a batch's keys, selection
/// vector, and accumulators stay cache-resident, large enough to amortize
/// per-batch setup. The E29 sweep measures the ~1–4k plateau this sits on.
pub const BATCH: usize = 2048;

/// One measure slot's aggregation states, stored column-wise (the
/// structure-of-arrays mirror of a column of [`AggState`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateColumns {
    sum: Vec<f64>,
    count: Vec<u64>,
    min: Vec<f64>,
    max: Vec<f64>,
}

impl StateColumns {
    fn with_capacity(n: usize) -> Self {
        Self {
            sum: Vec::with_capacity(n),
            count: Vec::with_capacity(n),
            min: Vec::with_capacity(n),
            max: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, s: &AggState) {
        self.sum.push(s.sum);
        self.count.push(s.count);
        self.min.push(s.min);
        self.max.push(s.max);
    }

    fn push_empty(&mut self) {
        self.push(&AggState::EMPTY);
    }

    /// Reassembles row `i` as an [`AggState`].
    pub fn state(&self, i: usize) -> AggState {
        AggState { sum: self.sum[i], count: self.count[i], min: self.min[i], max: self.max[i] }
    }

    /// The merged micro-unit count of row `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.count[i]
    }

    /// Merges row `j` of `other` into row `i` of `self` — the columnar
    /// [`AggState::merge`].
    fn merge_from(&mut self, i: usize, other: &StateColumns, j: usize) {
        self.sum[i] += other.sum[j];
        self.count[i] += other.count[j];
        self.min[i] = self.min[i].min(other.min[j]);
        self.max[i] = self.max[i].max(other.max[j]);
    }

    fn merge_state(&mut self, i: usize, s: &AggState) {
        self.sum[i] += s.sum;
        self.count[i] += s.count;
        self.min[i] = self.min[i].min(s.min);
        self.max[i] = self.max[i].max(s.max);
    }

    fn gather(&self, order: &[u32]) -> StateColumns {
        let mut out = StateColumns::with_capacity(order.len());
        for &i in order {
            let i = i as usize;
            out.sum.push(self.sum[i]);
            out.count.push(self.count[i]);
            out.min.push(self.min[i]);
            out.max.push(self.max[i]);
        }
        out
    }
}

/// A sorted columnar cuboid block: the unit the batched executor loads,
/// derives, enforces, caches, and renders.
///
/// Invariants: rows are sorted by key (lexicographically over the
/// `key_width` dictionary-coded coordinates, schema-dimension order), keys
/// are unique, and every measure column has exactly `len` entries.
/// Constructors that accept unsorted input ([`CellBlock::sort_rows`]) must
/// be called before the block is handed to the executor.
#[derive(Debug, Clone, PartialEq)]
pub struct CellBlock {
    key_width: usize,
    len: usize,
    /// Row-major keys: `len × key_width` coordinates.
    keys: Vec<u32>,
    suppressed: Vec<bool>,
    measures: Vec<StateColumns>,
}

impl CellBlock {
    /// An empty block with the given key width and measure-slot count.
    pub fn new(key_width: usize, measure_count: usize) -> Self {
        Self {
            key_width,
            len: 0,
            keys: Vec::new(),
            suppressed: Vec::new(),
            measures: (0..measure_count).map(|_| StateColumns::default()).collect(),
        }
    }

    fn with_capacity(key_width: usize, measure_count: usize, n: usize) -> Self {
        Self {
            key_width,
            len: 0,
            keys: Vec::with_capacity(n * key_width),
            suppressed: Vec::with_capacity(n),
            measures: (0..measure_count).map(|_| StateColumns::with_capacity(n)).collect(),
        }
    }

    /// Number of rows (cells).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coordinates per key (0 for the apex cuboid).
    pub fn key_width(&self) -> usize {
        self.key_width
    }

    /// Number of measure slots.
    pub fn measure_count(&self) -> usize {
        self.measures.len()
    }

    /// The key of row `i` (empty slice at the apex).
    pub fn key(&self, i: usize) -> &[u32] {
        &self.keys[i * self.key_width..(i + 1) * self.key_width]
    }

    /// The state columns of measure slot `m`.
    pub fn measure(&self, m: usize) -> &StateColumns {
        &self.measures[m]
    }

    /// Reassembles the state of measure `m` at row `i`.
    pub fn state(&self, m: usize, i: usize) -> AggState {
        self.measures[m].state(i)
    }

    /// All measure states of row `i`, in slot order.
    pub fn states_row(&self, i: usize) -> Vec<AggState> {
        self.measures.iter().map(|m| m.state(i)).collect()
    }

    /// Evaluates measure `m` at row `i` under `func` (the columnar
    /// [`AggState::value`]); `None` when the slot is out of range.
    pub fn value(&self, m: usize, i: usize, func: SummaryFunction) -> Option<f64> {
        self.measures.get(m).and_then(|c| c.state(i).value(func))
    }

    /// The privacy cell count of row `i`: measure slot 0's merged count
    /// (the same basis the tuple-at-a-time enforcement used).
    pub fn cell_count(&self, i: usize) -> u64 {
        self.measures.first().map_or(0, |m| m.count[i])
    }

    /// Whether row `i` was withheld by the privacy pass.
    pub fn is_suppressed(&self, i: usize) -> bool {
        self.suppressed[i]
    }

    /// Flips row `i`'s suppression flag (privacy operators only).
    pub fn set_suppressed(&mut self, i: usize, v: bool) {
        self.suppressed[i] = v;
    }

    /// Adds `delta` to measure `m`'s sum at row `i` (the perturbation
    /// operator's write primitive).
    pub fn add_sum(&mut self, m: usize, i: usize, delta: f64) {
        self.measures[m].sum[i] += delta;
    }

    /// Appends a row. The caller is responsible for restoring the sorted
    /// invariant (call [`CellBlock::sort_rows`] once after bulk appends).
    pub fn push_row(&mut self, key: &[u32], states: &[AggState], suppressed: bool) {
        debug_assert_eq!(key.len(), self.key_width, "key width mismatch");
        debug_assert_eq!(states.len(), self.measures.len(), "measure count mismatch");
        self.keys.extend_from_slice(key);
        self.suppressed.push(suppressed);
        for (col, s) in self.measures.iter_mut().zip(states) {
            col.push(s);
        }
        self.len += 1;
    }

    /// Binary-searches the sorted keys for `key`.
    pub fn find(&self, key: &[u32]) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.key(mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Restores the sorted-by-key invariant after out-of-order appends
    /// (index sort + column gather; a no-op on already-sorted input).
    pub fn sort_rows(&mut self) {
        if (1..self.len).all(|i| self.key(i - 1) <= self.key(i)) {
            return;
        }
        let mut order: Vec<u32> = (0..self.len as u32).collect();
        order.sort_unstable_by(|&a, &b| self.key(a as usize).cmp(self.key(b as usize)));
        let mut keys = Vec::with_capacity(self.keys.len());
        let mut suppressed = Vec::with_capacity(self.len);
        for &i in &order {
            keys.extend_from_slice(self.key(i as usize));
            suppressed.push(self.suppressed[i as usize]);
        }
        self.keys = keys;
        self.suppressed = suppressed;
        self.measures = self.measures.iter().map(|m| m.gather(&order)).collect();
    }

    /// Approximate heap bytes of the block (cache-budget accounting).
    pub fn heap_bytes(&self) -> usize {
        16 + self.len * (self.key_width * 4 + 1 + self.measures.len() * 32)
    }
}

/// Positions of `of`'s bits within the kept-coordinate order of `within`.
/// Public because storage-side chunked scans (which derive a target cuboid
/// straight from sealed pages) need the same slot arithmetic the dense
/// kernels use.
pub fn bit_positions(within: u32, of: u32) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    for b in 0..32 {
        if within >> b & 1 == 1 {
            if of >> b & 1 == 1 {
                out.push(pos);
            }
            pos += 1;
        }
    }
    out
}

/// True when row `i` of `src` passes every pushed-down filter.
#[inline]
fn passes(src: &CellBlock, i: usize, fpos: &[(usize, &[u32])]) -> bool {
    let key = src.key(i);
    fpos.iter().all(|(p, allowed)| allowed.binary_search(&key[*p]).is_ok())
}

/// The fused scan + filter + aggregate kernel: derives the `target` cuboid
/// from a loaded `source` block, applying pushed-down scan filters on the
/// way (`target ⊆ source` by plan construction).
///
/// The source is consumed in [`BATCH`]-row batches. Each batch first
/// materializes a selection vector (row indices passing every filter, one
/// binary search per filter per row over the dictionary-coded keys), then
/// aggregates the selected rows:
///
/// * when the target's key positions are a prefix of the source key order,
///   the sorted-run path accumulates straight down the block — equal
///   prefixes are contiguous in a sorted block, so no hashing happens and
///   the output is born sorted (this covers the apex, whose prefix is
///   empty);
/// * otherwise the hash path projects each selected key once, hashes it
///   once, and scatter-merges into an open-addressing group table, with a
///   single final sort of the (few) groups.
pub fn derive_block(
    src: &CellBlock,
    source: u32,
    target: u32,
    filters: &[(usize, Vec<u32>)],
) -> CellBlock {
    let tpos = bit_positions(source, target);
    let m = src.measure_count();
    // A malformed source (stored key width differing from the mask's
    // popcount) yields an empty derivation rather than a panic, the same
    // skip-unknown behavior the tuple interpreter had.
    if tpos.iter().any(|&p| p >= src.key_width()) {
        return CellBlock::new(tpos.len(), m);
    }
    let fpos: Vec<(usize, &[u32])> = filters
        .iter()
        .filter_map(|(d, allowed)| {
            bit_positions(source, 1u32 << d).first().map(|&p| (p, allowed.as_slice()))
        })
        .filter(|(p, _)| *p < src.key_width())
        .collect();
    let prefix = tpos.iter().enumerate().all(|(i, &p)| i == p);
    let mut out = CellBlock::new(tpos.len(), m);
    let mut sel: Vec<u32> = Vec::with_capacity(BATCH.min(src.len().max(1)));
    if prefix {
        derive_prefix(src, &fpos, &tpos, &mut sel, &mut out);
    } else {
        derive_hashed(src, &fpos, &tpos, &mut sel, &mut out);
        out.sort_rows();
    }
    out
}

/// Sorted-run accumulation: target keys are a prefix of the sorted source
/// keys, so groups are contiguous and the output stays sorted.
fn derive_prefix(
    src: &CellBlock,
    fpos: &[(usize, &[u32])],
    tpos: &[usize],
    sel: &mut Vec<u32>,
    out: &mut CellBlock,
) {
    let k = tpos.len();
    let mut cur = usize::MAX;
    let mut start = 0usize;
    while start < src.len() {
        let end = (start + BATCH).min(src.len());
        fill_selection(src, fpos, start, end, sel);
        for &i in sel.iter() {
            let i = i as usize;
            let key = &src.key(i)[..k];
            if cur == usize::MAX || out.key(cur) != key {
                out.keys.extend_from_slice(key);
                out.suppressed.push(false);
                for col in &mut out.measures {
                    col.push_empty();
                }
                out.len += 1;
                cur = out.len - 1;
            }
            for (col, s) in out.measures.iter_mut().zip(&src.measures) {
                col.merge_from(cur, s, i);
            }
        }
        start = end;
    }
}

/// Batch-hashed group table: projected keys are hashed once per row and
/// scatter-merged into an open-addressing table of group indices.
fn derive_hashed(
    src: &CellBlock,
    fpos: &[(usize, &[u32])],
    tpos: &[usize],
    sel: &mut Vec<u32>,
    out: &mut CellBlock,
) {
    let k = tpos.len();
    let mut cap = 64usize;
    let mut table: Vec<u32> = vec![0; cap]; // group index + 1; 0 = empty
    let mut kbuf = vec![0u32; k];
    let mut start = 0usize;
    while start < src.len() {
        let end = (start + BATCH).min(src.len());
        fill_selection(src, fpos, start, end, sel);
        for &i in sel.iter() {
            let i = i as usize;
            let key = src.key(i);
            for (slot, &p) in kbuf.iter_mut().zip(tpos) {
                *slot = key[p];
            }
            // Grow at 3/4 load so probes stay short.
            if (out.len + 1) * 4 > cap * 3 {
                cap *= 2;
                table = rebuild_table(out, cap);
            }
            let mut at = (hash_coords(&kbuf) as usize) & (cap - 1);
            let group = loop {
                match table[at] {
                    0 => {
                        out.keys.extend_from_slice(&kbuf);
                        out.suppressed.push(false);
                        for col in &mut out.measures {
                            col.push_empty();
                        }
                        out.len += 1;
                        table[at] = out.len as u32;
                        break out.len - 1;
                    }
                    g if out.key(g as usize - 1) == kbuf.as_slice() => break g as usize - 1,
                    _ => at = (at + 1) & (cap - 1),
                }
            };
            for (col, s) in out.measures.iter_mut().zip(&src.measures) {
                col.merge_from(group, s, i);
            }
        }
        start = end;
    }
}

fn rebuild_table(out: &CellBlock, cap: usize) -> Vec<u32> {
    let mut table = vec![0u32; cap];
    for g in 0..out.len {
        let mut at = (hash_coords(out.key(g)) as usize) & (cap - 1);
        while table[at] != 0 {
            at = (at + 1) & (cap - 1);
        }
        table[at] = g as u32 + 1;
    }
    table
}

/// Fills `sel` with the row indices in `[start, end)` passing every
/// filter — the batch's selection vector. With no filters the whole batch
/// is selected.
fn fill_selection(
    src: &CellBlock,
    fpos: &[(usize, &[u32])],
    start: usize,
    end: usize,
    sel: &mut Vec<u32>,
) {
    sel.clear();
    if fpos.is_empty() {
        sel.extend(start as u32..end as u32);
    } else {
        sel.extend((start..end).filter(|&i| passes(src, i, fpos)).map(|i| i as u32));
    }
}

/// FNV-1a over a key's coordinates — one hash per selected row.
#[inline]
fn hash_coords(key: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in key {
        h ^= u64::from(c);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Finalize so low bits carry entropy from high bits (the table masks).
    h ^= h >> 29;
    h
}

/// Key-wise monoid merge of two sorted blocks (suppression flags OR): the
/// block-level image of [`AggState::merge`], associative and commutative
/// with the empty block as identity (up to float rounding on sums).
pub fn merge_blocks(a: &CellBlock, b: &CellBlock) -> CellBlock {
    // The identity element first: an empty block merges to a copy of the
    // other side whatever key width it declares, so an empty partial from
    // one source can never poison a merge with a mismatched width.
    if a.len == 0 {
        return b.clone();
    }
    if b.len == 0 {
        return a.clone();
    }
    debug_assert_eq!(a.key_width, b.key_width, "key width mismatch");
    debug_assert_eq!(a.measures.len(), b.measures.len(), "measure count mismatch");
    let m = a.measures.len();
    let mut out = CellBlock::with_capacity(a.key_width, m, a.len + b.len);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len || j < b.len {
        let ord = if i == a.len {
            std::cmp::Ordering::Greater
        } else if j == b.len {
            std::cmp::Ordering::Less
        } else {
            a.key(i).cmp(b.key(j))
        };
        match ord {
            std::cmp::Ordering::Less => {
                out.push_row(a.key(i), &a.states_row(i), a.suppressed[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push_row(b.key(j), &b.states_row(j), b.suppressed[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push_row(a.key(i), &a.states_row(i), a.suppressed[i] || b.suppressed[j]);
                let r = out.len - 1;
                for (col, s) in out.measures.iter_mut().zip(&b.measures) {
                    col.merge_state(r, &s.state(j));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(cells: &[(&[u32], f64)]) -> CellBlock {
        let width = cells.first().map_or(0, |(k, _)| k.len());
        let mut b = CellBlock::new(width, 1);
        for (k, v) in cells {
            b.push_row(k, &[AggState::from_value(*v)], false);
        }
        b.sort_rows();
        b
    }

    #[test]
    fn prefix_path_aggregates_sorted_runs() {
        let src = block(&[(&[0, 0], 1.0), (&[0, 1], 2.0), (&[1, 0], 4.0), (&[1, 1], 8.0)]);
        let out = derive_block(&src, 0b11, 0b01, &[]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.key(0), &[0]);
        assert_eq!(out.state(0, 0).sum, 3.0);
        assert_eq!(out.state(0, 1).sum, 12.0);
        assert_eq!(out.state(0, 1).count, 2);
    }

    #[test]
    fn hash_path_matches_prefix_semantics() {
        // Target = dim 1 only: positions [1], not a prefix → hash path.
        let src = block(&[(&[0, 0], 1.0), (&[0, 1], 2.0), (&[1, 0], 4.0), (&[1, 1], 8.0)]);
        let out = derive_block(&src, 0b11, 0b10, &[]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.key(0), &[0]);
        assert_eq!(out.state(0, 0).sum, 5.0);
        assert_eq!(out.key(1), &[1]);
        assert_eq!(out.state(0, 1).sum, 10.0);
    }

    #[test]
    fn apex_derivation_reduces_everything() {
        let src = block(&[(&[0, 0], 1.0), (&[1, 1], 2.0), (&[2, 0], 4.0)]);
        let out = derive_block(&src, 0b11, 0, &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.key_width(), 0);
        let s = out.state(0, 0);
        assert_eq!((s.sum, s.count, s.min, s.max), (7.0, 3, 1.0, 4.0));
    }

    #[test]
    fn selection_vector_masks_filtered_rows() {
        let src = block(&[(&[0, 0], 1.0), (&[0, 1], 2.0), (&[1, 1], 4.0)]);
        // Filter dim 1 (key position 1) to member 1.
        let out = derive_block(&src, 0b11, 0b01, &[(1, vec![1])]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.state(0, 0).sum, 2.0);
        assert_eq!(out.state(0, 1).sum, 4.0);
    }

    #[test]
    fn empty_source_derives_to_empty() {
        let src = CellBlock::new(2, 1);
        for target in [0b11u32, 0b01, 0b10, 0] {
            assert!(derive_block(&src, 0b11, target, &[]).is_empty());
        }
    }

    #[test]
    fn hash_path_survives_table_growth() {
        // More groups than the initial 64-slot table.
        let mut cells = Vec::new();
        for a in 0..40u32 {
            for b in 0..10u32 {
                cells.push((vec![b, a], (a * 10 + b) as f64));
            }
        }
        let refs: Vec<(&[u32], f64)> = cells.iter().map(|(k, v)| (k.as_slice(), *v)).collect();
        let src = block(&refs);
        let out = derive_block(&src, 0b11, 0b10, &[]); // keep position 1 → hash path
        assert_eq!(out.len(), 40);
        let total: f64 = (0..out.len()).map(|i| out.state(0, i).sum).sum();
        let expected: f64 = cells.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, expected);
        // Sorted and unique.
        for i in 1..out.len() {
            assert!(out.key(i - 1) < out.key(i));
        }
    }

    #[test]
    fn merge_blocks_is_keywise_and_identity_on_empty() {
        let a = block(&[(&[0], 1.0), (&[2], 4.0)]);
        let b = block(&[(&[0], 2.0), (&[1], 8.0)]);
        let ab = merge_blocks(&a, &b);
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.state(0, 0).sum, 3.0);
        assert_eq!(ab.state(0, 1).sum, 8.0);
        assert_eq!(ab.state(0, 2).sum, 4.0);
        let empty = CellBlock::new(1, 1);
        assert_eq!(merge_blocks(&a, &empty), a);
        assert_eq!(merge_blocks(&empty, &a), a);
    }

    #[test]
    fn find_binary_searches_sorted_keys() {
        let b = block(&[(&[0, 1], 1.0), (&[1, 0], 2.0), (&[1, 2], 4.0)]);
        assert_eq!(b.find(&[1, 0]), Some(1));
        assert_eq!(b.find(&[1, 1]), None);
        assert_eq!(b.find(&[0, 1]), Some(0));
        assert_eq!(b.find(&[9, 9]), None);
    }

    #[test]
    fn sort_rows_gathers_all_columns() {
        let mut b = CellBlock::new(1, 2);
        b.push_row(&[5], &[AggState::from_value(5.0), AggState::from_value(50.0)], true);
        b.push_row(&[1], &[AggState::from_value(1.0), AggState::from_value(10.0)], false);
        b.sort_rows();
        assert_eq!(b.key(0), &[1]);
        assert!(!b.is_suppressed(0));
        assert!(b.is_suppressed(1));
        assert_eq!(b.state(1, 0).sum, 10.0);
        assert_eq!(b.state(1, 1).sum, 50.0);
    }
}
