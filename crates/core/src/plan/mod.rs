//! The summary-algebra plan layer: one logical IR, one planner, one
//! executor for every query front-end.
//!
//! Shoshani's central claim is that SDB and OLAP operations are a single
//! algebra over statistical objects (§4–5). This module makes that claim
//! operational: the SQL interpreter, the SQL physical path, the
//! [`ViewStore`](../../statcube_cube/query/struct.ViewStore.html) cuboid
//! server, and the interactive navigator all *compile* to the same logical
//! [`Plan`] IR, run it through one rule-based [`planner`], and execute the
//! result on one [`executor`](exec::execute).
//!
//! The IR is deliberately small — the closed operator set of the paper's
//! summary algebra plus one privacy operator:
//!
//! | Node            | Algebra operation (paper §)                        |
//! |-----------------|----------------------------------------------------|
//! | `Scan`          | a statistical object / base cuboid (§3)            |
//! | `Select`        | S-selection on category values (§4.1)              |
//! | `RollUp`        | S-aggregation to a hierarchy level (§4.1, §5.2)    |
//! | `DrillDown`     | inverse navigation; cancels a prior `RollUp` (§5.2)|
//! | `Project`       | S-projection / summarize-over-all (§4.1)           |
//! | `Aggregate`     | cuboid request by dimension bit mask (§5.4)        |
//! | `GroupingSets`  | CUBE / ROLLUP grouping-set family \[GB+96\] (§5.4) |
//! | `Restrict`      | privacy enforcement barrier (§6)                   |
//!
//! The planner ([`planner::Planner`]) normalizes a plan and applies four
//! rewrite passes — summarizability validation, lattice-aware source
//! selection, predicate/roll-up pushdown, and mandatory privacy — each
//! logged as a [`planner::Rewrite`] so `EXPLAIN` can show the logical plan,
//! the rewrites applied, and the physical spans side by side.

pub mod enforce;
pub mod exec;
pub mod kernels;
pub mod planner;
pub mod policy;

pub use enforce::EnforcementStats;
pub use exec::{
    execute, execute_interpreter, execute_partial, group_labels, merge_partials, result_rows,
    result_rows_with_labels, GroupLabels, ObjectSource, PartialExecution, PlanCell, PlanCells,
    PlanDegradation, PlanExecution, PlanRow, PlanSource, SetAnswer, ShardedExecution, SourceBlock,
};
pub use kernels::{bit_positions, derive_block, merge_blocks, CellBlock, StateColumns};
pub use planner::{
    CatalogEntry, CodedPredicate, LeafRollup, PlannedAgg, PlannedQuery, PlannedSet, Planner,
    PlannerConfig, Rewrite,
};
pub use policy::{Perturbation, PrivacyPolicy};

use crate::error::{Error, Result};
use crate::measure::SummaryFunction;

/// One equality/inequality predicate over a dimension's category values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanPredicate {
    /// Dimension name.
    pub column: String,
    /// Compared member value.
    pub value: String,
    /// True for `<>` (keep everything but `value`).
    pub negated: bool,
}

impl PlanPredicate {
    /// An equality predicate `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<String>) -> Self {
        Self { column: column.into(), value: value.into(), negated: false }
    }

    /// An inequality predicate `column <> value`.
    pub fn ne(column: impl Into<String>, value: impl Into<String>) -> Self {
        Self { column: column.into(), value: value.into(), negated: true }
    }
}

/// One requested aggregate of the output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRequest {
    /// The summary function.
    pub func: SummaryFunction,
    /// The measure name, or `None` for `COUNT(*)`.
    pub measure: Option<String>,
    /// Display label for the output column (e.g. `SUM("births")`).
    pub label: String,
}

/// How a `GroupingSets` node expands into grouping sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupingSpec {
    /// One grouping set keeping every listed dimension (`GROUP BY a, b`,
    /// or the grand total when the list is empty).
    Single,
    /// All `2^n` subsets, full grouping first, apex last (\[GB+96\]).
    Cube,
    /// The `n + 1` prefix groupings, longest first.
    Rollup,
}

impl GroupingSpec {
    fn name(self) -> &'static str {
        match self {
            GroupingSpec::Single => "single",
            GroupingSpec::Cube => "cube",
            GroupingSpec::Rollup => "rollup",
        }
    }
}

/// Expands a grouping spec over `n` listed dimensions into keep-masks, one
/// per grouping set, in the pinned output order every front-end shares:
/// CUBE counts down from the full grouping to the apex, ROLLUP walks
/// prefixes longest-first, and a single grouping is itself.
pub fn grouping_sets(spec: GroupingSpec, n: usize) -> Result<Vec<Vec<bool>>> {
    if n > 20 {
        return Err(Error::InvalidSchema(format!(
            "grouping over {n} dimensions would expand past 2^20 grouping sets"
        )));
    }
    Ok(match spec {
        GroupingSpec::Single => vec![vec![true; n]],
        GroupingSpec::Cube => (0..(1u32 << n))
            .rev()
            .map(|bits| (0..n).map(|i| bits >> i & 1 == 1).collect())
            .collect(),
        GroupingSpec::Rollup => {
            (0..=n).rev().map(|keep| (0..n).map(|i| i < keep).collect()).collect()
        }
    })
}

/// A logical summary-algebra plan. Built leaf-first with the builder
/// methods; the outermost node is the last operation applied.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// The base statistical object (or base cuboid) named `source`.
    Scan {
        /// Bound object name (the SQL `FROM` table).
        source: String,
    },
    /// S-selection: keep cells whose category values satisfy every
    /// predicate.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Conjunction of predicates, applied in order.
        predicates: Vec<PlanPredicate>,
    },
    /// S-aggregation: roll `dim` up to hierarchy level `level`.
    RollUp {
        /// Input plan.
        input: Box<Plan>,
        /// Dimension name.
        dim: String,
        /// Target level name in the dimension's default hierarchy.
        level: String,
    },
    /// Inverse navigation: undo the most recent `RollUp` of `dim`.
    DrillDown {
        /// Input plan.
        input: Box<Plan>,
        /// Dimension name.
        dim: String,
    },
    /// S-projection: keep only the named dimensions, summarizing over the
    /// rest.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Dimension names to keep.
        keep: Vec<String>,
    },
    /// A cuboid request by dimension bit mask (bit `i` = keep dimension
    /// `i`), the coded form used by the view store.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Cuboid bit mask.
        mask: u32,
    },
    /// A family of grouping sets over the listed group columns, each
    /// evaluated with the requested aggregates (\[GB+96\]).
    GroupingSets {
        /// Input plan.
        input: Box<Plan>,
        /// Group column names — dimension names or hierarchy level names.
        group: Vec<String>,
        /// How the listed columns expand into grouping sets.
        spec: GroupingSpec,
        /// Requested output aggregates.
        aggs: Vec<AggRequest>,
    },
    /// The privacy barrier (§6): every answer below this node is subject to
    /// `policy` before publication. The planner inserts one on every plan;
    /// front-ends may also place one explicitly.
    Restrict {
        /// Input plan.
        input: Box<Plan>,
        /// Enforced policy.
        policy: PrivacyPolicy,
    },
}

impl Plan {
    /// A base scan of the named object.
    pub fn scan(source: impl Into<String>) -> Self {
        Plan::Scan { source: source.into() }
    }

    /// Wraps `self` in an S-selection.
    #[must_use]
    pub fn select(self, predicates: Vec<PlanPredicate>) -> Self {
        Plan::Select { input: Box::new(self), predicates }
    }

    /// Wraps `self` in an S-aggregation to `level` of `dim`.
    #[must_use]
    pub fn roll_up(self, dim: impl Into<String>, level: impl Into<String>) -> Self {
        Plan::RollUp { input: Box::new(self), dim: dim.into(), level: level.into() }
    }

    /// Wraps `self` in a drill-down of `dim`.
    #[must_use]
    pub fn drill_down(self, dim: impl Into<String>) -> Self {
        Plan::DrillDown { input: Box::new(self), dim: dim.into() }
    }

    /// Wraps `self` in an S-projection keeping `keep`.
    #[must_use]
    pub fn project(self, keep: Vec<String>) -> Self {
        Plan::Project { input: Box::new(self), keep }
    }

    /// Wraps `self` in a coded cuboid request.
    #[must_use]
    pub fn aggregate_mask(self, mask: u32) -> Self {
        Plan::Aggregate { input: Box::new(self), mask }
    }

    /// Wraps `self` in a grouping-set family.
    #[must_use]
    pub fn grouping_sets(
        self,
        group: Vec<String>,
        spec: GroupingSpec,
        aggs: Vec<AggRequest>,
    ) -> Self {
        Plan::GroupingSets { input: Box::new(self), group, spec, aggs }
    }

    /// Wraps `self` in a privacy barrier.
    #[must_use]
    pub fn restrict(self, policy: PrivacyPolicy) -> Self {
        Plan::Restrict { input: Box::new(self), policy }
    }

    /// The input plan, if this node has one.
    pub fn input(&self) -> Option<&Plan> {
        match self {
            Plan::Scan { .. } => None,
            Plan::Select { input, .. }
            | Plan::RollUp { input, .. }
            | Plan::DrillDown { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::GroupingSets { input, .. }
            | Plan::Restrict { input, .. } => Some(input),
        }
    }

    /// Renders the plan as an indented tree, outermost operator first —
    /// the "logical plan" section of EXPLAIN output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut node = Some(self);
        let mut depth = 0usize;
        while let Some(n) = node {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&n.describe_node());
            out.push('\n');
            node = n.input();
            depth += 1;
        }
        out.pop();
        out
    }

    fn describe_node(&self) -> String {
        match self {
            Plan::Scan { source } => format!("Scan{{{source}}}"),
            Plan::Select { predicates, .. } => {
                let preds: Vec<String> = predicates
                    .iter()
                    .map(|p| {
                        format!("{} {} '{}'", p.column, if p.negated { "<>" } else { "=" }, p.value)
                    })
                    .collect();
                format!("Select{{{}}}", preds.join(", "))
            }
            Plan::RollUp { dim, level, .. } => format!("RollUp{{{dim} → {level}}}"),
            Plan::DrillDown { dim, .. } => format!("DrillDown{{{dim}}}"),
            Plan::Project { keep, .. } => format!("Project{{{}}}", keep.join(", ")),
            Plan::Aggregate { mask, .. } => format!("Aggregate{{mask={mask:#b}}}"),
            Plan::GroupingSets { group, spec, aggs, .. } => {
                let aggs: Vec<&str> = aggs.iter().map(|a| a.label.as_str()).collect();
                format!(
                    "GroupingSets{{spec={}, group=[{}], aggs=[{}]}}",
                    spec.name(),
                    group.join(", "),
                    aggs.join(", ")
                )
            }
            Plan::Restrict { policy, .. } => format!("Restrict{{policy={}}}", policy.describe()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_sets_single_is_identity_even_when_empty() {
        assert_eq!(grouping_sets(GroupingSpec::Single, 0).unwrap(), vec![Vec::<bool>::new()]);
        assert_eq!(grouping_sets(GroupingSpec::Single, 2).unwrap(), vec![vec![true, true]]);
    }

    #[test]
    fn grouping_sets_cube_counts_down_from_full_to_apex() {
        let sets = grouping_sets(GroupingSpec::Cube, 2).unwrap();
        assert_eq!(
            sets,
            vec![vec![true, true], vec![false, true], vec![true, false], vec![false, false]]
        );
        assert_eq!(grouping_sets(GroupingSpec::Cube, 3).unwrap().len(), 8);
    }

    #[test]
    fn grouping_sets_rollup_walks_prefixes_longest_first() {
        let sets = grouping_sets(GroupingSpec::Rollup, 3).unwrap();
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0], vec![true, true, true]);
        assert_eq!(sets[1], vec![true, true, false]);
        assert_eq!(sets[3], vec![false, false, false]);
    }

    #[test]
    fn grouping_sets_refuses_untenable_widths() {
        assert!(grouping_sets(GroupingSpec::Cube, 21).is_err());
        assert!(grouping_sets(GroupingSpec::Cube, 20).is_ok());
    }

    #[test]
    fn plan_renders_outermost_first() {
        let plan = Plan::scan("census")
            .select(vec![PlanPredicate::ne("state", "AL")])
            .grouping_sets(
                vec!["state".into()],
                GroupingSpec::Cube,
                vec![AggRequest {
                    func: SummaryFunction::Sum,
                    measure: Some("births".into()),
                    label: "SUM(\"births\")".into(),
                }],
            )
            .restrict(PrivacyPolicy::suppress(2));
        let r = plan.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Restrict{policy=suppress(k=2)}"));
        assert!(lines[1].trim_start().starts_with("GroupingSets{spec=cube"));
        assert!(lines[2].trim_start().starts_with("Select{state <> 'AL'}"));
        assert!(lines[3].trim_start().starts_with("Scan{census}"));
        assert!(lines[1].starts_with("  "), "children indent");
    }
}
