//! In-path privacy enforcement (paper §6): the operators the mandatory
//! `Restrict` pass inserts. The executor calls [`enforce`] on every
//! answered grouping set *before* any row leaves the plan layer, so no
//! front-end — cached or not — can publish an unenforced cell.
//!
//! Three operators, composed per policy:
//!
//! * [`suppress`] — small-count cell suppression: a cell built from fewer
//!   than `k` micro units is withheld.
//! * [`tracker`] — the tracker-attack guard: a cell within `k` of its
//!   set's total is also withheld, since `total − cell` would disclose a
//!   small complement.
//! * [`complementary`] — complementary suppression across published
//!   marginals: no "line" (the cells of a finer set sharing a projection
//!   onto a coarser set, plus that coarser marginal) may contain exactly
//!   one suppressed member, or subtraction recovers it.
//! * [`perturb`] — deterministic noise on published sums; the same cell
//!   always gets the same noise, so averaging repeated queries gains
//!   nothing.
//!
//! Answers arrive as shared [`CellBlock`]s (cache hits alias the cached
//! block), so every operator is copy-on-write: it first scans read-only
//! for work to do and only `Arc::make_mut`s a block it actually changes.
//! A no-op pass — the permissive policy above all — never copies.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::plan::exec::SetAnswer;
use crate::plan::policy::{Perturbation, PrivacyPolicy};

/// What one enforcement pass did, for span fields and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnforcementStats {
    /// Cells withheld by primary (small-count + tracker) suppression.
    pub suppressed: u64,
    /// Cells additionally withheld by complementary suppression.
    pub complementary: u64,
    /// Cells whose published sum was perturbed.
    pub perturbed: u64,
}

/// Runs the policy's operators over the answered sets. Called by the
/// executor on every plan — the permissive policy is a no-op.
pub fn enforce(policy: &PrivacyPolicy, sets: &mut [SetAnswer]) -> EnforcementStats {
    let mut stats = EnforcementStats::default();
    if policy.is_none() {
        return stats;
    }
    if let Some(k) = policy.suppress_k {
        stats.suppressed += suppress(k, sets);
        if policy.tracker_guard {
            stats.suppressed += tracker(k, sets);
        }
        stats.complementary = complementary(sets);
    } else if policy.tracker_guard {
        stats.suppressed += tracker(1, sets);
    }
    if let Some(p) = &policy.perturb {
        stats.perturbed = perturb(p, sets);
    }
    stats
}

/// Primary small-count suppression: withholds cells with `0 < count < k`.
/// Returns the number of cells newly withheld.
pub fn suppress(k: u64, sets: &mut [SetAnswer]) -> u64 {
    let mut n = 0;
    for set in sets {
        let hits: Vec<usize> = (0..set.cells.len())
            .filter(|&i| {
                let c = set.cells.cell_count(i);
                !set.cells.is_suppressed(i) && c > 0 && c < k
            })
            .collect();
        if hits.is_empty() {
            continue;
        }
        let block = Arc::make_mut(&mut set.cells);
        for i in hits {
            block.set_suppressed(i, true);
            n += 1;
        }
    }
    n
}

/// Tracker-attack guard: within one grouping set of total count `N`,
/// withholds cells with `count > N − k` (their complement is a small
/// count). Returns the number of cells newly withheld.
pub fn tracker(k: u64, sets: &mut [SetAnswer]) -> u64 {
    let mut n = 0;
    for set in sets {
        // The set's own total row (a single cell holding everything) is
        // the query answer itself, not a complement attack.
        if set.cells.len() < 2 {
            continue;
        }
        let total: u64 = (0..set.cells.len()).map(|i| set.cells.cell_count(i)).sum();
        let hits: Vec<usize> = (0..set.cells.len())
            .filter(|&i| {
                let c = set.cells.cell_count(i);
                !set.cells.is_suppressed(i) && c > total.saturating_sub(k)
            })
            .collect();
        if hits.is_empty() {
            continue;
        }
        let block = Arc::make_mut(&mut set.cells);
        for i in hits {
            block.set_suppressed(i, true);
            n += 1;
        }
    }
    n
}

/// Complementary suppression across the published grouping sets. For every
/// pair (coarse set `i`, finer set `j` with `target_i ⊂ target_j`) and
/// every projection group of `j` onto `i`: the "line" is the group's cells
/// plus the matching marginal in `i`. A line with exactly one suppressed
/// member leaks it by subtraction, so the smallest-count unsuppressed
/// member is withheld too; repeated to a fixpoint. Deterministic: ties
/// break on (count, interior-before-marginal, key).
pub fn complementary(sets: &mut [SetAnswer]) -> u64 {
    /// A line's interior members keyed by their projection: (key, count,
    /// suppressed).
    type Lines = BTreeMap<Vec<u32>, Vec<(Vec<u32>, u64, bool)>>;
    let targets: Vec<u32> = sets.iter().map(|s| s.target).collect();
    let mut n = 0u64;
    loop {
        let mut changed = false;
        for j in 0..sets.len() {
            for i in 0..sets.len() {
                let (ti, tj) = (targets[i], targets[j]);
                if i == j || ti == tj || ti & !tj != 0 {
                    continue; // need target_i ⊊ target_j
                }
                let pos = bit_positions(tj, ti);
                // Snapshot set j's cells grouped by their projection onto i.
                let mut groups: Lines = BTreeMap::new();
                for r in 0..sets[j].cells.len() {
                    let key = sets[j].cells.key(r);
                    let g: Vec<u32> = pos.iter().filter_map(|&p| key.get(p).copied()).collect();
                    groups.entry(g).or_default().push((
                        key.to_vec(),
                        sets[j].cells.cell_count(r),
                        sets[j].cells.is_suppressed(r),
                    ));
                }
                for (g, mut members) in groups {
                    members.sort();
                    let marginal = sets[i]
                        .cells
                        .find(&g)
                        .map(|r| (sets[i].cells.cell_count(r), sets[i].cells.is_suppressed(r)));
                    let hidden = members.iter().filter(|(_, _, s)| *s).count()
                        + usize::from(marginal.is_some_and(|(_, s)| s));
                    let line_len = members.len() + usize::from(marginal.is_some());
                    if hidden != 1 || line_len < 2 {
                        continue;
                    }
                    // Candidates: (count, marginal?, key) — pick the least.
                    let mut best: Option<(u64, bool, Vec<u32>)> = None;
                    for (key, count, supp) in &members {
                        if !supp {
                            let cand = (*count, false, key.clone());
                            if best.as_ref().is_none_or(|b| cand < *b) {
                                best = Some(cand);
                            }
                        }
                    }
                    if let Some((count, supp)) = marginal {
                        if !supp {
                            let cand = (count, true, g.clone());
                            if best.as_ref().is_none_or(|b| cand < *b) {
                                best = Some(cand);
                            }
                        }
                    }
                    let Some((_, is_marginal, key)) = best else { continue };
                    let set = if is_marginal { i } else { j };
                    if let Some(r) = sets[set].cells.find(&key) {
                        if !sets[set].cells.is_suppressed(r) {
                            Arc::make_mut(&mut sets[set].cells).set_suppressed(r, true);
                            n += 1;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return n;
        }
    }
}

/// Deterministic output perturbation: adds seeded noise in
/// `[−magnitude, magnitude)` to every published (unsuppressed) sum.
/// Returns the number of cells perturbed.
pub fn perturb(p: &Perturbation, sets: &mut [SetAnswer]) -> u64 {
    let mut n = 0;
    for set in sets {
        if (0..set.cells.len()).all(|i| set.cells.is_suppressed(i)) {
            continue;
        }
        let target = set.target;
        let block = Arc::make_mut(&mut set.cells);
        for i in 0..block.len() {
            if block.is_suppressed(i) {
                continue;
            }
            for m in 0..block.measure_count() {
                if block.measure(m).count(i) == 0 {
                    continue;
                }
                let h = noise_hash(p.seed, target, block.key(i), m as u64);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                block.add_sum(m, i, (u * 2.0 - 1.0) * p.magnitude);
            }
            n += 1;
        }
    }
    n
}

fn noise_hash(seed: u64, target: u32, key: &[u32], measure: u64) -> u64 {
    fn mix(mut h: u64, v: u64) -> u64 {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17);
    h = mix(h, u64::from(target));
    h = mix(h, key.len() as u64);
    for &c in key {
        h = mix(h, u64::from(c));
    }
    mix(h, measure)
}

/// Positions of `of`'s bits within the kept-coordinate order of `within`.
fn bit_positions(within: u32, of: u32) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    for b in 0..32 {
        if within >> b & 1 == 1 {
            if of >> b & 1 == 1 {
                out.push(pos);
            }
            pos += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::AggState;
    use crate::plan::kernels::CellBlock;

    fn cell(count: u64, sum: f64) -> AggState {
        AggState { sum, count, min: sum, max: sum }
    }

    fn set(target: u32, keep: Vec<bool>, cells: Vec<(Vec<u32>, AggState)>) -> SetAnswer {
        let width = cells.first().map_or(0, |(k, _)| k.len());
        let mut block = CellBlock::new(width, 1);
        for (k, s) in &cells {
            block.push_row(k, &[*s], false);
        }
        block.sort_rows();
        SetAnswer {
            keep,
            target,
            source: target,
            cells: Arc::new(block),
            cells_scanned: 0,
            cache_hit: false,
            degraded: None,
        }
    }

    fn suppressed_at(sa: &SetAnswer, key: &[u32]) -> bool {
        let i = sa.cells.find(key).unwrap();
        sa.cells.is_suppressed(i)
    }

    fn mark_suppressed(sa: &mut SetAnswer, key: &[u32]) {
        let i = sa.cells.find(key).unwrap();
        Arc::make_mut(&mut sa.cells).set_suppressed(i, true);
    }

    #[test]
    fn suppress_withholds_small_counts_only() {
        let mut sets = vec![set(
            0b1,
            vec![true],
            vec![(vec![0], cell(1, 5.0)), (vec![1], cell(3, 9.0)), (vec![2], cell(0, 0.0))],
        )];
        assert_eq!(suppress(2, &mut sets), 1);
        assert!(suppressed_at(&sets[0], &[0]));
        assert!(!suppressed_at(&sets[0], &[1]));
        assert!(!suppressed_at(&sets[0], &[2]), "empty cells publish");
    }

    #[test]
    fn tracker_withholds_near_total_cells() {
        // total = 10; k = 3 ⇒ any cell with count > 7 leaks a complement
        // smaller than 3 via `total − cell`.
        let mut sets =
            vec![set(0b1, vec![true], vec![(vec![0], cell(8, 80.0)), (vec![1], cell(2, 2.0))])];
        assert_eq!(tracker(3, &mut sets), 1);
        assert!(suppressed_at(&sets[0], &[0]));
    }

    #[test]
    fn complementary_protects_a_lone_suppressed_cell() {
        // Finer set by (dim0): two cells, one suppressed. Coarser apex
        // publishes the total ⇒ the suppressed cell is total − other, so
        // the other must also be withheld.
        let mut fine =
            set(0b1, vec![true], vec![(vec![0], cell(1, 5.0)), (vec![1], cell(9, 90.0))]);
        mark_suppressed(&mut fine, &[0]);
        let apex = set(0, vec![false], vec![(vec![], cell(10, 95.0))]);
        let mut sets = vec![fine, apex];
        let n = complementary(&mut sets);
        assert!(n >= 1, "complementary suppression must fire");
        let published: usize = sets
            .iter()
            .map(|s| (0..s.cells.len()).filter(|&i| !s.cells.is_suppressed(i)).count())
            .sum();
        // The lone sibling or the marginal must have been withheld too.
        assert!(published < 2, "published {published} of 3 cells");
    }

    #[test]
    fn complementary_reaches_a_fixpoint_with_no_leaky_line() {
        let mut fine = set(
            0b1,
            vec![true],
            vec![(vec![0], cell(1, 1.0)), (vec![1], cell(4, 4.0)), (vec![2], cell(7, 7.0))],
        );
        mark_suppressed(&mut fine, &[0]);
        let apex = set(0, vec![false], vec![(vec![], cell(12, 12.0))]);
        let mut sets = vec![fine, apex];
        complementary(&mut sets);
        // Invariant: no line has exactly one suppressed member.
        let suppressed: usize =
            (0..sets[0].cells.len()).filter(|&i| sets[0].cells.is_suppressed(i)).count()
                + usize::from((0..sets[1].cells.len()).any(|i| sets[1].cells.is_suppressed(i)));
        assert_ne!(suppressed, 1);
    }

    #[test]
    fn perturbation_is_deterministic_and_bounded() {
        let p = Perturbation { magnitude: 2.0, seed: 42 };
        let make = || {
            vec![set(0b1, vec![true], vec![(vec![0], cell(5, 100.0)), (vec![1], cell(5, 200.0))])]
        };
        let mut a = make();
        let mut b = make();
        assert_eq!(perturb(&p, &mut a), 2);
        perturb(&p, &mut b);
        let sums = |s: &[SetAnswer]| {
            (0..s[0].cells.len())
                .map(|i| (s[0].cells.key(i).to_vec(), s[0].cells.state(0, i).sum))
                .collect::<Vec<_>>()
        };
        let sum_a = sums(&a);
        let sum_b = sums(&b);
        assert_eq!(sum_a, sum_b, "same seed, same noise");
        for (key, sum) in &sum_a {
            let orig = if key[..] == [0] { 100.0 } else { 200.0 };
            assert!((sum - orig).abs() <= 2.0, "bounded noise");
            assert_ne!(*sum, orig, "noise actually applied");
        }
        let mut c = make();
        perturb(&Perturbation { magnitude: 2.0, seed: 43 }, &mut c);
        let sum_c = sums(&c);
        assert_ne!(sum_a, sum_c, "seed matters");
    }

    #[test]
    fn enforce_composes_per_policy_and_permissive_is_noop() {
        let mut sets =
            vec![set(0b1, vec![true], vec![(vec![0], cell(1, 5.0)), (vec![1], cell(9, 9.0))])];
        let before = sets.clone();
        let stats = enforce(&PrivacyPolicy::none(), &mut sets);
        assert_eq!(stats, EnforcementStats::default());
        assert_eq!(sets[0].cells, before[0].cells);
        assert!(
            Arc::ptr_eq(&sets[0].cells, &before[0].cells),
            "permissive pass must not copy the block"
        );
        let stats = enforce(&PrivacyPolicy::suppress(2), &mut sets);
        assert_eq!(stats.suppressed, 1);
        assert!(!Arc::ptr_eq(&sets[0].cells, &before[0].cells), "suppression copied on write");
        assert!(
            (0..before[0].cells.len()).all(|i| !before[0].cells.is_suppressed(i)),
            "the shared snapshot stayed untouched"
        );
    }
}
