//! The rule-based planner: normalizes a logical [`Plan`] and applies the
//! four rewrite passes, producing a [`PlannedQuery`] any front-end can hand
//! to the shared executor ([`crate::plan::exec::execute`]).
//!
//! The passes, in the order EXPLAIN reports them:
//!
//! 1. **summarizability** — every requested aggregate is validated with
//!    [`crate::summarizability`] *before* planning proceeds: type checks
//!    per (measure, collapsed dimension) pair, and the structural
//!    hierarchy conditions for every roll-up the plan performs.
//! 2. **lattice** — an `Aggregate`/grouping set over base facts is
//!    rewritten into derivation from the smallest materialized ancestor in
//!    the catalog (the \[HRU96\]/\[GB+96\] lattice argument). Fallback
//!    order on source failure is the same candidate list, so degraded
//!    service reuses the planner's cost order.
//! 3. **pushdown** — drill-downs cancel pending roll-ups, surviving
//!    roll-ups move to the leaf scan, and predicates move into the store
//!    scan when a catalog target can filter while deriving.
//! 4. **privacy** — a `Restrict` barrier is attached *unconditionally*;
//!    the executor runs its enforcement pass on every grouping set, so no
//!    front-end can return an answer that skipped it.

use std::cmp::Reverse;

use crate::error::{Error, Result};
use crate::plan::policy::PrivacyPolicy;
use crate::plan::{grouping_sets, AggRequest, GroupingSpec, Plan, PlanPredicate};
use crate::schema::Schema;
use crate::summarizability::{self, check_type};

/// One materialized cuboid the lattice pass may derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Cuboid bit mask.
    pub mask: u32,
    /// Materialized cell count (the derivation cost estimate).
    pub cells: u64,
}

/// Which rewrite passes run. Disabling a pass is for ablation experiments
/// (E26) — production paths keep the default. The privacy pass has no
/// switch on purpose: it is mandatory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Pass 1: summarizability validation.
    pub summarizability: bool,
    /// Pass 2: lattice-aware source selection (off = scan the largest
    /// ancestor, i.e. the base cuboid).
    pub lattice: bool,
    /// Pass 3: predicate/roll-up pushdown toward the scan.
    pub pushdown: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self { summarizability: true, lattice: true, pushdown: true }
    }
}

/// A dimension-coded predicate: keep cells whose coordinate on `dim` is in
/// `allowed` (sorted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedPredicate {
    /// Dimension index.
    pub dim: usize,
    /// Allowed member ids, ascending.
    pub allowed: Vec<u32>,
}

/// A roll-up the leaf scan performs before aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafRollup {
    /// Dimension index.
    pub dim: usize,
    /// Dimension name (for `ops::s_aggregate`).
    pub dim_name: String,
    /// Target level name.
    pub level: String,
}

/// One requested aggregate, resolved to a measure slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedAgg {
    /// Output column label.
    pub label: String,
    /// Summary function.
    pub func: crate::measure::SummaryFunction,
    /// Measure slot (`COUNT(*)` reads slot 0's count).
    pub measure: usize,
}

/// One physical grouping set to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedSet {
    /// Keep-mask over the plan's group columns, in GROUP BY order.
    pub keep: Vec<bool>,
    /// Target cuboid mask (bit `i` = schema dimension `i`).
    pub target: u32,
    /// Mask the source scan must cover (target plus pushed-down filter
    /// dimensions).
    pub scan: u32,
    /// Source candidates in derivation-preference order, with estimated
    /// cell counts; later entries are the degraded-fallback chain.
    pub candidates: Vec<(u32, u64)>,
}

/// One rewrite-pass log entry, for EXPLAIN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// Pass name (`summarizability`, `lattice`, `pushdown`, `privacy`).
    pub pass: &'static str,
    /// What the pass did to this plan.
    pub note: String,
}

/// The planner's output: a physical query description shared by every
/// front-end and consumed by [`crate::plan::exec::execute`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The scanned object/table name.
    pub scan: String,
    /// Group column labels in GROUP BY order (user spelling, level names
    /// included).
    pub group_display: Vec<String>,
    /// Schema dimension index of each group column.
    pub dim_bits: Vec<usize>,
    /// The grouping sets to answer, in output order.
    pub sets: Vec<PlannedSet>,
    /// Output aggregates in SELECT order.
    pub aggs: Vec<PlannedAgg>,
    /// Predicates the leaf scan applies (empty when pushed to the store).
    pub leaf_predicates: Vec<CodedPredicate>,
    /// Roll-ups the leaf scan applies before aggregation.
    pub leaf_rollups: Vec<LeafRollup>,
    /// Predicates pushed into the store scan, merged per dimension.
    pub scan_filters: Vec<(usize, Vec<u32>)>,
    /// The privacy policy every answer passes through.
    pub policy: PrivacyPolicy,
    /// Rewrite-pass log, in pass order.
    pub rewrites: Vec<Rewrite>,
    /// Dimension count of the planning space.
    pub dims: usize,
    logical: String,
}

impl PlannedQuery {
    /// The union of all set targets — the one base projection an
    /// object-backed execution scans.
    pub fn base_mask(&self) -> u32 {
        self.sets.iter().fold(0, |m, s| m | s.target)
    }

    /// Re-runs the lattice pass against a materialized catalog — used when
    /// a front-end plans against an object and then builds a view store to
    /// serve the sets.
    pub fn retarget(&mut self, dims: usize, catalog: &[CatalogEntry], lattice: bool) {
        self.dims = dims;
        for set in &mut self.sets {
            set.scan = set.target | filter_mask(&self.scan_filters);
            set.candidates = candidates_for(set.scan, catalog, lattice);
        }
        self.rewrites.push(Rewrite {
            pass: "lattice",
            note: format!(
                "retargeted {} set(s) onto a {}-view materialized catalog",
                self.sets.len(),
                catalog.len()
            ),
        });
    }

    /// Renders the EXPLAIN text: logical plan, rewrites applied, physical
    /// grouping sets. Physical *spans* come from [`crate::trace`] when the
    /// plan actually runs.
    pub fn explain(&self) -> String {
        let mut out = String::from("logical plan\n");
        for line in self.logical.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("rewrites\n");
        for (i, r) in self.rewrites.iter().enumerate() {
            out.push_str(&format!("  {}. {}: {}\n", i + 1, r.pass, r.note));
        }
        out.push_str("physical grouping sets\n");
        for set in &self.sets {
            let cands: Vec<String> =
                set.candidates
                    .iter()
                    .map(|(m, c)| {
                        if *c == 0 {
                            format!("{m:#b} (base)")
                        } else {
                            format!("{m:#b} ({c} cells)")
                        }
                    })
                    .collect();
            out.push_str(&format!(
                "  target {:#b} ← scan {:#b}; candidates: {}\n",
                set.target,
                set.scan,
                if cands.is_empty() { "∅".to_owned() } else { cands.join(", ") }
            ));
        }
        out.pop();
        out
    }
}

fn filter_mask(filters: &[(usize, Vec<u32>)]) -> u32 {
    filters.iter().fold(0, |m, (d, _)| m | (1u32 << d))
}

fn candidates_for(scan: u32, catalog: &[CatalogEntry], lattice: bool) -> Vec<(u32, u64)> {
    let mut c: Vec<(u32, u64)> =
        catalog.iter().filter(|e| scan & !e.mask == 0).map(|e| (e.mask, e.cells)).collect();
    if lattice {
        c.sort_unstable_by_key(|&(m, n)| (n, m));
    } else {
        // Ablation: cost-unaware routing always scans the largest
        // (base-most) ancestor first; the rest stay as fallbacks.
        c.sort_unstable_by_key(|&(m, n)| (Reverse(n), m));
    }
    c
}

/// The rule-based planner. Construct with [`Planner::for_object`] (answers
/// derive from one statistical object) or [`Planner::for_store`] (answers
/// derive from a materialized-view catalog), then [`Planner::plan`].
#[derive(Debug, Clone)]
pub struct Planner<'a> {
    schema: Option<&'a Schema>,
    dims: usize,
    catalog: Option<&'a [CatalogEntry]>,
    policy: PrivacyPolicy,
    config: PlannerConfig,
    coded_filters: Vec<CodedPredicate>,
}

impl<'a> Planner<'a> {
    /// Plans against a statistical object: names resolve in `schema`, and
    /// every set derives from one base projection of the object.
    pub fn for_object(schema: &'a Schema) -> Self {
        Self {
            schema: Some(schema),
            dims: schema.dim_count(),
            catalog: None,
            policy: PrivacyPolicy::none(),
            config: PlannerConfig::default(),
            coded_filters: Vec::new(),
        }
    }

    /// Plans against a materialized catalog of `dims` dimensions (the view
    /// store); name resolution needs [`Planner::with_schema`].
    pub fn for_store(dims: usize, catalog: &'a [CatalogEntry]) -> Self {
        Self {
            schema: None,
            dims,
            catalog: Some(catalog),
            policy: PrivacyPolicy::none(),
            config: PlannerConfig::default(),
            coded_filters: Vec::new(),
        }
    }

    /// Attaches a schema for name resolution (store-backed planning of
    /// named queries).
    #[must_use]
    pub fn with_schema(mut self, schema: &'a Schema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Sets the privacy policy the mandatory pass attaches.
    #[must_use]
    pub fn with_policy(mut self, policy: PrivacyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides which optional passes run (ablation only).
    #[must_use]
    pub fn with_config(mut self, config: PlannerConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches dimension-coded selection predicates that need no name
    /// resolution — the view-store front end's slice filters. They join
    /// the named `Select` predicates in the predicate-placement pass, so
    /// they push into the store scan (or the leaf scan) exactly like a
    /// resolved `Select`.
    #[must_use]
    pub fn with_coded_filters(mut self, filters: Vec<CodedPredicate>) -> Self {
        self.coded_filters = filters;
        self
    }

    /// Normalizes `plan` and applies the rewrite passes.
    pub fn plan(&self, plan: &Plan) -> Result<PlannedQuery> {
        let norm = normalize(plan)?;
        let policy = norm.policy.cloned().unwrap_or_else(|| self.policy.clone());
        let mut rewrites = Vec::new();

        // ---- Pass 3 groundwork: drill-downs cancel pending roll-ups.
        // (Cancellation must precede validation: a cancelled roll-up is
        // never performed, so it must not be able to fail the plan.)
        let mut cancelled = 0usize;
        let mut nav_rollups: Vec<(&str, &str)> = Vec::new();
        for nav in &norm.nav {
            match nav {
                Nav::RollUp(dim, level) => nav_rollups.push((dim, level)),
                Nav::DrillDown(dim) => {
                    let Some(pos) = nav_rollups.iter().rposition(|(d, _)| d == dim) else {
                        return Err(Error::InvalidSchema(format!(
                            "drill-down of `{dim}` below the leaf level"
                        )));
                    };
                    nav_rollups.remove(pos);
                    cancelled += 1;
                }
            }
        }

        // ---- Pass 1: name resolution + summarizability validation.
        let mut resolved_preds: Vec<(usize, bool, Vec<u32>)> = Vec::new();
        for p in &norm.predicates {
            let schema = self.named_schema()?;
            let d = schema.dim_index(&p.column)?;
            let dim = &schema.dimensions()[d];
            let mut allowed: Vec<u32> = dim
                .members()
                .iter()
                .filter(|(_, v)| (*v == p.value) != p.negated)
                .map(|(id, _)| id)
                .collect();
            allowed.sort_unstable();
            resolved_preds.push((d, p.negated, allowed));
        }
        for f in &self.coded_filters {
            if f.dim >= self.dims {
                return Err(Error::InvalidSchema(format!(
                    "coded filter dimension {} out of range for {} dimensions",
                    f.dim, self.dims
                )));
            }
            let mut allowed = f.allowed.clone();
            allowed.sort_unstable();
            allowed.dedup();
            resolved_preds.push((f.dim, false, allowed));
        }

        let mut leaf_rollups: Vec<LeafRollup> = Vec::new();
        let mut checked_rollups = 0usize;
        // Surviving navigation roll-ups: the *last* roll-up of a dimension
        // is its net level (hierarchy levels map leaf → level directly).
        for (dim, level) in &nav_rollups {
            let schema = self.named_schema()?;
            let d = schema.dim_index(dim)?;
            self.check_rollup(schema, d, level, &mut checked_rollups)?;
            leaf_rollups.retain(|r| r.dim != d);
            leaf_rollups.push(LeafRollup {
                dim: d,
                dim_name: (*dim).to_owned(),
                level: (*level).to_owned(),
            });
        }

        // Group columns: dimension names resolve now; hierarchy-level
        // names resolve to a leaf roll-up; unknown names are deferred so
        // measure-resolution errors keep precedence (matching the
        // historical interpreter).
        let mut group_display: Vec<String> = Vec::new();
        let mut resolved_group: Vec<Option<usize>> = Vec::new();
        let (spec, aggs): (GroupingSpec, &[AggRequest]) = match &norm.shape {
            Shape::Sets { group, spec, aggs } => {
                group_display = group.to_vec();
                let schema = self.named_schema()?;
                for name in *group {
                    if let Ok(d) = schema.dim_index(name) {
                        resolved_group.push(Some(d));
                        continue;
                    }
                    let found = schema.dimensions().iter().enumerate().find(|(_, dm)| {
                        dm.default_hierarchy()
                            .map(|h| h.levels().iter().any(|l| l.name() == name.as_str()))
                            .unwrap_or(false)
                    });
                    let Some((d, dm)) = found else {
                        resolved_group.push(None); // unknown: error later
                        continue;
                    };
                    if let Some(h) = dm.default_hierarchy() {
                        if self.config.summarizability {
                            let to_level = h.level_index(name)?;
                            let vs = summarizability::check_aggregate(schema, d, h, to_level);
                            if !vs.is_empty() {
                                return Err(Error::Summarizability(vs));
                            }
                            checked_rollups += 1;
                        }
                    }
                    if !leaf_rollups.iter().any(|r| r.dim == d && r.level == *name) {
                        leaf_rollups.push(LeafRollup {
                            dim: d,
                            dim_name: dm.name().to_owned(),
                            level: name.clone(),
                        });
                    }
                    resolved_group.push(Some(d));
                }
                (*spec, *aggs)
            }
            Shape::Keep(keep) => {
                group_display = keep.to_vec();
                let schema = self.named_schema()?;
                for name in *keep {
                    resolved_group.push(Some(schema.dim_index(name)?));
                }
                (GroupingSpec::Single, &[][..])
            }
            Shape::Mask(mask) => {
                if self.dims < 32 && *mask >= 1u32 << self.dims {
                    return Err(Error::InvalidSchema(format!("mask {mask:b} out of range")));
                }
                for d in 0..self.dims {
                    if mask >> d & 1 == 1 {
                        resolved_group.push(Some(d));
                        group_display.push(format!("dim{d}"));
                    }
                }
                (GroupingSpec::Single, &[][..])
            }
            Shape::All => {
                for d in 0..self.dims {
                    resolved_group.push(Some(d));
                }
                if let Some(schema) = self.schema {
                    group_display =
                        schema.dimensions().iter().map(|dm| dm.name().to_owned()).collect();
                } else {
                    group_display = (0..self.dims).map(|d| format!("dim{d}")).collect();
                }
                (GroupingSpec::Single, &[][..])
            }
        };

        // Aggregate validation, in the historical order: measures first,
        // then pinned dimensions, then any still-unresolved group name.
        let mut planned_aggs = Vec::with_capacity(aggs.len());
        for a in aggs {
            let measure = match &a.measure {
                Some(m) => self.named_schema()?.measure_index(m)?,
                None => 0,
            };
            planned_aggs.push(PlannedAgg { label: a.label.clone(), func: a.func, measure });
        }
        let pinned: Vec<usize> =
            resolved_preds.iter().filter(|(_, neg, _)| !neg).map(|(d, _, _)| *d).collect();
        let mut dim_bits = Vec::with_capacity(resolved_group.len());
        for (slot, name) in resolved_group.iter().zip(group_display.iter()) {
            match slot {
                Some(d) => dim_bits.push(*d),
                None => return Err(Error::DimensionNotFound(name.clone())),
            }
        }
        let aggregated: Vec<usize> = match spec {
            GroupingSpec::Single if matches!(norm.shape, Shape::Sets { .. }) => {
                (0..self.dims).filter(|d| !dim_bits.contains(d) && !pinned.contains(d)).collect()
            }
            _ if matches!(norm.shape, Shape::Sets { .. }) => {
                (0..self.dims).filter(|d| !pinned.contains(d)).collect()
            }
            _ => Vec::new(), // coded shapes carry no aggregate requests
        };
        if self.config.summarizability && !aggs.is_empty() {
            let schema = self.named_schema()?;
            let mut violations = Vec::new();
            for (a, pa) in aggs.iter().zip(&planned_aggs) {
                if a.measure.is_none() {
                    continue; // COUNT(*) is always meaningful
                }
                let measure = &schema.measures()[pa.measure];
                for &d in &aggregated {
                    let dim = &schema.dimensions()[d];
                    if let Some(v) =
                        check_type(measure.name(), measure.kind(), a.func, dim.name(), dim.role())
                    {
                        violations.push(v);
                    }
                }
            }
            if !violations.is_empty() {
                violations.dedup();
                return Err(Error::Summarizability(violations));
            }
        }
        rewrites.push(Rewrite {
            pass: "summarizability",
            note: if !self.config.summarizability {
                "skipped (disabled)".to_owned()
            } else if aggs.is_empty() && checked_rollups == 0 {
                "nothing to validate (coded cuboid request)".to_owned()
            } else {
                format!(
                    "validated {} aggregate(s) over {} collapsed dimension(s); {} roll-up(s) \
                     structurally checked",
                    aggs.len(),
                    aggregated.len(),
                    checked_rollups
                )
            },
        });

        // ---- Pass 3: predicate placement (roll-up movement happened
        // above; here predicates pick their scan).
        let merged = merge_predicates(&resolved_preds);
        let push_to_store = self.catalog.is_some() && self.config.pushdown && !merged.is_empty();
        let (leaf_predicates, scan_filters) = if push_to_store {
            (Vec::new(), merged.iter().map(|p| (p.dim, p.allowed.clone())).collect())
        } else {
            (merged, Vec::new())
        };

        // ---- Pass 2: lattice-aware source selection.
        let keeps = grouping_sets(spec, dim_bits.len())?;
        let fmask = filter_mask(&scan_filters);
        let mut sets: Vec<PlannedSet> = keeps
            .into_iter()
            .map(|keep| {
                let target = keep
                    .iter()
                    .zip(&dim_bits)
                    .filter(|(k, _)| **k)
                    .fold(0u32, |m, (_, &d)| m | (1u32 << d));
                PlannedSet { keep, target, scan: target | fmask, candidates: Vec::new() }
            })
            .collect();
        let lattice_note = match self.catalog {
            Some(catalog) => {
                let mut routed = 0u64;
                let base = catalog.iter().map(|e| e.cells).max().unwrap_or(0);
                let mut first_choice = 0u64;
                for set in &mut sets {
                    set.candidates = candidates_for(set.scan, catalog, self.config.lattice);
                    if let Some(&(_, c)) = set.candidates.first() {
                        first_choice += c;
                        if c < base {
                            routed += 1;
                        }
                    }
                }
                if self.config.lattice {
                    format!(
                        "routed {routed} of {} set(s) to sub-base ancestors; est {first_choice} \
                         cells scanned vs {} from base",
                        sets.len(),
                        base.saturating_mul(sets.len() as u64)
                    )
                } else {
                    "disabled (every set scans its largest ancestor)".to_owned()
                }
            }
            None => {
                let base_mask = sets.iter().fold(0u32, |m, s| m | s.target);
                for set in &mut sets {
                    set.candidates = vec![(base_mask, 0)];
                    set.scan = set.target;
                }
                format!(
                    "one base projection at mask {base_mask:#b} serves {} grouping set(s)",
                    sets.len()
                )
            }
        };
        rewrites.push(Rewrite { pass: "lattice", note: lattice_note });

        rewrites.push(Rewrite {
            pass: "pushdown",
            note: {
                let mut parts = Vec::new();
                if cancelled > 0 {
                    parts.push(format!("{cancelled} roll-up(s) cancelled by drill-down"));
                }
                if !leaf_rollups.is_empty() {
                    parts.push(format!("{} roll-up(s) at the leaf scan", leaf_rollups.len()));
                }
                if !scan_filters.is_empty() {
                    parts.push(format!(
                        "{} predicate(s) pushed into the store scan",
                        scan_filters.len()
                    ));
                } else if !leaf_predicates.is_empty() {
                    parts.push(format!(
                        "{} predicate(s) at the leaf scan{}",
                        leaf_predicates.len(),
                        if self.config.pushdown { "" } else { " (pushdown disabled)" }
                    ));
                }
                if parts.is_empty() {
                    "nothing to move".to_owned()
                } else {
                    parts.join("; ")
                }
            },
        });

        // ---- Pass 4: mandatory privacy barrier.
        rewrites.push(Rewrite {
            pass: "privacy",
            note: format!("policy {} enforced on every grouping set", policy.describe()),
        });
        let logical = match plan {
            Plan::Restrict { .. } => plan.render(),
            _ => plan.clone().restrict(policy.clone()).render(),
        };

        Ok(PlannedQuery {
            scan: norm.scan.to_owned(),
            group_display,
            dim_bits,
            sets,
            aggs: planned_aggs,
            leaf_predicates,
            leaf_rollups,
            scan_filters,
            policy,
            rewrites,
            dims: self.dims,
            logical,
        })
    }

    fn named_schema(&self) -> Result<&'a Schema> {
        self.schema.ok_or_else(|| Error::InvalidSchema("named plan nodes require a schema".into()))
    }

    fn check_rollup(
        &self,
        schema: &Schema,
        d: usize,
        level: &str,
        checked: &mut usize,
    ) -> Result<()> {
        let dim = &schema.dimensions()[d];
        let Some(h) = dim.default_hierarchy() else {
            return Err(Error::HierarchyNotFound {
                dimension: dim.name().to_owned(),
                hierarchy: "default".to_owned(),
            });
        };
        let to_level = h.level_index(level)?;
        if self.config.summarizability {
            let vs = summarizability::check_aggregate(schema, d, h, to_level);
            if !vs.is_empty() {
                return Err(Error::Summarizability(vs));
            }
            *checked += 1;
        }
        Ok(())
    }
}

fn merge_predicates(resolved: &[(usize, bool, Vec<u32>)]) -> Vec<CodedPredicate> {
    let mut merged: Vec<CodedPredicate> = Vec::new();
    for (d, _, allowed) in resolved {
        if let Some(existing) = merged.iter_mut().find(|p| p.dim == *d) {
            existing.allowed.retain(|id| allowed.binary_search(id).is_ok());
        } else {
            merged.push(CodedPredicate { dim: *d, allowed: allowed.clone() });
        }
    }
    merged
}

enum Nav<'p> {
    RollUp(&'p str, &'p str),
    DrillDown(&'p str),
}

enum Shape<'p> {
    /// A coded cuboid request.
    Mask(u32),
    /// A grouping-set family with aggregates.
    Sets { group: &'p [String], spec: GroupingSpec, aggs: &'p [AggRequest] },
    /// An S-projection onto named dimensions.
    Keep(&'p [String]),
    /// No aggregation node: the full space at leaf granularity.
    All,
}

struct Normalized<'p> {
    scan: &'p str,
    predicates: Vec<&'p PlanPredicate>,
    nav: Vec<Nav<'p>>,
    shape: Shape<'p>,
    policy: Option<&'p PrivacyPolicy>,
}

fn normalize(plan: &Plan) -> Result<Normalized<'_>> {
    let mut cur = plan;
    let mut order = 0usize;
    let mut policy = None;
    let mut shape = Shape::All;
    let mut shape_pos: Option<usize> = None;
    let mut pred_nodes: Vec<(usize, &[PlanPredicate])> = Vec::new();
    let mut nav_nodes: Vec<(usize, Nav<'_>)> = Vec::new();
    let scan = loop {
        match cur {
            Plan::Scan { source } => break source.as_str(),
            Plan::Restrict { input, policy: p } => {
                if order > 0 {
                    return Err(Error::InvalidSchema(
                        "Restrict must be the outermost plan operator".into(),
                    ));
                }
                policy = Some(p);
                cur = input;
            }
            Plan::Select { input, predicates } => {
                pred_nodes.push((order, predicates));
                cur = input;
            }
            Plan::RollUp { input, dim, level } => {
                nav_nodes.push((order, Nav::RollUp(dim, level)));
                cur = input;
            }
            Plan::DrillDown { input, dim } => {
                nav_nodes.push((order, Nav::DrillDown(dim)));
                cur = input;
            }
            Plan::Project { input, keep } => {
                set_shape(&mut shape, &mut shape_pos, Shape::Keep(keep), order)?;
                cur = input;
            }
            Plan::Aggregate { input, mask } => {
                set_shape(&mut shape, &mut shape_pos, Shape::Mask(*mask), order)?;
                cur = input;
            }
            Plan::GroupingSets { input, group, spec, aggs } => {
                set_shape(
                    &mut shape,
                    &mut shape_pos,
                    Shape::Sets { group, spec: *spec, aggs },
                    order,
                )?;
                cur = input;
            }
        }
        order += 1;
    };
    if let Some(sp) = shape_pos {
        let above_shape =
            pred_nodes.iter().map(|(o, _)| *o).chain(nav_nodes.iter().map(|(o, _)| *o));
        for o in above_shape {
            if o < sp {
                return Err(Error::InvalidSchema(
                    "selection or navigation above an aggregation node is not supported".into(),
                ));
            }
        }
    }
    // Walk order is outermost-first; application order is innermost-first.
    pred_nodes.reverse();
    nav_nodes.reverse();
    Ok(Normalized {
        scan,
        predicates: pred_nodes.into_iter().flat_map(|(_, ps)| ps.iter()).collect(),
        nav: nav_nodes.into_iter().map(|(_, n)| n).collect(),
        shape,
        policy,
    })
}

fn set_shape<'p>(
    shape: &mut Shape<'p>,
    pos: &mut Option<usize>,
    new: Shape<'p>,
    order: usize,
) -> Result<()> {
    if pos.is_some() {
        return Err(Error::InvalidSchema("a plan may contain at most one aggregation node".into()));
    }
    *shape = new;
    *pos = Some(order);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute, SummaryFunction};

    fn schema() -> Schema {
        Schema::builder("census")
            .dimension(Dimension::spatial("state", ["AL", "CA"]))
            .dimension(Dimension::temporal("year", ["1990", "1991"]))
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .measure(SummaryAttribute::new("births", MeasureKind::Flow))
            .function(SummaryFunction::Sum)
            .build()
            .unwrap()
    }

    fn sum_births() -> AggRequest {
        AggRequest {
            func: SummaryFunction::Sum,
            measure: Some("births".into()),
            label: "SUM(\"births\")".into(),
        }
    }

    #[test]
    fn cube_plan_expands_sets_full_first_apex_last() {
        let s = schema();
        let plan = Plan::scan("census").grouping_sets(
            vec!["state".into(), "sex".into()],
            GroupingSpec::Cube,
            vec![sum_births()],
        );
        let q = Planner::for_object(&s).plan(&plan).unwrap();
        assert_eq!(q.sets.len(), 4);
        assert_eq!(q.dim_bits, vec![0, 2]);
        assert_eq!(q.sets[0].target, 0b101, "full grouping first");
        assert_eq!(q.sets[3].target, 0, "apex last");
        assert_eq!(q.base_mask(), 0b101);
        assert_eq!(q.sets[0].candidates, vec![(0b101, 0)], "object path derives from one base");
        assert_eq!(q.rewrites.len(), 4);
        assert_eq!(
            q.rewrites.iter().map(|r| r.pass).collect::<Vec<_>>(),
            vec!["summarizability", "lattice", "pushdown", "privacy"]
        );
    }

    #[test]
    fn summarizability_pass_refuses_stock_over_time_and_ablation_admits_it() {
        let s = schema();
        let plan = Plan::scan("census").grouping_sets(
            vec!["state".into()],
            GroupingSpec::Single,
            vec![AggRequest {
                func: SummaryFunction::Sum,
                measure: Some("population".into()),
                label: "SUM(\"population\")".into(),
            }],
        );
        let err = Planner::for_object(&s).plan(&plan).unwrap_err();
        assert!(matches!(err, Error::Summarizability(_)), "{err}");
        let off = PlannerConfig { summarizability: false, ..PlannerConfig::default() };
        assert!(Planner::for_object(&s).with_config(off).plan(&plan).is_ok());
    }

    #[test]
    fn equality_predicate_pins_its_dimension_for_validation() {
        let s = schema();
        // population over a pinned year is the paper's singleton context —
        // allowed, because year is not aggregated over.
        let plan =
            Plan::scan("census").select(vec![PlanPredicate::eq("year", "1990")]).grouping_sets(
                vec!["state".into(), "year".into(), "sex".into()],
                GroupingSpec::Single,
                vec![AggRequest {
                    func: SummaryFunction::Sum,
                    measure: Some("population".into()),
                    label: "SUM(\"population\")".into(),
                }],
            );
        assert!(Planner::for_object(&s).plan(&plan).is_ok());
    }

    #[test]
    fn lattice_pass_picks_smallest_ancestor_and_keeps_fallback_chain() {
        let catalog =
            [CatalogEntry { mask: 0b111, cells: 100 }, CatalogEntry { mask: 0b011, cells: 10 }];
        let plan = Plan::scan("cube").aggregate_mask(0b001);
        let q = Planner::for_store(3, &catalog).plan(&plan).unwrap();
        assert_eq!(q.sets.len(), 1);
        assert_eq!(q.sets[0].candidates, vec![(0b011, 10), (0b111, 100)]);
        // Ablation: lattice off scans the base first but keeps fallbacks.
        let off = PlannerConfig { lattice: false, ..PlannerConfig::default() };
        let q = Planner::for_store(3, &catalog).with_config(off).plan(&plan).unwrap();
        assert_eq!(q.sets[0].candidates, vec![(0b111, 100), (0b011, 10)]);
    }

    #[test]
    fn mask_out_of_range_is_refused_with_the_store_message() {
        let catalog = [CatalogEntry { mask: 0b111, cells: 100 }];
        let plan = Plan::scan("cube").aggregate_mask(0b1000);
        let err = Planner::for_store(3, &catalog).plan(&plan).unwrap_err();
        assert_eq!(err, Error::InvalidSchema("mask 1000 out of range".into()));
    }

    #[test]
    fn pushdown_moves_predicates_into_store_scans_only() {
        let s = schema();
        let catalog = [CatalogEntry { mask: 0b111, cells: 100 }];
        let plan = Plan::scan("census")
            .select(vec![PlanPredicate::eq("sex", "male")])
            .grouping_sets(vec!["state".into()], GroupingSpec::Single, vec![sum_births()]);
        let q = Planner::for_store(3, &catalog).with_schema(&s).plan(&plan).unwrap();
        assert!(q.leaf_predicates.is_empty());
        assert_eq!(q.scan_filters, vec![(2, vec![0])]);
        assert_eq!(q.sets[0].target, 0b001);
        assert_eq!(q.sets[0].scan, 0b101, "scan must cover the filter dimension");
        // Object targets keep predicates at the leaf.
        let q = Planner::for_object(&s).plan(&plan).unwrap();
        assert_eq!(q.leaf_predicates, vec![CodedPredicate { dim: 2, allowed: vec![0] }]);
        assert!(q.scan_filters.is_empty());
        // Ablation: pushdown off keeps them at the leaf even for stores.
        let off = PlannerConfig { pushdown: false, ..PlannerConfig::default() };
        let q =
            Planner::for_store(3, &catalog).with_schema(&s).with_config(off).plan(&plan).unwrap();
        assert!(q.scan_filters.is_empty());
        assert_eq!(q.leaf_predicates.len(), 1);
    }

    #[test]
    fn repeated_predicates_on_one_dimension_intersect() {
        let s = schema();
        let plan = Plan::scan("census")
            .select(vec![PlanPredicate::ne("state", "AL"), PlanPredicate::ne("state", "CA")])
            .grouping_sets(vec!["sex".into()], GroupingSpec::Single, vec![sum_births()]);
        let q = Planner::for_object(&s).plan(&plan).unwrap();
        assert_eq!(q.leaf_predicates, vec![CodedPredicate { dim: 0, allowed: vec![] }]);
    }

    #[test]
    fn drill_down_cancels_the_matching_roll_up() {
        let s = Schema::builder("retailish")
            .dimension(Dimension::classified(
                "store",
                crate::hierarchy::Hierarchy::builder("geo")
                    .level("store")
                    .level("city")
                    .edge("s1", "c1")
                    .edge("s2", "c1")
                    .build()
                    .unwrap(),
            ))
            .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
            .function(SummaryFunction::Sum)
            .build()
            .unwrap();
        let plan = Plan::scan("sales").roll_up("store", "city").drill_down("store");
        let q = Planner::for_object(&s).plan(&plan).unwrap();
        assert!(q.leaf_rollups.is_empty(), "cancelled pair leaves no roll-up");
        assert!(q.rewrites.iter().any(|r| r.pass == "pushdown" && r.note.contains("cancelled")));
        let plan = Plan::scan("sales").roll_up("store", "city");
        let q = Planner::for_object(&s).plan(&plan).unwrap();
        assert_eq!(q.leaf_rollups.len(), 1);
        assert_eq!(q.leaf_rollups[0].level, "city");
        let plan = Plan::scan("sales").drill_down("store");
        assert!(Planner::for_object(&s).plan(&plan).is_err(), "below leaf");
    }

    #[test]
    fn privacy_pass_is_always_present_and_renders_in_explain() {
        let s = schema();
        let plan = Plan::scan("census").grouping_sets(
            vec!["state".into()],
            GroupingSpec::Single,
            vec![sum_births()],
        );
        let q =
            Planner::for_object(&s).with_policy(PrivacyPolicy::suppress(3)).plan(&plan).unwrap();
        assert_eq!(q.policy, PrivacyPolicy::suppress(3));
        let text = q.explain();
        assert!(text.contains("logical plan"), "{text}");
        assert!(text.contains("Restrict{policy=suppress(k=3)}"), "{text}");
        assert!(text.contains("4. privacy: policy suppress(k=3) enforced"), "{text}");
        assert!(text.contains("physical grouping sets"), "{text}");
        // The permissive default still logs the pass: it is mandatory.
        let q = Planner::for_object(&s).plan(&plan).unwrap();
        assert!(q.explain().contains("4. privacy: policy none enforced"));
    }

    #[test]
    fn malformed_plans_are_refused() {
        let s = schema();
        let double = Plan::scan("census").aggregate_mask(1).grouping_sets(
            vec![],
            GroupingSpec::Single,
            vec![],
        );
        assert!(Planner::for_object(&s).plan(&double).is_err());
        let nested_restrict = Plan::scan("census").restrict(PrivacyPolicy::none()).grouping_sets(
            vec![],
            GroupingSpec::Single,
            vec![sum_births()],
        );
        assert!(Planner::for_object(&s).plan(&nested_restrict).is_err());
        let select_above = Plan::scan("census")
            .grouping_sets(vec![], GroupingSpec::Single, vec![sum_births()])
            .select(vec![PlanPredicate::eq("state", "AL")]);
        assert!(Planner::for_object(&s).plan(&select_above).is_err());
    }
}
