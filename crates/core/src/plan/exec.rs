//! The one executor every front-end shares.
//!
//! A [`PlannedQuery`] names, per grouping set, a *target* cuboid and an
//! ordered candidate list of materialized sources. The executor walks that
//! list (later candidates are the degraded-fallback chain), derives the
//! target with the batch-at-a-time kernels of [`crate::plan::kernels`]
//! (fused scan + filter + aggregate over sorted [`CellBlock`]s), optionally
//! probes/feeds a cache through the [`PlanSource`] hooks, and finally runs
//! the mandatory privacy pass over the whole answer. Per-set work is traced
//! as the `cube.answer` span (and `cube.cache` around a live probe), so
//! profiles look the same no matter which front-end built the plan.
//!
//! The historical tuple-at-a-time interpreter is frozen here as
//! [`execute_interpreter`] — the differential oracle the kernel CI gate
//! replays every batched answer against, bit for bit. It is not on any
//! production path.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::measure::AggState;
use crate::object::StatisticalObject;
use crate::plan::enforce::{self, EnforcementStats};
use crate::plan::kernels::{bit_positions, derive_block, merge_blocks, CellBlock};
use crate::plan::planner::{PlannedQuery, PlannedSet};
use crate::plan::policy::PrivacyPolicy;
use crate::schema::Schema;
use crate::trace;

/// One derived cell of the *oracle* representation: per-measure aggregation
/// states plus the privacy verdict. The batched executor's equivalent is a
/// row of a [`CellBlock`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCell {
    /// Aggregation state per measure slot.
    pub states: Vec<AggState>,
    /// Withheld by the privacy pass.
    pub suppressed: bool,
}

/// Cells of one cuboid in the oracle's tuple-at-a-time representation,
/// keyed by kept coordinates (schema-dimension order).
pub type PlanCells = HashMap<Box<[u32]>, PlanCell>;

/// A loaded source cuboid and what reading it cost. The block is shared —
/// repeated loads of the same source hand out the same allocation.
#[derive(Debug, Clone)]
pub struct SourceBlock {
    /// The source's cells at its own granularity, sorted by key.
    pub cells: Arc<CellBlock>,
    /// Cells scanned to produce them (the degradation cost basis).
    pub scanned: u64,
}

/// What the executor needs from a physical backend: load source cuboids,
/// and optionally front a cache.
pub trait PlanSource {
    /// Loads the materialized cuboid `source` (verified I/O; an `Err` here
    /// sends the executor down the fallback chain).
    fn load(&self, source: u32) -> Result<SourceBlock>;

    /// Whether [`probe`](PlanSource::probe)/[`admit`](PlanSource::admit)
    /// are live. Probing is skipped for plans with pushed-down scan
    /// filters — filtered derivations must never be admitted under (or
    /// served from) an unfiltered cuboid's key.
    fn probes(&self) -> bool {
        false
    }

    /// Cache lookup: a fully derived target and its original source mask.
    fn probe(&self, _target: u32) -> Option<(Arc<CellBlock>, u32)> {
        None
    }

    /// Derives `target` from `source` inside the backend — e.g. a chunked
    /// scan over sealed pages that never materializes the dense source
    /// block — returning cells already at *target* granularity with the
    /// pushed-down `filters` applied. `None` means "no shortcut": the
    /// executor falls back to [`load`](PlanSource::load) + the dense
    /// derivation kernel. `Some(Err(_))` counts as a failed candidate and
    /// sends the executor down the fallback chain, exactly like a failed
    /// load. Implementations must be bit-for-bit equivalent to the dense
    /// path (the differential suites replay both).
    fn load_derived(
        &self,
        _source: u32,
        _target: u32,
        _filters: &[(usize, Vec<u32>)],
    ) -> Option<Result<SourceBlock>> {
        None
    }

    /// Offers a freshly derived, *pre-enforcement* result for admission.
    fn admit(
        &self,
        _target: u32,
        _source: u32,
        _cells_scanned: u64,
        _cells: &Arc<CellBlock>,
        _degraded: bool,
    ) {
    }
}

/// Why an answer is degraded: the preferred source(s) failed and a larger
/// ancestor served the set.
#[derive(Debug, Clone)]
pub struct PlanDegradation {
    /// The requested target mask.
    pub requested: u32,
    /// The source that finally served it.
    pub served_from: u32,
    /// The failed candidates, in attempt order.
    pub failed: Vec<(u32, Error)>,
    /// Extra cells scanned versus the first-choice source.
    pub extra_cells: u64,
}

/// One answered grouping set.
#[derive(Debug, Clone)]
pub struct SetAnswer {
    /// Keep-mask over the plan's group columns.
    pub keep: Vec<bool>,
    /// Target cuboid mask.
    pub target: u32,
    /// Source mask that served it.
    pub source: u32,
    /// The derived (and privacy-enforced) cells, sorted by key. Shared:
    /// cache hits alias the cached block; the privacy pass copies on write.
    pub cells: Arc<CellBlock>,
    /// Cells scanned in the source (0 on a cache hit).
    pub cells_scanned: u64,
    /// Served straight from the cache.
    pub cache_hit: bool,
    /// Present when the preferred source(s) failed.
    pub degraded: Option<PlanDegradation>,
}

/// A fully executed plan.
#[derive(Debug, Clone)]
pub struct PlanExecution {
    /// Per-set answers, in plan order.
    pub sets: Vec<SetAnswer>,
    /// What the privacy pass did.
    pub enforcement: EnforcementStats,
}

impl PlanExecution {
    /// Total cells scanned across all sets.
    pub fn cells_scanned(&self) -> u64 {
        self.sets.iter().map(|s| s.cells_scanned).sum()
    }

    /// How many sets were served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.sets.iter().filter(|s| s.cache_hit).count()
    }

    /// How many sets were served degraded.
    pub fn degraded_answers(&self) -> usize {
        self.sets.iter().filter(|s| s.degraded.is_some()).count()
    }
}

/// Answers one grouping set: probe the cache (when live), walk the
/// candidate chain — preferring a backend-side derived scan
/// ([`PlanSource::load_derived`]) over load + dense kernel — and offer the
/// result for admission. Shared verbatim by [`execute`] and
/// [`execute_partial`], so a shard answers a set exactly the way the
/// single-store path does.
fn answer_set<S: PlanSource>(q: &PlannedQuery, set: &PlannedSet, src: &S) -> Result<SetAnswer> {
    let probing = src.probes() && q.scan_filters.is_empty();
    let mut cache_span = if probing {
        let mut sp = trace::span("cube.cache");
        sp.record("mask", u64::from(set.target));
        Some(sp)
    } else {
        None
    };
    if probing {
        if let Some((cells, source)) = src.probe(set.target) {
            if let Some(sp) = cache_span.as_mut() {
                sp.record("hit", 1);
            }
            return Ok(SetAnswer {
                keep: set.keep.clone(),
                target: set.target,
                source,
                cells,
                cells_scanned: 0,
                cache_hit: true,
                degraded: None,
            });
        }
        if let Some(sp) = cache_span.as_mut() {
            sp.record("hit", 0);
        }
    }
    let mut sp = trace::span("cube.answer");
    sp.record("mask", u64::from(set.target));
    let first_choice_cost = set.candidates.first().map(|&(_, c)| c).unwrap_or(0);
    let mut failed: Vec<(u32, Error)> = Vec::new();
    let mut found: Option<SetAnswer> = None;
    for &(source, _) in &set.candidates {
        // A backend-side derived scan short-circuits the dense path; its
        // cells are already at target granularity with filters applied.
        let loaded = match src.load_derived(source, set.target, &q.scan_filters) {
            Some(res) => res.map(|sb| (sb, true)),
            None => src.load(source).map(|sb| (sb, false)),
        };
        match loaded {
            Ok((sc, derived)) => {
                let cells_scanned = sc.scanned;
                let cells = if derived || (source == set.target && q.scan_filters.is_empty()) {
                    sc.cells
                } else {
                    Arc::new(derive_block(&sc.cells, source, set.target, &q.scan_filters))
                };
                let degraded = if failed.is_empty() {
                    None
                } else {
                    Some(PlanDegradation {
                        requested: set.target,
                        served_from: source,
                        failed: std::mem::take(&mut failed),
                        extra_cells: cells_scanned.saturating_sub(first_choice_cost),
                    })
                };
                found = Some(SetAnswer {
                    keep: set.keep.clone(),
                    target: set.target,
                    source,
                    cells,
                    cells_scanned,
                    cache_hit: false,
                    degraded,
                });
                break;
            }
            Err(e) => failed.push((source, e)),
        }
    }
    trace::counter("cube.answers", 1);
    let Some(ans) = found else {
        if set.candidates.is_empty() {
            return Err(Error::InvalidSchema("no ancestor materialized".into()));
        }
        return Err(Error::NoHealthySource { requested: set.target, tried: failed.len() });
    };
    if sp.is_recording() {
        sp.record("source", u64::from(ans.source));
        sp.record("cells_scanned", ans.cells_scanned);
        sp.record("cells", ans.cells.len() as u64);
        if let Some(d) = &ans.degraded {
            if let Some(first) = d.failed.first() {
                sp.note(format!(
                    "fallback: served from {:#b} after {} failed source(s), first {:#b}",
                    d.served_from,
                    d.failed.len(),
                    first.0
                ));
            }
            trace::counter("cube.fallbacks", 1);
        }
    }
    drop(sp);
    // Admission mirrors probing: a filtered derivation must never be
    // cached under (or later served from) an unfiltered cuboid's key.
    if probing {
        src.admit(ans.target, ans.source, ans.cells_scanned, &ans.cells, ans.degraded.is_some());
    }
    drop(cache_span);
    Ok(ans)
}

/// Runs the privacy pass over answered sets under its trace span — the one
/// enforcement barrier both [`execute`] and [`merge_partials`] cross.
fn enforce_answered(policy: &PrivacyPolicy, sets: &mut [SetAnswer]) -> EnforcementStats {
    let mut esp = trace::span("privacy.enforce");
    let enforcement = enforce::enforce(policy, sets);
    if esp.is_recording() {
        esp.record("suppressed", enforcement.suppressed);
        esp.record("complementary", enforcement.complementary);
        esp.record("perturbed", enforcement.perturbed);
        esp.note(policy.describe());
    }
    enforcement
}

/// Executes a planned query against a physical source. This is the only
/// evaluation loop in the workspace: SQL (algebraic and physical), the
/// view store, and the navigator all end up here. Derivation runs the
/// batched kernels; an identity set (source == target, no filters) is an
/// `Arc` clone of the loaded block.
pub fn execute<S: PlanSource>(q: &PlannedQuery, src: &S) -> Result<PlanExecution> {
    let mut sets_out: Vec<SetAnswer> = Vec::with_capacity(q.sets.len());
    for set in &q.sets {
        sets_out.push(answer_set(q, set, src)?);
    }
    // Mandatory privacy pass: every answer — cached or derived — crosses
    // this barrier before anything renders it.
    let enforcement = enforce_answered(&q.policy, &mut sets_out);
    Ok(PlanExecution { sets: sets_out, enforcement })
}

/// The scatter half of a sharded execution: answers every grouping set of
/// `q` against one shard's source and stops **before** the privacy pass.
/// Suppression thresholds are only meaningful on global counts, so
/// enforcement must run once on the merged result ([`merge_partials`]),
/// never per shard — a cell with 2 units on each of 3 shards is a 6-unit
/// cell, not three suppressible ones.
pub fn execute_partial<S: PlanSource>(q: &PlannedQuery, src: &S) -> Result<PartialExecution> {
    let mut sets_out: Vec<SetAnswer> = Vec::with_capacity(q.sets.len());
    for set in &q.sets {
        sets_out.push(answer_set(q, set, src)?);
    }
    Ok(PartialExecution { sets: sets_out })
}

/// Pre-enforcement per-set answers from one shard: what [`execute_partial`]
/// scatters and [`merge_partials`] gathers. Cell blocks here carry raw
/// (unenforced) aggregation states.
#[derive(Debug, Clone)]
pub struct PartialExecution {
    /// Per-set pre-enforcement answers, in plan order.
    pub sets: Vec<SetAnswer>,
}

impl PartialExecution {
    /// Total cells scanned across all sets.
    pub fn cells_scanned(&self) -> u64 {
        self.sets.iter().map(|s| s.cells_scanned).sum()
    }
}

/// A merged scatter-gather execution: [`PlanExecution`]-shaped (render it
/// with [`result_rows`] like any other execution) plus the shard mask
/// bookkeeping a partial answer must carry.
#[derive(Debug, Clone)]
pub struct ShardedExecution {
    /// The merged, privacy-enforced execution.
    pub execution: PlanExecution,
    /// How many shards the plan was scattered to.
    pub shard_count: usize,
    /// Bit `i` set ⇔ shard `i` produced no partial answer (dead or
    /// corrupt): the answer is *partial* and totals cover only the shards
    /// with cleared bits — never a silently wrong global total.
    pub missing_shards: u32,
    /// Bit `i` set ⇔ shard `i` was skipped *by proof*, not by failure: a
    /// scan filter on the routing dimension showed it can own no matching
    /// row, so the coordinator never scattered to it. Pruned shards are
    /// not missing — the answer over the remaining shards is complete.
    pub pruned_shards: u32,
}

impl ShardedExecution {
    /// True when at least one shard is missing from the merged answer.
    pub fn is_partial(&self) -> bool {
        self.missing_shards != 0
    }

    /// The indices of the missing shards, ascending.
    pub fn missing_indices(&self) -> Vec<usize> {
        (0..self.shard_count).filter(|i| self.missing_shards >> i & 1 == 1).collect()
    }
}

/// The gather + merge physical stage of a sharded execution: folds shards'
/// partials set-by-set through the [`merge_blocks`] monoid **in shard-index
/// order** (deterministic float association, so sharded runs are
/// reproducible), records absent shards in the `missing_shards` mask, and
/// only then runs the privacy pass once over the merged sets.
///
/// All present partials must agree on the grouping-set structure (same
/// targets, same keep-masks — they were compiled from one logical plan);
/// a mismatch is a typed plan error, never a silent mis-merge. Per merged
/// set: `cells_scanned` sums, `cache_hit` holds only if every shard hit,
/// and the first present shard's `source`/`degraded` are kept as the
/// representative provenance.
pub fn merge_partials(
    policy: &PrivacyPolicy,
    parts: &[Option<PartialExecution>],
) -> Result<ShardedExecution> {
    if parts.len() > 32 {
        return Err(Error::InvalidSchema(format!(
            "{} shards exceed the 32-shard mask width",
            parts.len()
        )));
    }
    let mut sp = trace::span("cube.merge");
    let mut missing: u32 = 0;
    let mut merged: Option<Vec<SetAnswer>> = None;
    for (i, part) in parts.iter().enumerate() {
        let Some(p) = part else {
            missing |= 1 << i;
            continue;
        };
        match merged.as_mut() {
            None => merged = Some(p.sets.clone()),
            Some(acc) => {
                if acc.len() != p.sets.len() {
                    return Err(Error::InvalidSchema(format!(
                        "shard partials disagree: {} grouping sets vs {}",
                        acc.len(),
                        p.sets.len()
                    )));
                }
                for (a, b) in acc.iter_mut().zip(&p.sets) {
                    if a.target != b.target || a.keep != b.keep {
                        return Err(Error::InvalidSchema(format!(
                            "shard partials disagree on grouping set {:#b} vs {:#b}",
                            a.target, b.target
                        )));
                    }
                    a.cells = Arc::new(merge_blocks(&a.cells, &b.cells));
                    a.cells_scanned += b.cells_scanned;
                    a.cache_hit &= b.cache_hit;
                    if a.degraded.is_none() {
                        a.degraded = b.degraded.clone();
                    }
                }
            }
        }
    }
    let Some(mut sets) = merged else {
        return Err(Error::InvalidSchema("scatter produced no partial answers".into()));
    };
    if sp.is_recording() {
        sp.record("shards", parts.len() as u64);
        sp.record("missing", u64::from(missing));
        sp.record("sets", sets.len() as u64);
    }
    drop(sp);
    // The one global enforcement barrier: thresholds see merged counts.
    let enforcement = enforce_answered(policy, &mut sets);
    Ok(ShardedExecution {
        execution: PlanExecution { sets, enforcement },
        shard_count: parts.len(),
        missing_shards: missing,
        pruned_shards: 0,
    })
}

/// The frozen tuple-at-a-time interpreter, kept verbatim as the
/// differential oracle for the batched executor (same discipline as the
/// rebuild oracle of the delta-maintenance gate). It never probes a cache
/// and exists only so tests can assert `execute` ≡ interpreter bit for
/// bit; production paths always go through [`execute`].
pub fn execute_interpreter<S: PlanSource>(q: &PlannedQuery, src: &S) -> Result<PlanExecution> {
    let mut sets_out: Vec<SetAnswer> = Vec::with_capacity(q.sets.len());
    for set in &q.sets {
        let first_choice_cost = set.candidates.first().map(|&(_, c)| c).unwrap_or(0);
        let mut failed: Vec<(u32, Error)> = Vec::new();
        let mut found: Option<SetAnswer> = None;
        for &(source, _) in &set.candidates {
            match src.load(source) {
                Ok(sc) => {
                    let cells_scanned = sc.scanned;
                    let measure_count = sc.cells.measure_count();
                    let cells =
                        derive(block_to_cells(&sc.cells), source, set.target, &q.scan_filters);
                    let width = if source == set.target && q.scan_filters.is_empty() {
                        sc.cells.key_width()
                    } else {
                        bit_positions(source, set.target).len()
                    };
                    let degraded = if failed.is_empty() {
                        None
                    } else {
                        Some(PlanDegradation {
                            requested: set.target,
                            served_from: source,
                            failed: std::mem::take(&mut failed),
                            extra_cells: cells_scanned.saturating_sub(first_choice_cost),
                        })
                    };
                    found = Some(SetAnswer {
                        keep: set.keep.clone(),
                        target: set.target,
                        source,
                        cells: Arc::new(cells_to_block(width, measure_count, &cells)),
                        cells_scanned,
                        cache_hit: false,
                        degraded,
                    });
                    break;
                }
                Err(e) => failed.push((source, e)),
            }
        }
        let Some(ans) = found else {
            if set.candidates.is_empty() {
                return Err(Error::InvalidSchema("no ancestor materialized".into()));
            }
            return Err(Error::NoHealthySource { requested: set.target, tried: failed.len() });
        };
        sets_out.push(ans);
    }
    let enforcement = enforce::enforce(&q.policy, &mut sets_out);
    Ok(PlanExecution { sets: sets_out, enforcement })
}

/// Converts a block to the oracle's hash-map representation.
pub fn block_to_cells(block: &CellBlock) -> PlanCells {
    let mut out = PlanCells::with_capacity(block.len());
    for i in 0..block.len() {
        out.insert(
            block.key(i).into(),
            PlanCell { states: block.states_row(i), suppressed: block.is_suppressed(i) },
        );
    }
    out
}

/// Converts the oracle's hash-map representation back to a sorted block.
pub fn cells_to_block(key_width: usize, measure_count: usize, cells: &PlanCells) -> CellBlock {
    let mut block = CellBlock::new(key_width, measure_count);
    for (key, cell) in cells {
        block.push_row(key, &cell.states, cell.suppressed);
    }
    block.sort_rows();
    block
}

/// The oracle's derivation: one tuple at a time through a `HashMap`,
/// applying pushed-down scan filters on the way. `target ⊆ source` by
/// construction; unknown coordinates are skipped rather than panicking
/// (the source may come from storage).
fn derive(src: PlanCells, source: u32, target: u32, filters: &[(usize, Vec<u32>)]) -> PlanCells {
    if source == target && filters.is_empty() {
        return src;
    }
    let tpos = bit_positions(source, target);
    let fpos: Vec<(usize, &[u32])> = filters
        .iter()
        .filter_map(|(d, allowed)| {
            bit_positions(source, 1u32 << d).first().map(|&p| (p, allowed.as_slice()))
        })
        .collect();
    let mut out = PlanCells::with_capacity(src.len());
    'cells: for (key, cell) in src {
        for (p, allowed) in &fpos {
            match key.get(*p) {
                Some(c) if allowed.binary_search(c).is_ok() => {}
                _ => continue 'cells,
            }
        }
        let mut tkey: Vec<u32> = Vec::with_capacity(tpos.len());
        for &p in &tpos {
            let Some(&c) = key.get(p) else { continue 'cells };
            tkey.push(c);
        }
        match out.entry(tkey.into_boxed_slice()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                for (dst, s) in slot.states.iter_mut().zip(&cell.states) {
                    dst.merge(s);
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(cell);
            }
        }
    }
    out
}

/// A [`PlanSource`] over one statistical object, pre-projected to the
/// plan's base mask: the object's dimensions must be exactly the bits of
/// `mask`, in schema order. The block is built (and sorted) once; loads
/// hand out a shared handle.
pub struct ObjectSource {
    mask: u32,
    scanned: u64,
    cells: Arc<CellBlock>,
}

impl ObjectSource {
    /// Converts `obj` (already reduced to the dimensions of `mask`) into a
    /// loadable source.
    pub fn new(obj: &StatisticalObject, mask: u32) -> Result<Self> {
        let dims = mask.count_ones() as usize;
        if obj.schema().dim_count() != dims {
            return Err(Error::InvalidSchema(format!(
                "object has {} dimensions but base mask {mask:#b} needs {dims}",
                obj.schema().dim_count()
            )));
        }
        let measures = obj.schema().measures().len();
        let mut cells = CellBlock::new(dims, measures);
        for (coords, states) in obj.cells() {
            cells.push_row(coords, states, false);
        }
        cells.sort_rows();
        Ok(Self { mask, scanned: obj.cell_count() as u64, cells: Arc::new(cells) })
    }
}

impl PlanSource for ObjectSource {
    fn load(&self, source: u32) -> Result<SourceBlock> {
        if source != self.mask {
            return Err(Error::InvalidSchema(format!(
                "object source holds mask {:#b}, not {source:#b}",
                self.mask
            )));
        }
        Ok(SourceBlock { cells: self.cells.clone(), scanned: self.scanned })
    }
}

/// One output row of a plan: grouping values in GROUP BY order (`None` =
/// `ALL`), aggregate values in SELECT order (`None` = undefined or
/// suppressed), and the privacy verdict. Labels are shared `Arc<str>`
/// handles into the schema's member dictionaries — rendering a row never
/// copies label bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRow {
    /// Group column values (`None` = `ALL`).
    pub group: Vec<Option<Arc<str>>>,
    /// Aggregate values (`None` = undefined or suppressed).
    pub values: Vec<Option<f64>>,
    /// The whole row was withheld by the privacy pass.
    pub suppressed: bool,
}

/// Per-group-position member label tables (index = group position, inner
/// index = dictionary coordinate), resolved once per planned query so row
/// rendering is a pair of indexed lookups per cell.
pub type GroupLabels = Vec<Vec<Arc<str>>>;

/// Resolves the member label table of every group position of `q` through
/// `schema`'s dictionaries (which must still describe the planned
/// dimension indices — pass the post-roll-up, pre-projection schema).
/// Positions whose dimension is unknown to the schema get an empty table,
/// so rendering reports the same "no member" error the row path always
/// raised.
pub fn group_labels(q: &PlannedQuery, schema: &Schema) -> Result<GroupLabels> {
    let mut out = Vec::with_capacity(q.dim_bits.len());
    for &d in &q.dim_bits {
        let labels = schema
            .dimensions()
            .get(d)
            .map(|dim| dim.members().values().map(Arc::from).collect())
            .unwrap_or_default();
        out.push(labels);
    }
    Ok(out)
}

/// Renders an execution as labeled rows: per set, cells come out in key
/// order (blocks are sorted); group labels resolve through `schema`'s
/// member dictionaries.
pub fn result_rows(
    q: &PlannedQuery,
    exec: &PlanExecution,
    schema: &Schema,
) -> Result<Vec<PlanRow>> {
    let labels = group_labels(q, schema)?;
    result_rows_with_labels(q, exec, &labels)
}

/// Renders an execution as labeled rows against pre-resolved label tables
/// (the hot path for plan-caching front-ends: labels are resolved once per
/// plan, not once per query).
pub fn result_rows_with_labels(
    q: &PlannedQuery,
    exec: &PlanExecution,
    labels: &GroupLabels,
) -> Result<Vec<PlanRow>> {
    let mut rows = Vec::new();
    for sa in &exec.sets {
        let mut kept: Vec<usize> =
            q.dim_bits.iter().zip(&sa.keep).filter(|(_, k)| **k).map(|(&d, _)| d).collect();
        kept.sort_unstable();
        kept.dedup();
        // Hoist the per-position plan out of the row loop: group position
        // `j` reads key slot `slot` and labels table `j`.
        let mut cols: Vec<Option<(usize, usize)>> = Vec::with_capacity(sa.keep.len());
        for (j, keep) in sa.keep.iter().enumerate() {
            if !*keep {
                cols.push(None);
                continue;
            }
            if q.dim_bits.get(j).is_none() {
                return Err(Error::InvalidSchema("grouping position without a dimension".into()));
            }
            let d = q.dim_bits[j];
            // `kept` was built from these same positions, so the search
            // only misses on a malformed plan; usize::MAX then fails the
            // per-row key lookup with the historical error.
            let slot = kept.binary_search(&d).unwrap_or(usize::MAX);
            cols.push(Some((j, slot)));
        }
        let block = &sa.cells;
        rows.reserve(block.len());
        for i in 0..block.len() {
            let key = block.key(i);
            let suppressed = block.is_suppressed(i);
            let mut group = Vec::with_capacity(cols.len());
            for col in &cols {
                let Some((j, slot)) = *col else {
                    group.push(None);
                    continue;
                };
                let coord = key.get(slot).copied().ok_or_else(|| {
                    Error::InvalidSchema(format!(
                        "no coordinate for dimension `{}`",
                        q.group_display.get(j).map(String::as_str).unwrap_or("?")
                    ))
                })?;
                let member =
                    labels.get(j).and_then(|table| table.get(coord as usize)).cloned().ok_or_else(
                        || {
                            Error::InvalidSchema(format!(
                                "no member {coord} in dimension `{}`",
                                q.group_display.get(j).map(String::as_str).unwrap_or("?")
                            ))
                        },
                    )?;
                group.push(Some(member));
            }
            let values: Vec<Option<f64>> = q
                .aggs
                .iter()
                .map(|a| if suppressed { None } else { block.value(a.measure, i, a.func) })
                .collect();
            rows.push(PlanRow { group, values, suppressed });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use crate::plan::planner::Planner;
    use crate::plan::policy::PrivacyPolicy;
    use crate::plan::{AggRequest, GroupingSpec, Plan};

    fn sales() -> StatisticalObject {
        let schema = Schema::builder("sales")
            .dimension(Dimension::categorical("product", ["apple", "pear"]))
            .dimension(Dimension::categorical("store", ["s1", "s2"]))
            .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["apple", "s1"], 10.0).unwrap();
        o.insert(&["apple", "s2"], 4.0).unwrap();
        o.insert(&["pear", "s2"], 5.0).unwrap();
        o
    }

    fn sum_amount() -> AggRequest {
        AggRequest {
            func: SummaryFunction::Sum,
            measure: Some("amount".into()),
            label: "SUM(\"amount\")".into(),
        }
    }

    #[test]
    fn executes_a_cube_plan_end_to_end_over_an_object() {
        let obj = sales();
        let plan = Plan::scan("sales").grouping_sets(
            vec!["product".into(), "store".into()],
            GroupingSpec::Cube,
            vec![sum_amount()],
        );
        let q = Planner::for_object(obj.schema()).plan(&plan).unwrap();
        let src = ObjectSource::new(&obj, q.base_mask()).unwrap();
        let out = execute(&q, &src).unwrap();
        assert_eq!(out.sets.len(), 4);
        let rows = result_rows(&q, &out, obj.schema()).unwrap();
        assert_eq!(rows.len(), 3 + 2 + 2 + 1);
        let apex = rows.last().unwrap();
        assert_eq!(apex.group, vec![None, None]);
        assert_eq!(apex.values, vec![Some(19.0)]);
        let by_store: Vec<&PlanRow> =
            rows.iter().filter(|r| r.group[0].is_none() && r.group[1].is_some()).collect();
        assert_eq!(by_store.len(), 2);
        assert_eq!(by_store[0].values, vec![Some(10.0)]);
        assert_eq!(by_store[1].values, vec![Some(9.0)]);
    }

    #[test]
    fn batched_executor_matches_the_interpreter_oracle() {
        let obj = sales();
        let plan = Plan::scan("sales").grouping_sets(
            vec!["product".into(), "store".into()],
            GroupingSpec::Cube,
            vec![sum_amount()],
        );
        let q = Planner::for_object(obj.schema()).plan(&plan).unwrap();
        let src = ObjectSource::new(&obj, q.base_mask()).unwrap();
        let fast = execute(&q, &src).unwrap();
        let slow = execute_interpreter(&q, &src).unwrap();
        assert_eq!(fast.enforcement, slow.enforcement);
        assert_eq!(fast.sets.len(), slow.sets.len());
        for (f, s) in fast.sets.iter().zip(&slow.sets) {
            assert_eq!(*f.cells, *s.cells, "target {:#b}", f.target);
        }
        let schema = obj.schema();
        assert_eq!(
            result_rows(&q, &fast, schema).unwrap(),
            result_rows(&q, &slow, schema).unwrap()
        );
    }

    #[test]
    fn suppression_crosses_the_executor_barrier() {
        let obj = sales();
        let plan = Plan::scan("sales").grouping_sets(
            vec!["product".into()],
            GroupingSpec::Single,
            vec![sum_amount()],
        );
        let q = Planner::for_object(obj.schema())
            .with_policy(PrivacyPolicy::suppress(2))
            .plan(&plan)
            .unwrap();
        let base = crate::ops::s_project_unchecked(&obj, "store").unwrap();
        let src = ObjectSource::new(&base, q.base_mask()).unwrap();
        let out = execute(&q, &src).unwrap();
        assert_eq!(out.enforcement.suppressed, 1, "pear has a single micro unit");
        let rows = result_rows(&q, &out, obj.schema()).unwrap();
        let pear = rows.iter().find(|r| r.group[0].as_deref() == Some("pear")).unwrap();
        assert!(pear.suppressed);
        assert_eq!(pear.values, vec![None]);
        let apple = rows.iter().find(|r| r.group[0].as_deref() == Some("apple")).unwrap();
        assert_eq!(apple.values, vec![Some(14.0)]);
    }

    #[test]
    fn derive_block_applies_scan_filters_before_merging() {
        let mut src = CellBlock::new(2, 1);
        for (k, v) in [([0u32, 0u32], 10.0), ([0, 1], 4.0), ([1, 1], 5.0)] {
            src.push_row(&k, &[AggState::from_value(v)], false);
        }
        src.sort_rows();
        // Source holds dims {0, 1}; filter dim 1 to member 1; target dim 0.
        let out = derive_block(&src, 0b11, 0b01, &[(1, vec![1])]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.find(&[0]).map(|i| out.state(0, i).sum), Some(4.0));
        assert_eq!(out.find(&[1]).map(|i| out.state(0, i).sum), Some(5.0));
        // And the oracle derivation agrees.
        let oracle = derive(block_to_cells(&src), 0b11, 0b01, &[(1, vec![1])]);
        assert_eq!(cells_to_block(1, 1, &oracle), out);
    }

    #[test]
    fn empty_candidate_list_is_the_unmaterialized_error() {
        let obj = sales();
        let plan = Plan::scan("sales").grouping_sets(
            vec!["product".into()],
            GroupingSpec::Single,
            vec![sum_amount()],
        );
        let mut q = Planner::for_object(obj.schema()).plan(&plan).unwrap();
        q.sets[0].candidates.clear();
        let base = crate::ops::s_project_unchecked(&obj, "store").unwrap();
        let src = ObjectSource::new(&base, 0b01).unwrap();
        let err = execute(&q, &src).unwrap_err();
        assert_eq!(err, Error::InvalidSchema("no ancestor materialized".into()));
    }
}
